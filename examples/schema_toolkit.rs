//! A schema designer's toolkit tour: the analysis features a DBA would run
//! when setting up view update support.
//!
//! 1. **Implied constraint mining** (§1.1): discover the constraints a
//!    view inherits from the base schema — the `Con(V)` that restores
//!    surjectivity — automatically.
//! 2. **Complement search** (§1.3): enumerate join complements of a view,
//!    see that *minimal* complements are not unique (the
//!    Bancilhon–Spyratos dead end), and resolve the choice with strength.
//! 3. **Strength analysis** (§2.3): the per-condition breakdown of why a
//!    view is or is not a component.
//!
//! Run with: `cargo run --example schema_toolkit`

use compview::core::paper::{example_1_1_1, example_1_3_6};
use compview::core::{complement, implied, strong, MatView, View};

fn main() {
    mine_implied_constraints();
    complement_search();
    strength_report();
}

fn mine_implied_constraints() {
    println!("== 1. Implied constraint mining (Example 1.1.1) ==\n");
    let (sp, view) = example_1_1_1::small_space_and_join_view();
    let mv = MatView::materialise(view, &sp);
    println!(
        "View R_SPJ = R_SP ⋈ R_PJ over a {}-state base: mining Con(V)…",
        sp.len()
    );
    let jds = implied::implied_jds(&mv);
    for jd in &jds {
        println!("  implied JD: {jd}");
    }
    let fds = implied::implied_fds(&mv);
    println!("  implied FDs with non-trivial LHS: {}", fds.len());
    println!(
        "\nThe join dependency *[SP,PJ] is discovered mechanically — the\n\
         constraint Example 1.1.1 says the view must inherit to forbid the\n\
         side-effect-free insertion of (s3,p3,j3).\n"
    );
}

fn complement_search() {
    println!("== 2. Complement search (Example 1.3.6 / §1.3) ==\n");
    let sp = example_1_3_6::space(2);
    let g1 = MatView::materialise(example_1_3_6::gamma1(), &sp);
    let g2 = MatView::materialise(example_1_3_6::gamma2(), &sp);
    let g3 = MatView::materialise(example_1_3_6::gamma3(), &sp);
    let id = MatView::materialise(View::identity(sp.schema().sig()), &sp);
    let zero = MatView::materialise(View::zero(), &sp);
    let candidates = [&g2, &g3, &id, &zero];
    let names = ["Γ2 (keep S)", "Γ3 (R Δ S)", "1_D (identity)", "0_D (zero)"];

    println!("Candidates as complements of Γ1 (keep R):");
    let jcs = complement::join_complements_among(&g1, &candidates);
    for (i, name) in names.iter().enumerate() {
        println!(
            "  {name:<16} join-complement: {:<5}",
            jcs.contains(&i).to_string()
        );
    }
    let minimal = complement::minimal_join_complements_among(&g1, &candidates);
    println!(
        "\nMinimal join complements: {:?}",
        minimal.iter().map(|&i| names[i]).collect::<Vec<_>>()
    );
    println!("— two incomparable minimal complements: minimality does NOT");
    println!("  determine the update strategy (the §1.3 problem).\n");

    println!("The paper's resolution — restrict to strong views:");
    let strong_comp = strong::strong_complement_among(&sp, &g1, &candidates);
    println!(
        "  unique strong complement of Γ1: {}",
        strong_comp.map(|i| names[i]).unwrap_or("none")
    );
    println!("  (Theorem 2.3.3(b): strong complements are unique.)\n");
}

fn strength_report() {
    println!("== 3. Strength analysis (§2.3) ==\n");
    let sp = example_1_3_6::space(2);
    for (name, view) in [
        ("Γ1 (keep R)", example_1_3_6::gamma1()),
        ("Γ3 (R Δ S)", example_1_3_6::gamma3()),
    ] {
        let mv = MatView::materialise(view, &sp);
        let a = strong::analyse(&sp, &mv);
        println!("{name}:");
        println!("  monotone:                {}", a.monotone);
        println!("  preserves null model:    {}", a.bottom_preserving);
        println!("  least right invertible:  {}", a.least_right_invertible);
        println!("  downward stationary:     {}", a.downward_stationary);
        println!("  STRONG:                  {}", a.is_strong());
        println!(
            "  generalized strong:      {}\n",
            strong::is_generalized_strong(&sp, &mv)
        );
    }
    println!("Γ3 fails monotonicity outright: inserting a value into S can");
    println!("delete it from T = R Δ S — no presentation of this view can be");
    println!("a component (not even generalized strong).");
}
