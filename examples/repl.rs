//! An interactive shell over the view-update catalog — drive the paper's
//! machinery by hand.
//!
//! Commands (one per line, `#` comments ignored):
//!
//! ```text
//! show                      print the base instance
//! views                     list registered views and their masks
//! read <view>               print a view's state
//! insert <view> <col>=<val> …   stage + apply an insertion
//! delete <view> <col>=<val> …   stage + apply a deletion
//! undo                      revert the last update
//! log                       print the audit log
//! quit
//! ```
//!
//! Reads commands from stdin, so it can be scripted:
//!
//! ```sh
//! printf 'views\ninsert sales Customer=eve Order=o9\nshow\nquit\n' \
//!   | cargo run --example repl
//! ```

use compview::core::{Catalog, TreeComponents};
use compview::logic::TreeSchema;
use compview::relation::{display, Relation, Value};
use std::io::BufRead;

fn main() {
    let ts = TreeSchema::new(
        "Orders",
        ["Customer", "Order", "Product", "Warehouse"],
        vec![(0, 1), (1, 2), (1, 3)],
    );
    let tc = TreeComponents::new(ts.clone());

    let mut gens = Relation::empty(4);
    for (c, o) in [("ada", "o1"), ("bob", "o2")] {
        gens.insert(ts.object(&[(0, Value::sym(c)), (1, Value::sym(o))]));
    }
    gens.insert(ts.object(&[(1, Value::sym("o1")), (2, Value::sym("widget"))]));
    gens.insert(ts.object(&[(1, Value::sym("o1")), (3, Value::sym("east"))]));
    let base = ts.instance(ts.close(&gens));

    let mut cat = Catalog::new(tc, base);
    cat.register("sales", 0b001).unwrap();
    cat.register("procurement", 0b010).unwrap();
    cat.register("shipping", 0b100).unwrap();

    let attr_col = |name: &str| ts.attrs().iter().position(|a| a == name);

    println!("compview repl — views over Orders[Customer,Order,Product,Warehouse]");
    println!("type `views`, `show`, `read <view>`, `insert/delete <view> Col=val …`, `undo`, `log`, `quit`\n");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let cmd = words.next().unwrap_or_default();
        match cmd {
            "quit" | "exit" => break,
            "show" => print!(
                "{}",
                display::table(
                    cat.state().rel("Orders"),
                    &["Customer", "Order", "Product", "Warehouse"],
                    "Orders"
                )
            ),
            "views" => {
                for (name, mask) in cat.views() {
                    println!("  {name:<12} mask {mask:#05b}");
                }
            }
            "read" => match words.next().and_then(|v| cat.read(v).ok()) {
                Some(state) => print!(
                    "{}",
                    display::table(
                        state.rel("Orders"),
                        &["Customer", "Order", "Product", "Warehouse"],
                        "view state"
                    )
                ),
                None => println!("! unknown view"),
            },
            "insert" | "delete" => {
                let Some(view) = words.next() else {
                    println!("! usage: {cmd} <view> Col=val …");
                    continue;
                };
                let mut bindings = Vec::new();
                let mut ok = true;
                for w in words {
                    match w.split_once('=') {
                        Some((col, val)) => match attr_col(col) {
                            Some(i) => bindings.push((i, Value::sym(val))),
                            None => {
                                println!("! unknown attribute {col}");
                                ok = false;
                            }
                        },
                        None => {
                            println!("! bad binding {w} (use Col=val)");
                            ok = false;
                        }
                    }
                }
                if !ok || bindings.len() < 2 {
                    println!("! need at least two Col=val bindings");
                    continue;
                }
                let obj = ts.object(&bindings);
                let mut part = match cat.read(view) {
                    Ok(p) => p,
                    Err(e) => {
                        println!("! {e}");
                        continue;
                    }
                };
                if cmd == "insert" {
                    part.rel_mut("Orders").insert(obj);
                } else if !part.rel_mut("Orders").remove(&obj) {
                    println!("! object not present in {view}");
                    continue;
                }
                match cat.update(view, &part) {
                    Ok(r) => println!(
                        "ok: requested Δ={} reflected Δ={}",
                        r.requested_delta, r.reflected_delta
                    ),
                    Err(e) => println!("! rejected: {e}"),
                }
            }
            "undo" => match cat.undo() {
                Ok(()) => println!("ok: reverted"),
                Err(e) => println!("! {e}"),
            },
            "log" => {
                for entry in cat.log() {
                    println!(
                        "  {:<12} requested {} reflected {}",
                        entry.view, entry.requested_delta, entry.reflected_delta
                    );
                }
            }
            other => println!("! unknown command {other:?}"),
        }
    }
    println!("bye");
}
