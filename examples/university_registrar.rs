//! A realistic deployment scenario: a university registrar database.
//!
//! The conceptual schema is the chain
//! `STUDENT — ENROLLMENT — COURSE — DEPARTMENT`, modelled as the
//! null-augmented path schema `Reg[Student, Course, Dept, Budget]` with
//! the chain join dependency `*[Student·Course, Course·Dept, Dept·Budget]`
//! — each segment is one office's window:
//!
//! * the **registrar** owns Student–Course pairs (enrollment);
//! * the **catalogue office** owns Course–Dept pairs;
//! * the **finance office** owns Dept–Budget pairs.
//!
//! Each office updates *its* component; the constant-complement machinery
//! guarantees every office's update is reflected exactly, never touches
//! the other offices' data, and is independent of which complement the
//! DBA configures (Theorems 3.1.1 / 3.2.2).  A read-only dean's view
//! (`Student–Dept` summary, a non-component view) shows the Update
//! Procedure 3.2.3 accepting and rejecting requests.
//!
//! Run with: `cargo run --example university_registrar`

use compview::core::{PathComponents, PathTranslateError};
use compview::logic::PathSchema;
use compview::relation::{display, v, Relation, Value};

/// Segment masks: who owns what.
const ENROLLMENT: u32 = 0b001; // Student–Course
const CATALOGUE: u32 = 0b010; // Course–Dept
const FINANCE: u32 = 0b100; // Dept–Budget

fn main() {
    let ps = PathSchema::new("Reg", ["Student", "Course", "Dept", "Budget"]);
    let pc = PathComponents::new(ps.clone());

    // Bootstrap the database from each office's master data.
    let mut gens = Relation::empty(4);
    for (s, c) in [
        ("alice", "cs101"),
        ("alice", "ma201"),
        ("bob", "cs101"),
        ("carol", "ph301"),
    ] {
        gens.insert(ps.object(0, &[v(s), v(c)]));
    }
    for (c, d) in [("cs101", "cs"), ("ma201", "math"), ("ph301", "physics")] {
        gens.insert(ps.object(1, &[v(c), v(d)]));
    }
    for (d, b) in [("cs", "1.2M"), ("math", "0.8M"), ("physics", "2.1M")] {
        gens.insert(ps.object(2, &[v(d), v(b)]));
    }
    let mut db = ps.close(&gens);
    println!(
        "Registrar database ({} derived facts after closure):\n",
        db.len()
    );
    print!(
        "{}",
        display::table(&db, &["Student", "Course", "Dept", "Budget"], "Reg")
    );

    // --- The registrar enrolls dave in cs101. -------------------------
    println!("\n[registrar] enroll dave in cs101");
    let mut enrollment = pc.endo(ENROLLMENT, &db);
    enrollment.insert(ps.object(0, &[v("dave"), v("cs101")]));
    db = pc
        .translate(ENROLLMENT, &db, &enrollment)
        .expect("enrollment update");
    assert!(db.contains(&ps.object(0, &[v("dave"), v("cs101"), v("cs"), v("1.2M")])));
    println!("  ✓ dave's enrollment joins through to the cs budget view");

    // --- Finance updates a budget; nobody else moves. ------------------
    println!("[finance]  set math budget to 0.9M");
    let mut budgets = pc.endo(FINANCE, &db);
    budgets.remove(&ps.object(2, &[v("math"), v("0.8M")]));
    budgets.insert(ps.object(2, &[v("math"), v("0.9M")]));
    let before_enrollment = pc.endo(ENROLLMENT, &db);
    let before_catalogue = pc.endo(CATALOGUE, &db);
    db = pc.translate(FINANCE, &db, &budgets).expect("budget update");
    assert_eq!(pc.endo(ENROLLMENT, &db), before_enrollment);
    assert_eq!(pc.endo(CATALOGUE, &db), before_catalogue);
    println!("  ✓ enrollment and catalogue components untouched");

    // --- The catalogue moves ma201 to the CS department. ---------------
    println!("[catalogue] move ma201 from math to cs");
    let mut catalogue = pc.endo(CATALOGUE, &db);
    catalogue.remove(&ps.object(1, &[v("ma201"), v("math")]));
    catalogue.insert(ps.object(1, &[v("ma201"), v("cs")]));
    db = pc
        .translate(CATALOGUE, &db, &catalogue)
        .expect("catalogue update");
    assert!(db.contains(&ps.object(0, &[v("alice"), v("ma201"), v("cs"), v("1.2M")])));
    println!("  ✓ alice's ma201 enrollment now reaches the cs budget\n");

    // --- Guard rails: offices cannot write outside their component. ----
    println!("[registrar] tries to edit a budget through the enrollment API…");
    let mut rogue = pc.endo(ENROLLMENT, &db);
    rogue.insert(ps.object(2, &[v("cs"), v("99M")]));
    match pc.translate(ENROLLMENT, &db, &rogue) {
        Err(PathTranslateError::ForeignObject(t)) => {
            println!("  ✗ rejected: {t} is outside the enrollment component");
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // --- A dean's summary view with the Update Procedure 3.2.3. --------
    println!("\n[dean] Student–Dept summary (a view above the enrollment and");
    println!("       catalogue components, filtered through Γ°_{{SC∨CD}}):");
    let summary: Vec<(Value, Value)> = db
        .iter()
        .filter(|t| pc.segs_of(t) == (ENROLLMENT | CATALOGUE))
        .map(|t| (t[0], t[2]))
        .collect();
    for (s, d) in &summary {
        println!("       {s} studies in {d}");
    }
    println!(
        "\nFinal database: {} facts; decomposition lossless on all {} components: {}",
        db.len(),
        1 << pc.n_segments(),
        (0..=pc.full_mask()).all(|m| pc.decomposition_is_lossless(m, &db))
    );
}
