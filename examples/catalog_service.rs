//! A view-update *service*: the [`Catalog`] API over a branching tree
//! schema — the closest this library gets to "the paper as a product".
//!
//! Scenario: a logistics company models
//!
//! ```text
//!                 Warehouse(3)
//!                     |
//!  Customer(0) — Order(1) — Product(2)
//! ```
//!
//! as a tree schema (acyclic join dependency made exact through nulls).
//! Three teams own one component each; the catalog services their updates
//! with constant-complement translation, keeps an audit log of requested
//! vs reflected change, rejects illegal states atomically, and undoes
//! mistakes (symmetry of admissible strategies).
//!
//! Run with: `cargo run --example catalog_service`

use compview::core::{Catalog, ComponentFamily, TreeComponents};
use compview::logic::TreeSchema;
use compview::relation::{display, v, Relation};

fn main() {
    // Tree: edges Customer–Order (0), Order–Product (1), Order–Warehouse (2).
    let ts = TreeSchema::new(
        "Logistics",
        ["Customer", "Order", "Product", "Warehouse"],
        vec![(0, 1), (1, 2), (1, 3)],
    );
    let tc = TreeComponents::new(ts.clone());

    // Bootstrap data.
    let mut gens = Relation::empty(4);
    for (c, o) in [("carol", "o1"), ("carol", "o2"), ("dan", "o3")] {
        gens.insert(ts.object(&[(0, v(c)), (1, v(o))]));
    }
    for (o, p) in [("o1", "widget"), ("o2", "gadget"), ("o3", "widget")] {
        gens.insert(ts.object(&[(1, v(o)), (2, v(p))]));
    }
    for (o, w) in [("o1", "east"), ("o2", "east"), ("o3", "west")] {
        gens.insert(ts.object(&[(1, v(o)), (3, v(w))]));
    }
    let base = ts.instance(ts.close(&gens));
    println!(
        "Logistics database: {} derived facts\n",
        base.rel("Logistics").len()
    );

    let mut cat = Catalog::new(tc, base);
    cat.register("sales", 0b001).unwrap(); // Customer–Order
    cat.register("procurement", 0b010).unwrap(); // Order–Product
    cat.register("shipping", 0b100).unwrap(); // Order–Warehouse
    cat.register("fulfilment", 0b110).unwrap(); // Product ∨ Warehouse side

    println!("Registered views:");
    for (name, mask) in cat.views() {
        println!("  {name:<12} component mask {mask:#05b}");
    }

    // Sales books a new order for dan.
    println!("\n[sales] book order o4 for dan");
    let mut sales = cat.read("sales").unwrap();
    sales
        .rel_mut("Logistics")
        .insert(ts.object(&[(0, v("dan")), (1, v("o4"))]));
    let r = cat.update("sales", &sales).unwrap();
    println!(
        "  accepted: requested Δ = {}, reflected Δ = {}",
        r.requested_delta, r.reflected_delta
    );

    // Procurement assigns the product; note the join through o4 now fires.
    println!("[procurement] o4 is a gadget");
    let mut proc = cat.read("procurement").unwrap();
    proc.rel_mut("Logistics")
        .insert(ts.object(&[(1, v("o4")), (2, v("gadget"))]));
    let r = cat.update("procurement", &proc).unwrap();
    println!(
        "  accepted: requested Δ = {}, reflected Δ = {} (closure joined o4 to dan)",
        r.requested_delta, r.reflected_delta
    );

    // Shipping misroutes, then undoes.
    println!("[shipping] o4 ships from east … oops, undo");
    let mut ship = cat.read("shipping").unwrap();
    ship.rel_mut("Logistics")
        .insert(ts.object(&[(1, v("o4")), (3, v("east"))]));
    cat.update("shipping", &ship).unwrap();
    cat.undo().unwrap();
    println!(
        "  after undo the shipping view has {} facts again",
        cat.read("shipping").unwrap().rel("Logistics").len()
    );

    // An attempt to write outside one's component is rejected atomically.
    println!("[sales] tries to edit a product assignment…");
    let mut rogue = cat.read("sales").unwrap();
    rogue
        .rel_mut("Logistics")
        .insert(ts.object(&[(1, v("o1")), (2, v("widget-pro"))]));
    match cat.update("sales", &rogue) {
        Err(e) => println!("  ✗ rejected: {e}"),
        Ok(_) => unreachable!(),
    }

    // Final state.
    println!("\nAudit log:");
    for entry in cat.log() {
        println!(
            "  {:<12} requested {} reflected {}",
            entry.view, entry.requested_delta, entry.reflected_delta
        );
    }
    println!("\nFinal database:");
    print!(
        "{}",
        display::table(
            cat.state().rel("Logistics"),
            &["Customer", "Order", "Product", "Warehouse"],
            "Logistics"
        )
    );
    let full = cat.family().full_mask();
    let lossless = (0..=full).all(|m| {
        let a = cat.family().endo(m, cat.state());
        let b = cat.family().endo(cat.family().complement(m), cat.state());
        &cat.family().reconstruct(&a, &b) == cat.state()
    });
    println!(
        "\nDecomposition lossless on all {} components: {lossless}",
        (full + 1)
    );
}
