//! Quickstart: the view update problem and its component-based solution.
//!
//! Part 1 reproduces Example 1.1.1 — the classic join-view insertion with
//! side effects.  Part 2 shows the paper's machinery on the null-augmented
//! schema of Example 2.1.1: updates through a constant component
//! complement are unique, exact, and side-effect-free on the complement.
//!
//! Run with: `cargo run --example quickstart`

use compview::core::paper::{example_1_1_1, example_2_1_1};
use compview::core::PathComponents;
use compview::relation::{display, t, v};

fn main() {
    part_1_the_problem();
    part_2_the_solution();
}

fn part_1_the_problem() {
    println!("== Part 1: the problem (Example 1.1.1) ==\n");
    let schema = example_1_1_1::base_schema();
    let base = example_1_1_1::base_instance();
    let view = example_1_1_1::join_view();

    println!("Base schema D (no constraints):");
    print!("{}", display::instance_tables(&base, schema.sig()));

    let v_inst = view.apply(&base);
    println!("View Γ: R_SPJ = R_SP ⋈ R_PJ:");
    print!(
        "{}",
        display::table(v_inst.rel("R_SPJ"), &["S", "P", "J"], "R_SPJ = γ′(base)")
    );

    println!("\nUser request: insert (s3, p3, j3) into the view.");
    println!("Only way: insert (s3,p3) into R_SP and (p3,j3) into R_PJ…\n");
    let mut updated = base.clone();
    updated.insert("R_SP", t(["s3", "p3"]));
    updated.insert("R_PJ", t(["p3", "j3"]));
    let v_after = view.apply(&updated);
    print!(
        "{}",
        display::table(v_after.rel("R_SPJ"), &["S", "P", "J"], "after insertion")
    );
    let side_effects = v_after
        .rel("R_SPJ")
        .difference(v_inst.rel("R_SPJ"))
        .select(|tu| *tu != t(["s3", "p3", "j3"]));
    println!("\nSide effects (tuples the user never asked for): {side_effects:?}");
    println!("The update was performed, but not performed exactly.\n");
}

fn part_2_the_solution() {
    println!("== Part 2: the solution (Examples 2.1.1 / 2.3.4 / §3) ==\n");
    println!("Null-augmented schema R[A,B,C,D] with *[AB,BC,CD]: the join");
    println!("dependency is exact, and the segment views Γ°_AB, Γ°_BC, Γ°_CD");
    println!("generate an 8-element Boolean algebra of components.\n");

    let pc = PathComponents::new(example_2_1_1::path_schema());
    let ps = pc.schema().clone();
    let base = example_2_1_1::base_instance();
    let r = base.rel("R").clone();
    print!(
        "{}",
        display::table(&r, &["A", "B", "C", "D"], "base instance (Example 2.1.1)")
    );

    // The AB component state — the user's window.
    let ab = pc.endo(0b001, &r);
    print!(
        "\n{}",
        display::table(&ab, &["A", "B", "C", "D"], "Γ°_AB component")
    );

    // Update: insert (a9, b1) into the AB view — note b1 joins existing data.
    println!("\nUser request on Γ°_AB: insert (a9, b1).");
    let mut new_ab = ab.clone();
    new_ab.insert(ps.object(0, &[v("a9"), v("b1")]));
    let updated = pc
        .translate(0b001, &r, &new_ab)
        .expect("component updates always succeed (Theorem 3.1.1)");
    print!(
        "\n{}",
        display::table(&updated, &["A", "B", "C", "D"], "translated base state")
    );

    assert_eq!(pc.endo(0b001, &updated), new_ab);
    assert_eq!(pc.endo(0b110, &updated), pc.endo(0b110, &r));
    println!("\n✓ view update performed exactly (AB part = requested state)");
    println!("✓ complement Γ°_BCD untouched");
    println!("✓ unique: no other base state has this (AB, BCD) decomposition");
    println!("\nThe same update translated through ANY component complement");
    println!("gives the same base state — Main Update Theorem 3.2.2.");
}
