//! A guided tour of Section 1: every admissibility requirement of the
//! paper, demonstrated on the suppliers–parts–jobs schemata of Examples
//! 1.1.1–1.3.6, with the violations the paper describes exhibited by real
//! strategy objects and detected by the library's checkers.
//!
//! Run with: `cargo run --example suppliers_parts_jobs`

use compview::core::paper::{example_1_2_5, example_1_3_6};
use compview::core::{complement, strategy, strong, update, MatView, Strategy, UpdateSpec, View};
use compview::relation::{display, rel, t};

fn main() {
    requirement_1_nonextraneous();
    requirement_2_functorial();
    requirements_3_4_symmetric_state_independent();
    complements_are_not_unique();
}

/// Requirement 1 (Examples 1.2.1 / 1.2.2 / 1.2.5): extraneous updates and
/// the impossibility of always-minimal solutions.
fn requirement_1_nonextraneous() {
    println!("== Requirement 1: nonextraneous updates ==\n");
    let sp = example_1_2_5::small_space();
    let g1 = MatView::materialise(example_1_2_5::gamma1(), &sp);

    // The example's shape: insert a new SP pair into Γ1 = π_SP where the
    // part p1 already has two J partners — two incomparable nonextraneous
    // solutions exist (Example 1.2.5), so no minimal one.
    let base = sp.expect_id(
        &compview::relation::Instance::null_model(sp.schema().sig())
            .with("R_SPJ", rel(3, [["s1", "p1", "j1"], ["s1", "p1", "j2"]])),
    );
    let target_state = g1
        .view()
        .apply(sp.state(base))
        .with("R_SP", rel(2, [["s1", "p1"], ["s2", "p1"]]));
    let target = g1.id_of(&target_state).expect("image state");
    let sols = update::solutions(&g1, UpdateSpec { base, target });
    let ne = update::nonextraneous(&sp, base, &sols);
    println!(
        "Insert (s2,p1) into π_SP: {} solutions, {} nonextraneous,",
        sols.len(),
        ne.len()
    );
    println!(
        "minimal solution exists: {}\n",
        update::minimal(&sp, base, &sols).is_some()
    );
    for &s in &ne {
        println!(
            "nonextraneous solution (Δ = {:?}):",
            sp.state(base).sym_diff(sp.state(s)).rel("R_SPJ")
        );
        print!(
            "{}",
            display::table(sp.state(s).rel("R_SPJ"), &["S", "P", "J"], "")
        );
    }
    println!("Pairwise-incomparable nonextraneous solutions ⇒ no minimal update");
    println!("(Example 1.2.5); Proposition 1.2.6 still holds on every spec.\n");
}

/// Requirement 2 (Example 1.2.7): a smallest-change strategy is not
/// functorial.
fn requirement_2_functorial() {
    println!("== Requirement 2: functoriality ==\n");
    let sp = example_1_2_5::small_space();
    let g1 = MatView::materialise(example_1_2_5::gamma1(), &sp);
    let rho = Strategy::smallest_change(&sp, &g1);
    let report = strategy::check(&sp, &g1, &rho);
    println!("smallest-change strategy on Γ1 = π_SP:");
    println!("  sound:          {:?}", report.sound.is_ok());
    println!("  nonextraneous:  {:?}", report.nonextraneous.is_ok());
    println!("  functorial:     {:?}", report.functorial.is_ok());
    if let Err(e) = &report.functorial {
        println!("    counterexample: {e}");
    }
    println!("Greedy minimal changes do not compose (Example 1.2.7).\n");
}

/// Requirements 3 & 4 (Examples 1.2.10 / 1.2.12) via the constant
/// complement machinery: Γ2-constant strategies satisfy everything.
fn requirements_3_4_symmetric_state_independent() {
    println!("== Requirements 3 & 4: symmetry and state independence ==\n");
    let sp = example_1_3_6::space(3);
    let g1 = MatView::materialise(example_1_3_6::gamma1(), &sp);
    let g2 = MatView::materialise(example_1_3_6::gamma2(), &sp);
    let rho = Strategy::constant_complement(&sp, &g1, &g2);
    let report = strategy::check(&sp, &g1, &rho);
    println!("constant-complement strategy (complement Γ2 = S):");
    println!("  admissible: {}", report.is_admissible());
    println!("  total:      {}", rho.is_total(&sp, &g1));
    println!("Complementary complements give total, admissible strategies");
    println!("(Observation 1.3.5 + Theorem 3.1.1).\n");
}

/// Example 1.3.6: complements are not unique, and the choice matters.
fn complements_are_not_unique() {
    println!("== The complement problem (Example 1.3.6) ==\n");
    let sp = example_1_3_6::space(2);
    let g1 = MatView::materialise(example_1_3_6::gamma1(), &sp);
    let g2 = MatView::materialise(example_1_3_6::gamma2(), &sp);
    let g3 = MatView::materialise(example_1_3_6::gamma3(), &sp);

    println!(
        "Γ2 complementary to Γ1: {}",
        complement::is_complementary(&g1, &g2)
    );
    println!(
        "Γ3 complementary to Γ1: {}",
        complement::is_complementary(&g1, &g3)
    );
    println!("Both are complements — but only Γ2 is a STRONG view:");
    println!("  Γ2 strong: {}", strong::is_strong(&sp, &g2));
    println!("  Γ3 strong: {}", strong::is_strong(&sp, &g3));

    // Quantify the damage: update via each complement.
    let base = example_1_3_6::base_instance();
    let mut with_a4 = base.rel("R").clone();
    with_a4.insert(t(["a4"]));
    let via_s = compview::core::xor::update_r_const_s(&base, &with_a4);
    let base_a4 = base.clone().with("S", rel(1, [["a2"], ["a3"], ["a4"]]));
    let via_t = compview::core::xor::update_r_const_t(&base_a4, &with_a4);
    println!(
        "\nInsert a4 into R: Γ2-constant changes {} tuple(s); Γ3-constant \
         changes {} tuple(s) (extraneous deletion of a4 from S).",
        compview::core::xor::reflected_change(&base, &via_s),
        compview::core::xor::reflected_change(&base_a4, &via_t),
    );
    println!("\nThe paper's prescription: use only components as complements —");
    println!("then reflections are unique, admissible, and canonical.");

    // And indeed the identity view is a join complement that allows nothing.
    let id = MatView::materialise(View::identity(sp.schema().sig()), &sp);
    let rho_id = Strategy::constant_complement(&sp, &g1, &id);
    let non_identity_updates = rho_id
        .iter()
        .filter(|&((s1, t2), _)| g1.label(s1) != t2)
        .count();
    println!(
        "(Sanity: with the identity view constant, {non_identity_updates} \
         non-identity updates are allowed — the 'ludicrous anomaly' of §1.3.)"
    );
}
