//! Durability walkthrough: write-ahead logging, a crash with a torn
//! record, directory-wide recovery, and log compaction by checkpoint.
//!
//! Every state-changing request to a durable session is serialized,
//! checksummed, and appended to `<dir>/<name>.wal` *before* it is
//! applied (DESIGN.md §9).  Recovery replays the log through the very
//! same `serve` path, so the rebuilt session is byte-identical to the
//! crashed one up to the last durable record — torn or corrupt tails
//! are detected by the framing + CRC and truncated, never obeyed.
//!
//! Run with: `cargo run --example recovery`

use compview::core::SubschemaComponents;
use compview::logic::Schema;
use compview::relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview::session::{Service, SessionConfig, SessionRequest, SessionResponse, SyncPolicy};
use std::collections::BTreeMap;

fn main() {
    let dir =
        std::env::temp_dir().join(format!("compview-recovery-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let sig = Signature::new([
        RelDecl::new("Suppliers", ["S#"]),
        RelDecl::new("Parts", ["P#"]),
    ]);
    let pools: BTreeMap<String, Vec<Tuple>> = [
        (
            "Suppliers".to_owned(),
            vec![Tuple::new([v("s1")]), Tuple::new([v("s2")])],
        ),
        ("Parts".to_owned(), vec![Tuple::new([v("p1")])]),
    ]
    .into();
    let base = Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"]]));
    let family = || SubschemaComponents::singletons(sig.clone());
    let schema = || Schema::unconstrained(sig.clone());

    // 1. Open a durable session.  SyncPolicy::Always fsyncs every record:
    //    nothing acknowledged is ever lost.
    let mut service = Service::new();
    service
        .create_durable_session(
            &dir,
            "orders",
            family(),
            schema(),
            &pools,
            base,
            SessionConfig::default(),
            SyncPolicy::Always,
        )
        .unwrap();
    service
        .serve(
            "orders",
            SessionRequest::RegisterView {
                name: "sup".into(),
                mask: 0b01,
            },
        )
        .unwrap();
    service
        .serve(
            "orders",
            SessionRequest::Update {
                view: "sup".into(),
                new_state: Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"], ["s2"]])),
            },
        )
        .unwrap();
    let wal = dir.join("orders.wal");
    println!(
        "served 2 requests; {} holds {} bytes",
        wal.display(),
        std::fs::metadata(&wal).unwrap().len()
    );

    // 2. Crash.  The process dies mid-append, leaving half a record's
    //    frame of garbage at the tail of the log.
    drop(service);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x17; 9]);
    std::fs::write(&wal, &bytes).unwrap();
    println!("crash: appended a 9-byte torn tail");

    // 3. Recover the whole directory: one session per *.wal file.  A log
    //    that cannot be recovered degrades only its own session; here the
    //    torn tail is simply truncated.
    let (mut service, reports) =
        Service::<SubschemaComponents>::open_dir(&dir, SyncPolicy::Always, |_| {
            (family(), schema())
        })
        .unwrap();
    for (name, report) in &reports {
        match report {
            Ok(r) => println!(
                "recovered {name:?}: {} records replayed, {}/{} bytes salvaged ({})",
                r.records_applied, r.bytes_salvaged, r.bytes_total, r.stopped
            ),
            Err(e) => println!("could not recover {name:?}: {e}"),
        }
    }

    // The update survived the crash: the view reads back both suppliers.
    match service
        .serve("orders", SessionRequest::Read { view: "sup".into() })
        .unwrap()
    {
        SessionResponse::State(state) => {
            println!(
                "view 'sup' after recovery: {} tuples",
                state.rel("Suppliers").len()
            );
        }
        other => println!("unexpected response: {other:?}"),
    }

    // 4. Checkpoint: compact the log to a single snapshot record.  Undo
    //    history rides along in the snapshot, so undo still works across
    //    the checkpoint boundary.
    let before = std::fs::metadata(&wal).unwrap().len();
    service.checkpoint("orders").unwrap();
    let after = std::fs::metadata(&wal).unwrap().len();
    println!("checkpoint compacted the log: {before} -> {after} bytes");
    service.serve("orders", SessionRequest::Undo).unwrap();
    println!("undo across the checkpoint boundary: ok");

    std::fs::remove_dir_all(&dir).ok();
}
