//! The view-update session service: multiple independent sessions over
//! evolving tuple pools, each serving typed requests — register a
//! component view, read it, update through it (constant-complement,
//! Thm 3.1.1), edit the pool with incremental state-space maintenance,
//! undo, and snapshot the counters.
//!
//! Run with: `cargo run --example session`

use compview::core::SubschemaComponents;
use compview::logic::Schema;
use compview::relation::{rel, Instance, RelDecl, Signature};
use compview::session::{Service, Session, SessionConfig, SessionRequest, SessionResponse};
use std::collections::BTreeMap;

fn main() {
    // Schema: two unary relations; the subschema components {R} and {S}
    // are complements of one another (Ex 1.3.6 shape).
    let sig = Signature::new([
        RelDecl::new("Suppliers", ["S#"]),
        RelDecl::new("Parts", ["P#"]),
    ]);
    let tuples = |r: &compview::relation::Relation| r.iter().cloned().collect::<Vec<_>>();
    let pools: BTreeMap<_, _> = [
        ("Suppliers".to_owned(), tuples(&rel(1, [["s1"], ["s2"]]))),
        ("Parts".to_owned(), tuples(&rel(1, [["p1"]]))),
    ]
    .into();
    let base = Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"]]));

    let open = || {
        Session::open(
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools,
            base.clone(),
            SessionConfig::default(),
        )
        .expect("base state is legal")
    };

    let mut service = Service::new();
    service.add_session("alice", open()).unwrap();
    service.add_session("bob", open()).unwrap();

    // A batch across sessions: per-session order is preserved, sessions
    // are served concurrently, and the results are deterministic at any
    // thread count.
    let batch = vec![
        (
            "alice".to_owned(),
            SessionRequest::RegisterView {
                name: "sup".into(),
                mask: 0b01,
            },
        ),
        (
            "alice".to_owned(),
            SessionRequest::Update {
                view: "sup".into(),
                new_state: Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"], ["s2"]])),
            },
        ),
        (
            "bob".to_owned(),
            SessionRequest::InsertPoolTuple {
                relation: "Parts".into(),
                tuple: rel(1, [["p2"]]).iter().next().unwrap().clone(),
            },
        ),
        (
            "bob".to_owned(),
            // Rejected: the view does not exist in bob's session. The
            // error is typed and bob's state is untouched.
            SessionRequest::Read { view: "sup".into() },
        ),
        ("alice".to_owned(), SessionRequest::Stats),
    ];
    for (who, result) in batch
        .iter()
        .map(|(w, _)| w)
        .zip(service.dispatch(batch.clone()))
    {
        match result {
            Ok(SessionResponse::Stats(snap)) => println!(
                "{who}: stats — {} requests, {} accepted, {} rejected, \
                 {} states, cache {} hits / {} misses",
                snap.counters.requests,
                snap.counters.accepted,
                snap.counters.rejected,
                snap.states,
                snap.counters.cache_hits,
                snap.counters.cache_misses,
            ),
            Ok(SessionResponse::PoolEdited(r)) => println!(
                "{who}: pool edited incrementally, {} -> {} states",
                r.states_before, r.states_after
            ),
            Ok(resp) => println!("{who}: {resp:?}"),
            Err(e) => println!("{who}: rejected — {e}"),
        }
    }

    // Each session evolved independently.
    let alice = service.session("alice").unwrap();
    let bob = service.session("bob").unwrap();
    println!(
        "alice sees {:?}, bob's space grew to {} states",
        alice.state().rel("Suppliers"),
        bob.space().len()
    );
}
