//! Network walkthrough: a durable view-update service behind the TCP
//! wire protocol, with group commit.
//!
//! The server owns a `Service` and a dispatcher thread; every connection
//! feeds decoded requests into one queue, and the dispatcher drains the
//! queue in batches through `Service::dispatch` — so concurrent clients
//! pay one fsync per batch per touched session, not one per request
//! (DESIGN.md §10).  The wire frames are CRC-checked and carry exactly
//! the session codec's bytes, so what a client receives is byte-for-byte
//! what an in-process `dispatch` would have returned.
//!
//! Dispatch is sharded: `--shards N` (default 1) runs N dispatcher
//! threads, sessions hash-partitioned by name, so independent sessions
//! dispatch on independent cores while each connection still receives
//! its answers in request order.  Responses and WAL bytes are identical
//! at every shard count.
//!
//! Run with: `cargo run --example serve -- --shards 4`
//!
//! `--subscribe <session>/<view>` switches to the delta-subscription
//! walkthrough (DESIGN.md §13): a second connection subscribes to the
//! view, the writer drives the same burst of updates, and every change
//! arrives as a pushed, sequence-numbered delta event — no polling.
//! Try: `cargo run --example serve -- --subscribe orders/sup`
//!
//! `--follow <addr>` switches to the replication walkthrough (DESIGN.md
//! §14): instead of leading, the process syncs a fresh durable service
//! against the leader at `<addr>`, serves reads from its own port, and
//! shows the typed `NotLeader` refusal a write receives.  Pair it with a
//! leader kept alive by `--hold <seconds>`:
//!
//! ```text
//! terminal 1:  cargo run --example serve -- --hold 60
//! terminal 2:  cargo run --example serve -- --follow 127.0.0.1:<port>
//! ```
//!
//! `--follow` composes with `--hold`: a held follower is itself an
//! upstream, so a third process can chain off it (DESIGN.md §15) —
//! `--follow 127.0.0.1:<follower-port>` — and its write refusals name
//! the *root* leader, not the follower it tails.
//!
//! `--trace N` turns on distributed tracing (DESIGN.md §16) at a 1-in-N
//! head-sampling rate on whichever node this process runs (leader or
//! follower); every node in a tree should share one rate so a sampled
//! request is sampled at every hop.  `--trace-update <addr>` is the
//! matching client mode: it walks the topology chain from `<addr>` to
//! the root, sends one traced update to the root leader, drains every
//! node's span buffer, and prints the assembled cross-process span tree.
//!
//! `--topology <addr>` walks the replication chain from `<addr>` toward
//! the root and renders the tree: each node's role, upstream, heartbeat
//! freshness, per-session apply positions, and downstream counts.

use compview::core::SubschemaComponents;
use compview::logic::Schema;
use compview::obs::{DistTracer, SpanRecord, TraceCtx};
use compview::relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview::serve::{Client, Replica, ReplicaOptions, ServeOptions, Server};
use compview::session::{
    DispatchError, Service, SessionConfig, SessionError, SessionRequest, SessionResponse,
    SyncPolicy,
};
use std::collections::BTreeMap;

fn main() {
    let mut shards = 1usize;
    let mut subscribe: Option<(String, String)> = None;
    let mut follow: Option<String> = None;
    let mut hold = 0u64;
    let mut trace = 0u64;
    let mut topology: Option<String> = None;
    let mut trace_update: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--shards takes a positive integer");
            }
            "--subscribe" => {
                let spec = args.next().expect("--subscribe takes <session>/<view>");
                let (session, view) = spec
                    .split_once('/')
                    .expect("--subscribe takes <session>/<view>");
                subscribe = Some((session.to_owned(), view.to_owned()));
            }
            "--follow" => {
                follow = Some(args.next().expect("--follow takes the leader's <addr>"));
            }
            "--hold" => {
                hold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--hold takes a number of seconds");
            }
            "--trace" => {
                trace = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trace takes a sampling rate N (1 = every request)");
            }
            "--topology" => {
                topology = Some(args.next().expect("--topology takes a node <addr>"));
            }
            "--trace-update" => {
                trace_update = Some(args.next().expect("--trace-update takes a node <addr>"));
            }
            other => panic!(
                "unknown argument {other:?} (supported: --shards N, \
                 --subscribe <session>/<view>, --follow <addr>, --hold <seconds>, \
                 --trace N, --topology <addr>, --trace-update <addr>)"
            ),
        }
    }

    // The two client-only modes need no local service: walk the chain
    // and exit.
    if let Some(start) = topology {
        topology_demo(&start);
        return;
    }
    if let Some(start) = trace_update {
        trace_update_demo(&start, trace.max(1));
        return;
    }

    let dir = std::env::temp_dir().join(format!("compview-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let sig = Signature::new([
        RelDecl::new("Suppliers", ["S#"]),
        RelDecl::new("Parts", ["P#"]),
    ]);
    let pools: BTreeMap<String, Vec<Tuple>> = [
        (
            "Suppliers".to_owned(),
            vec![
                Tuple::new([v("s1")]),
                Tuple::new([v("s2")]),
                Tuple::new([v("s3")]),
            ],
        ),
        ("Parts".to_owned(), vec![Tuple::new([v("p1")])]),
    ]
    .into();
    let base = Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"]]));
    let family = || SubschemaComponents::singletons(sig.clone());
    let schema = || Schema::unconstrained(sig.clone());

    // 1. A service with one durable session, fsync-per-record.  The
    //    server's batch dispatcher will amortise those fsyncs.
    let mut service = Service::new();
    service
        .create_durable_session(
            &dir,
            "orders",
            family(),
            schema(),
            &pools,
            base,
            SessionConfig::default(),
            SyncPolicy::Always,
        )
        .unwrap();

    if let Some(leader) = follow {
        follow_demo(&leader, service, hold, trace);
        std::fs::remove_dir_all(&dir).ok();
        return;
    }

    // 2. Put it behind a TCP server on an ephemeral port, dispatch
    //    sharded across `--shards` dispatcher threads.
    let server = Server::bind_with(
        "127.0.0.1:0",
        service,
        ServeOptions {
            shards,
            trace_sample: trace,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    println!(
        "serving on {addr} with {} dispatcher shard(s)",
        server.shard_count()
    );

    if let Some((session, view)) = subscribe {
        subscribe_demo(addr, &sig, &session, &view);
        let _ = server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        return;
    }

    // 3. A client registers a view, pipelines a burst of updates (the
    //    server groups whatever arrives together into one batch — one
    //    fsync for the lot), then reads the view back.
    let mut client = Client::connect(addr).unwrap();
    client
        .request(
            "orders",
            &SessionRequest::RegisterView {
                name: "sup".into(),
                mask: 0b01,
            },
        )
        .unwrap()
        .unwrap();
    let states = [
        Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"], ["s2"]])),
        Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"], ["s2"], ["s3"]])),
        Instance::null_model(&sig).with("Suppliers", rel(1, [["s2"], ["s3"]])),
    ];
    for new_state in states {
        client
            .send(
                "orders",
                &SessionRequest::Update {
                    view: "sup".into(),
                    new_state,
                },
            )
            .unwrap();
    }
    for i in 0..3 {
        let res = client.recv().unwrap().unwrap();
        println!("update {}: {}", i + 1, label(&res));
    }
    match client
        .request("orders", &SessionRequest::Read { view: "sup".into() })
        .unwrap()
        .unwrap()
    {
        SessionResponse::State(state) => {
            println!(
                "view 'sup' now holds {} tuples",
                state.rel("Suppliers").len()
            )
        }
        other => println!("unexpected response: {other:?}"),
    }

    // An unknown session is an answer, not a dropped connection.
    let ghost = client.request("ghost", &SessionRequest::Stats).unwrap();
    println!("request to unknown session: {:?}", ghost.unwrap_err());

    // 4. Keep serving if asked (so a `--follow` process in another
    //    terminal can attach), then shut down and take the service back:
    //    everything the clients did is in it — and, being durable, also
    //    in orders.wal on disk.
    if hold > 0 {
        println!("holding the leader open on {addr} for {hold}s — follow it with:");
        println!("    cargo run --example serve -- --follow {addr}");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    drop(client);
    let service = server.shutdown();
    let stats = service.session("orders").unwrap().stats();
    let wal = dir.join("orders.wal");
    println!(
        "server drained: {} requests served, {} bytes in {}",
        stats.requests,
        std::fs::metadata(&wal).unwrap().len(),
        wal.display()
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The `--follow` walkthrough: sync the fresh durable service against
/// the upstream, serve reads from a local port, and show the follower
/// contract — reads answered locally, writes refused with a typed
/// `NotLeader` naming the *root* leader (which differs from the
/// upstream when this follower is chained off another follower).
fn follow_demo(leader: &str, service: Service<SubschemaComponents>, hold: u64, trace: u64) {
    let mut options = ReplicaOptions::default();
    options.serve.trace_sample = trace;
    let replica = Replica::start("127.0.0.1:0", leader, service, options)
        .unwrap_or_else(|e| panic!("cannot follow {leader}: {e}"));
    println!(
        "following {} (root leader {}) — serving reads on {}",
        replica.leader_addr(),
        replica.root_addr(),
        replica.local_addr()
    );

    let mut client = Client::connect(replica.local_addr()).unwrap();
    match client
        .request("orders", &SessionRequest::Read { view: "sup".into() })
        .unwrap()
    {
        Ok(SessionResponse::State(state)) => println!(
            "replicated view 'sup' holds {} tuples",
            state.rel("Suppliers").len()
        ),
        other => println!("view 'sup' not readable yet: {other:?}"),
    }

    // A follower refuses durable writes with an answer, not a dropped
    // connection — and the answer names the leader to retry against.
    let refused = client
        .request(
            "orders",
            &SessionRequest::Update {
                view: "sup".into(),
                new_state: Instance::null_model(&Signature::new([
                    RelDecl::new("Suppliers", ["S#"]),
                    RelDecl::new("Parts", ["P#"]),
                ])),
            },
        )
        .unwrap();
    match refused {
        Err(DispatchError::Session(SessionError::NotLeader { leader_addr })) => {
            println!("write refused: not the leader — retry against {leader_addr}")
        }
        other => println!("unexpected write outcome: {other:?}"),
    }

    let snap = client.metrics().unwrap();
    for name in ["repl.reconnects", "repl.resets"] {
        if let Some((_, v)) = snap.counters.iter().find(|(n, _)| n == name) {
            println!("{name} = {v}");
        }
    }
    for name in ["repl.lag_records", "repl.connected"] {
        if let Some((_, v)) = snap.gauges.iter().find(|(n, _)| n == name) {
            println!("{name} = {v}");
        }
    }

    drop(client);
    if hold > 0 {
        let addr = replica.local_addr();
        println!("holding the follower open on {addr} for {hold}s — chain off it with:");
        println!("    cargo run --example serve -- --follow {addr}");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    let _ = replica.shutdown();
    println!("follower drained");
}

/// The `--subscribe` walkthrough: register the view, open a delta
/// subscription on a second connection, drive updates from the first,
/// and print the pushed stream.
fn subscribe_demo(addr: std::net::SocketAddr, sig: &Signature, session: &str, view: &str) {
    let mut writer = Client::connect(addr).unwrap();
    writer
        .request(
            "orders",
            &SessionRequest::RegisterView {
                name: "sup".into(),
                mask: 0b01,
            },
        )
        .unwrap()
        .unwrap();

    let mut subscriber = Client::connect(addr).unwrap();
    let (sub, image) = match subscriber.subscribe(session, view).unwrap() {
        Ok(opened) => opened,
        Err(e) => {
            // A bad target is an answer, not a dropped connection.
            println!("subscribe to {session}/{view} refused: {e:?}");
            return;
        }
    };
    println!(
        "subscription #{sub} on {session}/{view}: image at seq 0 holds {} tuples",
        image.rel("Suppliers").len()
    );

    let states = [
        Instance::null_model(sig).with("Suppliers", rel(1, [["s1"], ["s2"]])),
        Instance::null_model(sig).with("Suppliers", rel(1, [["s1"], ["s2"], ["s3"]])),
        Instance::null_model(sig).with("Suppliers", rel(1, [["s2"], ["s3"]])),
    ];
    let changes = states.len();
    for new_state in states {
        writer
            .request(
                "orders",
                &SessionRequest::Update {
                    view: "sup".into(),
                    new_state,
                },
            )
            .unwrap()
            .unwrap();
    }

    // The demo writer only touches orders/sup; a subscription elsewhere
    // stays silent, so only drain the stream we actually fed.
    if (session, view) == ("orders", "sup") {
        for _ in 0..changes {
            let (from, event) = subscriber.next_event().unwrap();
            match &event.kind {
                compview::session::DeltaKind::Rows { added, removed } => println!(
                    "event seq {} from {from}/{}: +{} -{} tuples",
                    event.seq,
                    event.view,
                    added.rel("Suppliers").len(),
                    removed.rel("Suppliers").len(),
                ),
                other => println!("event seq {} from {from}: {other:?}", event.seq),
            }
        }
    } else {
        println!("(the demo writer only updates orders/sup — stream stays silent)");
    }

    let done = subscriber
        .request(session, &SessionRequest::Unsubscribe { sub })
        .unwrap()
        .unwrap();
    assert!(matches!(done, SessionResponse::Unsubscribed { .. }));
    println!("unsubscribed: the stream is closed");
}

/// The `--topology` walkthrough: walk the chain from `start` toward the
/// root and render the tree root-first, one node per line.
fn topology_demo(start: &str) {
    let chain = Client::topology_chain(start)
        .unwrap_or_else(|e| panic!("cannot fetch topology from {start}: {e}"));
    println!(
        "replication topology from {start} ({} node(s)):",
        chain.len()
    );
    // The walk runs leaf -> root; render root-first so indentation
    // mirrors the direction WAL records flow.
    for (depth, (addr, t)) in chain.iter().rev().enumerate() {
        let pad = "  ".repeat(depth);
        let arrow = if depth == 0 { "" } else { "└─ " };
        let beat = match t.heartbeat_age_ms {
            None => String::new(),
            Some(ms) => format!(", heartbeat {ms}ms ago"),
        };
        println!(
            "{pad}{arrow}{addr}  [{}]  {} repl stream(s), {} subscriber(s){beat}",
            t.role, t.repl_streams, t.subscribers
        );
        for s in &t.sessions {
            let age = if s.lag_age_ms == u64::MAX {
                "never applied".to_owned()
            } else {
                format!("applied {}ms ago", s.lag_age_ms)
            };
            println!(
                "{pad}   {}: gen {} applied {}/{} (lag {}, {age})",
                s.name,
                s.gen,
                s.applied,
                s.target,
                s.lag_records()
            );
        }
    }
}

/// The `--trace-update` walkthrough: one traced write, observed end to
/// end.  Walks the topology chain from `start` to find the root leader,
/// opens a `client.send` root span, ships the update with its trace
/// context on the wire, then drains every node's span buffer and prints
/// the assembled tree — client, leader shards, WAL, each follower hop.
fn trace_update_demo(start: &str, rate: u64) {
    let chain = Client::topology_chain(start)
        .unwrap_or_else(|e| panic!("cannot fetch topology from {start}: {e}"));
    let root_addr = chain.last().expect("non-empty chain").0.clone();
    println!(
        "tracing one update against root leader {root_addr} ({} node(s) in the chain)",
        chain.len()
    );

    let tracer = DistTracer::new();
    tracer.configure("client", rate);
    let ctx = TraceCtx {
        trace_id: tracer.sampled_trace_id(),
        parent_span: 0,
    };

    let sig = Signature::new([
        RelDecl::new("Suppliers", ["S#"]),
        RelDecl::new("Parts", ["P#"]),
    ]);
    let new_state = Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"], ["s2"], ["s3"]]));
    let mut client = Client::connect(&root_addr).unwrap();
    {
        let span = tracer.span(ctx, "client.send");
        let wire = span.ctx().unwrap_or(ctx);
        client
            .request_traced(
                "orders",
                &SessionRequest::Update {
                    view: "sup".into(),
                    new_state,
                },
                wire,
            )
            .unwrap()
            .unwrap();
    }

    // The write is acknowledged once the leader commits; replication to
    // the downstream hops is asynchronous.  Poll each node's buffer
    // until every hop has contributed a span (or a timeout passes —
    // drains are destructive, so partial harvests accumulate).
    let mut spans: Vec<(String, SpanRecord)> = tracer
        .drain()
        .spans
        .into_iter()
        .map(|s| ("client".to_owned(), s))
        .collect();
    let mut reported: BTreeMap<String, usize> = BTreeMap::new();
    for _ in 0..50 {
        for (addr, _) in &chain {
            if let Ok(snap) = Client::connect(addr).and_then(|mut c| c.trace()) {
                for s in snap.spans {
                    if s.trace_id == ctx.trace_id {
                        *reported.entry(addr.clone()).or_insert(0) += 1;
                        spans.push((addr.clone(), s));
                    }
                }
            }
        }
        if reported.len() == chain.len() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    let nodes: Vec<&str> = spans
        .iter()
        .map(|(n, _)| n.as_str())
        .fold(Vec::new(), |mut acc, n| {
            if !acc.contains(&n) {
                acc.push(n);
            }
            acc
        });
    println!(
        "trace {:016x}: {} span(s) across {} node(s): {}",
        ctx.trace_id,
        spans.len(),
        nodes.len(),
        nodes.join(", ")
    );
    print_span_tree(&spans);
}

/// Render one trace's spans as an indented tree: children under their
/// `parent_span`, siblings in start order, orphans (parent not drained)
/// at the root level so nothing is silently dropped.
fn print_span_tree(spans: &[(String, SpanRecord)]) {
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|(_, s)| s.span_id).collect();
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].1.start_ns, spans[i].1.span_id));
    fn walk(
        parent: u64,
        depth: usize,
        order: &[usize],
        spans: &[(String, SpanRecord)],
        ids: &std::collections::BTreeSet<u64>,
    ) {
        for &i in order {
            let (node, s) = &spans[i];
            let at_root = s.parent_span == 0 || !ids.contains(&s.parent_span);
            if if parent == 0 {
                !at_root
            } else {
                s.parent_span != parent
            } {
                continue;
            }
            println!(
                "{}{} @ {node} ({:.1} us)",
                "  ".repeat(depth + 1),
                s.label,
                s.dur_ns as f64 / 1000.0
            );
            walk(s.span_id, depth + 1, order, spans, ids);
        }
    }
    walk(0, 0, &order, spans, &ids);
}

fn label(res: &SessionResponse) -> &'static str {
    match res {
        SessionResponse::Updated(_) => "performed",
        _ => "other",
    }
}
