//! Observability walkthrough: metrics and tracing end to end.
//!
//! A durable service (with automatic checkpointing) runs behind the TCP
//! server; a client pipelines a workload, then asks for the service-wide
//! metrics snapshot **over the wire** — the `Metrics` request rides the
//! same CRC-gated frames as everything else.  Afterwards the example
//! renders the registry in Prometheus text format and prints the
//! ring-buffer tracer's span breakdown of the workload (DESIGN.md §11).
//!
//! Run with: `cargo run --example obs`

use compview::core::SubschemaComponents;
use compview::logic::Schema;
use compview::obs::TraceKind;
use compview::relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview::serve::{Client, Server};
use compview::session::{CheckpointPolicy, Service, SessionConfig, SessionRequest, SyncPolicy};
use std::collections::BTreeMap;

fn main() {
    let dir = std::env::temp_dir().join(format!("compview-obs-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let sig = Signature::new([
        RelDecl::new("Suppliers", ["S#"]),
        RelDecl::new("Parts", ["P#"]),
    ]);
    let pools: BTreeMap<String, Vec<Tuple>> = [
        (
            "Suppliers".to_owned(),
            vec![
                Tuple::new([v("s1")]),
                Tuple::new([v("s2")]),
                Tuple::new([v("s3")]),
            ],
        ),
        ("Parts".to_owned(), vec![Tuple::new([v("p1")])]),
    ]
    .into();
    let base = Instance::null_model(&sig).with("Suppliers", rel(1, [["s1"]]));

    // 1. A service (its registry is live by default) hosting one durable
    //    session that compacts its own log every 8 records.
    let mut service = Service::new();
    service.registry().tracer().enable(512);
    let config = SessionConfig {
        checkpoint: CheckpointPolicy {
            max_records: 8,
            max_log_bytes: 0,
        },
        ..SessionConfig::default()
    };
    service
        .create_durable_session(
            &dir,
            "orders",
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools,
            base,
            config,
            SyncPolicy::Always,
        )
        .unwrap();

    // 2. Serve a pipelined workload over TCP.
    let server = Server::bind("127.0.0.1:0", service).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .send(
            "orders",
            &SessionRequest::RegisterView {
                name: "sup".into(),
                mask: 0b01,
            },
        )
        .unwrap();
    let mut sent = 1;
    for round in 0..6 {
        let tuples: Vec<[&str; 1]> = if round % 2 == 0 {
            vec![["s1"], ["s2"]]
        } else {
            vec![["s1"], ["s3"]]
        };
        client
            .send(
                "orders",
                &SessionRequest::Update {
                    view: "sup".into(),
                    new_state: Instance::null_model(&sig).with("Suppliers", rel(1, tuples)),
                },
            )
            .unwrap();
        client
            .send("orders", &SessionRequest::Read { view: "sup".into() })
            .unwrap();
        sent += 2;
    }
    for _ in 0..sent {
        client.recv().unwrap().unwrap();
    }

    // 3. The metrics snapshot, fetched over the wire like any request.
    let snapshot = client.metrics().unwrap();
    println!("=== metrics over the wire (Prometheus text format) ===");
    print!("{}", snapshot.render_text());

    // 4. Shut down, then read the tracer's recent-event window.
    drop(client);
    let service = server.shutdown();
    let (events, recorded) = service.registry().tracer().snapshot();
    println!(
        "=== trace ring: {} of {} events retained ===",
        events.len(),
        recorded
    );
    let mut starts: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for e in &events {
        match e.kind {
            TraceKind::Start => starts.entry(e.label).or_default().2 = e.at_ns,
            TraceKind::End => {
                let slot = starts.entry(e.label).or_default();
                slot.0 += 1;
                slot.1 += e.at_ns.saturating_sub(slot.2);
            }
            TraceKind::Instant => {
                starts.entry(e.label).or_default().0 += 1;
            }
        }
    }
    for (label, (count, total_ns, _)) in &starts {
        println!("  {label:<20} x{count:<4} {total_ns} ns total");
    }

    std::fs::remove_dir_all(&dir).ok();
}
