//! Regenerate every experiment's *shape table* in one deterministic run —
//! the quick reproduction entry point behind EXPERIMENTS.md (the Criterion
//! benches measure the same mechanisms with statistical rigour; this
//! binary prints the who-wins/by-what-factor numbers in seconds).
//!
//! Run with: `cargo run --release --example experiment_report`

use compview::core::paper::{example_1_1_1, example_1_3_6, example_2_1_1};
use compview::core::{
    complement, strategy, strong, update, workload, xor, MatView, PathComponents, Strategy,
    UpdateSpec,
};
use compview::logic::PathSchema;
use compview::relation::{Relation, Tuple, Value};
use std::time::Instant;

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    e1_side_effects();
    e7_xor_ratio();
    e8_closure_scaling();
    e10_translation_vs_brute_force();
    t1_admissibility_sweep();
    summary_of_theorem_checks();
}

fn e1_side_effects() {
    println!("== E1: join-view insertion side effects by part fan-out ==");
    println!("   fanout   side-effect tuples");
    for &f in &[1usize, 4, 16, 64, 256] {
        let mut sp = Relation::empty(2);
        let mut pj = Relation::empty(2);
        for i in 0..f {
            sp.insert(Tuple::new([Value::Int(i as i64), Value::Int(0)]));
            pj.insert(Tuple::new([Value::Int(0), Value::Int(i as i64)]));
        }
        let before = sp.join(&pj, &[(1, 0)]).len();
        sp.insert(Tuple::new([Value::Int(-1), Value::Int(0)]));
        pj.insert(Tuple::new([Value::Int(0), Value::Int(-1)]));
        let after = sp.join(&pj, &[(1, 0)]).len();
        println!("   {f:6}   {}", after - before - 1);
    }
    println!();
}

fn e7_xor_ratio() {
    println!("== E7/E11: reflected change, Γ2 (strong) vs Γ3 (XOR) constant ==");
    println!("   |R|=|S|    |ΔR|   via Γ2   via Γ3   ratio");
    for &(n, edits) in &[
        (100usize, 10usize),
        (1_000, 50),
        (10_000, 200),
        (100_000, 1_000),
    ] {
        let mut rng = workload::rng(41);
        let base = workload::random_two_unary(n, n + n / 2, &mut rng);
        let new_r = workload::mutate_unary(base.rel("R"), edits, edits, n + n / 2, &mut rng);
        let cmp = xor::compare(&base, &new_r);
        println!(
            "   {:7}   {:5}   {:6}   {:6}   {:.1}×",
            n,
            base.rel("R").sym_diff(&new_r).len(),
            cmp.change_via_s,
            cmp.change_via_t,
            cmp.change_via_t as f64 / cmp.change_via_s.max(1) as f64
        );
    }
    println!();
}

fn e8_closure_scaling() {
    println!("== E8: null-augmented closure scaling (specialised engine) ==");
    println!("   generators   closed objects   µs/run");
    let ps = PathSchema::example_2_1_1();
    for &n in &[100usize, 300, 1000, 3000, 10000] {
        let closed = workload::random_path_instance(&ps, n, (n / 4).max(3), &mut workload::rng(37));
        let (reclosed, us) = time(|| ps.close(&closed));
        println!("   {n:10}   {:14}   {us:8.0}", reclosed.len());
    }
    println!();
}

fn e10_translation_vs_brute_force() {
    println!("== E10/T2 (headline): component translation vs brute-force search ==");
    let ps = PathSchema::example_2_1_1();
    let pc = PathComponents::new(ps.clone());
    println!("   component translation:");
    println!("   objects   µs/update");
    for &n in &[10usize, 100, 1000, 3000] {
        let base = workload::random_path_instance(&ps, n, (n / 4).max(3), &mut workload::rng(7));
        let part = pc.endo(0b001, &base);
        let new_part = workload::mutate_component_state(
            &ps,
            0b001,
            &part,
            3,
            2,
            (n / 4).max(3),
            &mut workload::rng(11),
        );
        let (_, us) = time(|| pc.translate(0b001, &base, &new_part).unwrap());
        println!("   {:7}   {us:9.0}", base.len());
    }
    println!("   brute-force search (pool = closure of base ∪ request):");
    println!("   pool bits   µs/update");
    for &n in &[2usize, 3, 4] {
        let base = workload::random_path_instance(&ps, n, 3, &mut workload::rng(13));
        let part = pc.endo(0b001, &base);
        let new_part =
            workload::mutate_component_state(&ps, 0b001, &part, 1, 0, 3, &mut workload::rng(17));
        let pool = ps.close(&base.union(&new_part)).len();
        if pool > 16 {
            continue;
        }
        let (_, us) = time(|| pc.translate_brute_force(0b001, &base, &new_part).unwrap());
        println!("   {pool:9}   {us:9.0}");
    }
    println!("   (each pool bit doubles the search; components stay ~linear)\n");
}

fn t1_admissibility_sweep() {
    println!("== T1: admissibility audit of the canonical strategy ==");
    let sp = example_1_3_6::space(2);
    let g1 = MatView::materialise(example_1_3_6::gamma1(), &sp);
    let g2 = MatView::materialise(example_1_3_6::gamma2(), &sp);
    let g3 = MatView::materialise(example_1_3_6::gamma3(), &sp);
    for (name, comp) in [("Γ2 (component)", &g2), ("Γ3 (XOR)", &g3)] {
        let rho = Strategy::constant_complement(&sp, &g1, comp);
        let report = strategy::check(&sp, &g1, &rho);
        println!(
            "   complement {name:<15} total={} sound={} nonextraneous={} functorial={} \
             symmetric={} state-indep={} ⇒ admissible={}",
            rho.is_total(&sp, &g1),
            report.sound.is_ok(),
            report.nonextraneous.is_ok(),
            report.functorial.is_ok(),
            report.symmetric.is_ok(),
            report.state_independent.is_ok(),
            report.is_admissible()
        );
    }
    println!();
}

fn summary_of_theorem_checks() {
    println!("== Exhaustive theorem checks (this run) ==");

    // Thm 1.3.2 on the Example 1.1.1 space.
    let (sp, view) = example_1_1_1::small_space_and_join_view();
    let mv = MatView::materialise(view, &sp);
    let id = MatView::materialise(compview::core::View::identity(sp.schema().sig()), &sp);
    let mut max_sols = 0usize;
    for base in 0..sp.len() {
        for target in 0..mv.n_states() {
            max_sols = max_sols.max(
                complement::constant_complement_solutions(
                    &sp,
                    &mv,
                    &id,
                    UpdateSpec { base, target },
                )
                .len(),
            );
        }
    }
    println!(
        "   Thm 1.3.2 (uniqueness per complement): max solutions with 1_D constant = {max_sols}"
    );

    // Prop 1.2.6 across all specs of the join-view space.
    let mut checked = 0usize;
    for base in 0..sp.len() {
        for target in 0..mv.n_states() {
            let sols = update::solutions(&mv, UpdateSpec { base, target });
            assert!(update::prop_1_2_6_holds(&sp, base, &sols));
            checked += 1;
        }
    }
    println!("   Prop 1.2.6: verified on {checked} update specifications");

    // Thm 2.3.3 / Lemma 2.3.2 on the Example 2.3.4 space.
    let sp2 = example_2_1_1::small_space(&example_2_1_1::small_generator_pool());
    let atom = |name: &str, cols: &[usize]| {
        let m = MatView::materialise(example_2_1_1::object_view(name, cols), &sp2);
        (name.to_owned(), strong::endomorphism(&sp2, &m))
    };
    let alg = compview::core::ComponentAlgebra::generate(
        &sp2,
        vec![
            atom("AB", &[0, 1]),
            atom("BC", &[1, 2]),
            atom("CD", &[2, 3]),
        ],
    )
    .expect("component algebra");
    alg.verify().expect("Boolean axioms");
    println!(
        "   Thm 2.3.3: component algebra of Ex 2.3.4 = {} elements over {} states, \
         all Boolean axioms verified",
        alg.len(),
        sp2.len()
    );
    println!("\nAll shape claims of EXPERIMENTS.md regenerated. ✓");
}
