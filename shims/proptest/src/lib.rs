//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses — the `proptest!`
//! macro, integer-range / tuple / `prop_map` / collection strategies, and
//! the `prop_assert*` family — on a deterministic per-test PRNG.  Cases are
//! generated from a seed derived from the test name, so failures reproduce
//! exactly run-to-run.  No shrinking: the failing case is reported as-is,
//! which is acceptable for the small structured inputs used here.

/// Test-runner plumbing: configuration, RNG, case outcomes.
pub mod test_runner {
    /// Runner configuration (subset of proptest's).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is discarded, not failed.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic case generator (SplitMix64 seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the test's name).
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample from empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Integers expressible as offsets from a range start.
    pub trait ArbInt: Copy {
        /// Offset of `self` above `lo`.
        fn offset_from(self, lo: Self) -> u64;
        /// `lo + off`.
        fn offset_to(lo: Self, off: u64) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl ArbInt for $t {
                fn offset_from(self, lo: Self) -> u64 {
                    (self as i128 - lo as i128) as u64
                }
                fn offset_to(lo: Self, off: u64) -> Self {
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: ArbInt> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let span = self.end.offset_from(self.start);
            T::offset_to(self.start, rng.below(span))
        }
    }

    impl<T: ArbInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let span = self.end().offset_from(*self.start());
            if span == u64::MAX {
                return T::offset_to(*self.start(), rng.next_u64());
            }
            T::offset_to(*self.start(), rng.below(span + 1))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $i:tt),*) => {
            impl<$($s: Strategy),*> Strategy for ($($s,)*) {
                type Value = ($($s::Value,)*);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
}

/// Collection strategies (`prop::collection::…`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `BTreeSet` of `element` values with roughly `size` members (duplicate
    /// draws collapse, as in proptest).
    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: deterministic random cases, no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($tail)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut case: u64 = 0;
            while accepted < config.cases {
                case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at deterministic case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in range; tuples and maps compose.
        #[test]
        fn ranges_and_tuples(
            x in 3usize..=5,
            pair in (0u8..4, -5i64..5),
            v in prop::collection::vec((0usize..2, 0u8..3), 0..12),
        ) {
            prop_assert!((3..=5).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((-5..5).contains(&pair.1));
            prop_assert!(v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 2 && b < 3);
            }
        }

        /// `prop_assume` discards without failing.
        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        /// Default config runs, and prop_map transforms values.
        #[test]
        fn mapped(label in (0u8..3).prop_map(|i| format!("v{i}"))) {
            prop_assert!(label.starts_with('v'));
            prop_assert_eq!(label.len(), 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
