//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion's API this workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) on a plain `Instant`-based harness:
//! warm up for `warm_up_time`, then time batches for `measurement_time` and
//! report the mean ns/iter.  No statistics, plots, or saved baselines — but
//! each benchmark also prints a machine-readable line
//!
//! ```text
//! compview-bench: {"id":"<group>/<leg>","mean_ns":<f64>,"iters":<u64>}
//! ```
//!
//! which `scripts/bench_snapshot.sh` collects into `BENCH_PR1.json`.

use std::time::{Duration, Instant};

/// Prefix of the machine-readable result lines.
pub const RESULT_PREFIX: &str = "compview-bench:";

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Set the per-benchmark warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Set the per-benchmark measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Accepted for CLI parity; this harness takes no arguments.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
        }
    }

    /// Run when all groups are done (no summary state to flush here).
    pub fn final_summary(&mut self) {}
}

/// Identifier for one leg of a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted as a benchmark name: plain strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The final id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Criterion API parity: sample count is folded into the fixed
    /// measurement window here, so the value itself is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or grow the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Time one closure under `<group>/<id>`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.warm_up, self.measurement, |b| f(b));
        self
    }

    /// Time one closure with an input value under `<group>/<id>`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.warm_up, self.measurement, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Warm up, then repeatedly run `routine` for the measurement window
    /// and record the mean wall-clock time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the window elapses (at least once).
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: time in growing batches so Instant overhead stays
        // negligible for sub-microsecond routines.
        let mut batch: u64 = 1;
        let mut total_ns: u128 = 0;
        let mut iters: u64 = 0;
        let window = Instant::now();
        while window.elapsed() < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_ns += t.elapsed().as_nanos();
            iters += batch;
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
        self.mean_ns = total_ns as f64 / iters as f64;
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, warm_up: Duration, measurement: Duration, mut f: F) {
    let mut b = Bencher {
        warm_up,
        measurement,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{id:<50} {:>14} ns/iter  ({} iters)",
        format_ns(b.mean_ns),
        b.iters
    );
    println!(
        "{RESULT_PREFIX} {{\"id\":\"{id}\",\"mean_ns\":{:.1},\"iters\":{}}}",
        b.mean_ns, b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.1}", ns)
    }
}

/// Declare a benchmark group runner (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(2u64 + 2)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 3))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        demo(&mut c);
        c.final_summary();
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("leg", 42).into_id(), "leg/42");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
