//! Offline stand-in for the `rand` crate.
//!
//! This workspace pins all randomness to fixed seeds (workloads and tests
//! must be reproducible run-to-run), so the only API surface it needs is
//! `StdRng::seed_from_u64` plus `random_range` over integer ranges.  The
//! container this repo builds in has no network access to crates.io, so
//! that surface is provided here, dependency-free, on top of SplitMix64 —
//! a well-studied 64-bit mixer with full period.
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace treats the stream as an opaque
//! deterministic function of the seed, so only determinism matters.

/// Core source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Integer types samplable uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Map to an order-preserving u64 offset key.
    fn to_u64_offset(self, lo: Self) -> u64;
    /// Inverse of [`SampleUniform::to_u64_offset`].
    fn from_u64_offset(lo: Self, off: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64_offset(self, lo: Self) -> u64 {
                (self as i128 - lo as i128) as u64
            }
            fn from_u64_offset(lo: Self, off: u64) -> Self {
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring the subset of `rand::Rng` /
/// `rand::RngExt` this workspace uses.
pub trait RngExt: RngCore {
    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        let span = range.end.to_u64_offset(range.start);
        assert!(span > 0, "cannot sample from empty range");
        // Multiply-shift rejection-free mapping; bias is ≤ span/2^64,
        // irrelevant for workload generation.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64_offset(range.start, hi)
    }

    /// Bernoulli draw.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn spread_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
