//! # compview
//!
//! A production-quality Rust reproduction of **S. J. Hegner, "Canonical
//! View Update Support through Boolean Algebras of Components"
//! (PODS 1984)**.
//!
//! The library answers the question the paper poses: *when a user updates
//! a database view, which change to the base database is the right one?*
//! It implements the constant-complement strategy of Bancilhon–Spyratos
//! and the paper's resolution of its complement-nonuniqueness problem —
//! restrict complements to the **components** of the schema, which form a
//! Boolean algebra and make update translation canonical (independent of
//! the complement chosen).
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`relation`] | values (with typed nulls), tuples, relations, instances, relational algebra, signatures |
//! | [`logic`] | the free Boolean type algebra, dependencies (FD/JD/IND/TGD/EGD), the chase, schemas, null-augmented path schemas |
//! | [`lattice`] | partitions & the partition lattice, finite posets, ↓-poset strong morphisms, strong endomorphisms, Boolean-algebra verification |
//! | [`core`] | views, update strategies & admissibility, complements, strong views, **the component algebra**, constant-complement translation, symbolic path-schema components, workload generators |
//! | [`session`] | the multi-session view-update service: typed requests, incremental state-space maintenance, component caching, deterministic batch dispatch |
//! | [`serve`] | the network front end: CRC-framed wire protocol over the session codec, threaded batch server with group commit, blocking client |
//! | [`obs`] | observability: lock-free counters/gauges/histograms, a ring-buffer tracer, wire-codec metrics snapshots, Prometheus-style text rendering |
//!
//! ## Quickstart
//!
//! ```
//! use compview::core::{PathComponents, paper::example_2_1_1};
//! use compview::relation::v;
//!
//! // The schema of Example 2.1.1: R[A,B,C,D] with *[AB,BC,CD] made exact
//! // through nulls.
//! let pc = PathComponents::new(example_2_1_1::path_schema());
//! let base = example_2_1_1::base_instance();
//! let r = base.rel("R").clone();
//!
//! // Update the AB component (mask 0b001): insert a new supplier pair.
//! let ps = pc.schema().clone();
//! let mut new_ab = pc.endo(0b001, &r);
//! new_ab.insert(ps.object(0, &[v("a9"), v("b9")]));
//!
//! // Constant-complement translation: unique, minimal, side-effect-free
//! // on the complement (Theorem 3.1.1).
//! let updated = pc.translate(0b001, &r, &new_ab).unwrap();
//! assert_eq!(pc.endo(0b001, &updated), new_ab);           // performed exactly
//! assert_eq!(pc.endo(0b110, &updated), pc.endo(0b110, &r)); // complement constant
//! ```

pub use compview_core as core;
pub use compview_lattice as lattice;
pub use compview_logic as logic;
pub use compview_obs as obs;
pub use compview_relation as relation;
pub use compview_serve as serve;
pub use compview_session as session;
