#!/usr/bin/env bash
# Run the headline Criterion targets (chase, partition_lattice,
# translate_scaling, incremental maintenance, session serving, WAL
# append throughput + group commit + recovery latency, wire protocol,
# sharded-dispatcher shard-count sweep, instrumentation overhead
# enabled vs no-op, delta-subscription fan-out + push-vs-poll bytes,
# replication visibility latency + catch-up throughput, topology
# fan-out visibility + chained leader egress, distributed-tracing
# overhead per sampling rate) and
# collect the vendored harness's machine-readable result lines
# ("compview-bench: {...}") into BENCH_PR10.json.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
TARGETS=(chase partition_lattice translate_scaling incremental session wal serve sharded obs subs repl fanout trace)
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

for t in "${TARGETS[@]}"; do
    echo "==> cargo bench -p compview-bench --bench $t"
    cargo bench -p compview-bench --bench "$t" | tee -a "$RAW"
done

{
    echo "["
    grep '^compview-bench: ' "$RAW" | sed 's/^compview-bench: //' | sed '$!s/$/,/'
    echo "]"
} > "$OUT"

echo "wrote $(grep -c '^compview-bench: ' "$RAW") results to $OUT"
