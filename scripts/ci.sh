#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test -p compview-session (service + incremental maintenance)"
cargo test -q -p compview-session

echo "==> cargo test -p compview-obs (metrics registry, histogram + codec proptests)"
cargo test -q -p compview-obs

# Fault-injection sweep: the recovery suite derives its injected-fault
# plans (failing append/sync/truncate points, short-write lengths) from
# COMPVIEW_FAULT_SEED, so CI can rotate seeds and a failure names its own
# reproduction.  Defaults to a fixed seed for run-to-run determinism.
echo "==> recovery fault-injection suite (COMPVIEW_FAULT_SEED=${COMPVIEW_FAULT_SEED:-20260806})"
COMPVIEW_FAULT_SEED="${COMPVIEW_FAULT_SEED:-20260806}" \
    cargo test -q -p compview-session --test recovery

# The wire protocol's contract is byte-identity with in-process dispatch;
# the loopback suite proves it at 1, 2, and 8 worker threads, plus
# connection isolation under malformed frames.
echo "==> cargo test -p compview-serve (wire codec + loopback server)"
cargo test -q -p compview-serve
cargo test -q -p compview-serve --test loopback

# The sharded dispatcher's contract is the same byte-identity at 1, 2,
# and 8 dispatcher shards — responses, per-session WAL files, and
# post-batch-consistent metrics snapshots (proptested random
# interleavings with pipelined probes included).
echo "==> cargo test -p compview-serve --test sharded (sharded dispatcher)"
cargo test -q -p compview-serve --test sharded

# The subscription subsystem's contract: the delta stream replayed over
# the subscribe-time image reconstructs a fresh read byte-for-byte, at
# 1/2/8 worker threads x 1/2/8 dispatcher shards (proptested), plus
# slow-consumer cuts, typed errors, and dead-connection cleanup.
echo "==> cargo test -p compview-serve --test subs (delta subscriptions)"
cargo test -q -p compview-serve --test subs

# The replication subsystem's contract: every follower ends
# byte-identical to the leader (state, WAL file, Read responses) at the
# same applied sequence — including a 1->4 fan-out and a 3-deep chain
# with a mid-chain node kill — across cut/bit-flipped streams and a
# leader restart, at 1/2/8 worker threads x 1/2 dispatcher shards.
# Promotion after a leader kill accepts writes having lost nothing
# acked, with a downstream replication stream and a live subscriber
# attached; sessions created mid-tail are discovered and mirrored down
# the chain; ReadAt answers at the token or refuses with typed Lagging.
# The fault scenarios derive their cut/flip plans from
# COMPVIEW_FAULT_SEED, same rotation discipline as the recovery suite.
echo "==> cargo test -p compview-serve --test replica (WAL shipping, COMPVIEW_FAULT_SEED=${COMPVIEW_FAULT_SEED:-20260806})"
COMPVIEW_FAULT_SEED="${COMPVIEW_FAULT_SEED:-20260806}" \
    cargo test -q -p compview-serve --test replica

echo "==> cargo build --example session --example recovery --example serve --benches"
cargo build --example session --example recovery --example serve
cargo build --benches -p compview-bench

# The observability walkthrough doubles as a smoke test: metrics over
# the wire, Prometheus rendering, and the span tracer end to end.
echo "==> cargo run --example obs (observability smoke)"
cargo run -q --example obs > /dev/null

# The subscription walkthrough doubles as a push-path smoke test: a live
# delta stream over TCP must deliver all three updates in sequence.
echo "==> cargo run --example serve -- --subscribe orders/sup (delta stream smoke)"
subscribe_out="$(cargo run -q --example serve -- --subscribe orders/sup)"
grep -q "event seq 3" <<< "$subscribe_out"

# The replication walkthrough doubles as a cross-process topology smoke
# test: a held leader, two direct followers (one held open as an
# upstream), and a third follower chained off the held one — all over
# real loopback TCP.  Every follower must serve the leader's data and
# refuse a write with the typed NotLeader answer; the *chained*
# follower's refusal must name the root leader, not its upstream
# (DESIGN.md §15).  (The in-process failover path — write leader, read
# follower, kill leader, promote, write promoted — is the
# `promotion_after_leader_kill` case in the replica suite above.)
# The held nodes run with --trace 1 so the tracing and topology smoke
# below can observe the same chain end to end (DESIGN.md §16).
echo "==> cargo run --example serve -- --follow (leader + 2 followers + chained follower smoke)"
leader_out="$(mktemp)"
cargo run -q --example serve -- --trace 1 --hold 60 > "$leader_out" &
leader_pid=$!
leader_addr=""
for _ in $(seq 1 100); do
    leader_addr="$(sed -n 's/^serving on \([0-9.:]*\) .*/\1/p' "$leader_out")"
    [ -n "$leader_addr" ] && break
    sleep 0.1
done
[ -n "$leader_addr" ] || { echo "leader never came up"; kill "$leader_pid"; exit 1; }

# Follower 1: plain follow, runs to completion — untraced on purpose, so
# a tracing-unaware peer exercises the untagged-frame compatibility path
# against a tracing leader.
follow_out="$(cargo run -q --example serve -- --follow "$leader_addr")"
grep -q "replicated view 'sup' holds 2 tuples" <<< "$follow_out"
grep -q "write refused: not the leader — retry against $leader_addr" <<< "$follow_out"

# Follower 2: held open so a third process can chain off it.
f2_out="$(mktemp)"
cargo run -q --example serve -- --trace 1 --follow "$leader_addr" --hold 60 > "$f2_out" &
f2_pid=$!
f2_addr=""
for _ in $(seq 1 100); do
    f2_addr="$(sed -n 's/.*serving reads on \([0-9.:]*\)$/\1/p' "$f2_out")"
    [ -n "$f2_addr" ] && break
    sleep 0.1
done
[ -n "$f2_addr" ] || { echo "follower 2 never came up"; kill "$leader_pid" "$f2_pid"; exit 1; }

# Chained follower: tails follower 2, but its refusal and root hint must
# name the ROOT leader.  Held open too, completing a live 3-node chain.
f3_out="$(mktemp)"
cargo run -q --example serve -- --trace 1 --follow "$f2_addr" --hold 60 > "$f3_out" &
f3_pid=$!
f3_addr=""
for _ in $(seq 1 100); do
    f3_addr="$(sed -n 's/.*serving reads on \([0-9.:]*\)$/\1/p' "$f3_out")"
    [ -n "$f3_addr" ] && break
    sleep 0.1
done
[ -n "$f3_addr" ] || { echo "chained follower never came up"; kill "$leader_pid" "$f2_pid" "$f3_pid"; exit 1; }
grep -q "replicated view 'sup' holds 2 tuples" "$f3_out"
grep -q "following $f2_addr (root leader $leader_addr)" "$f3_out"
grep -q "write refused: not the leader — retry against $leader_addr" "$f3_out"

# Topology introspection: walking the chain from the leaf renders the
# whole three-node tree, root first, with per-session positions.
echo "==> cargo run --example serve -- --topology (3-node chain rendering)"
topo_out="$(cargo run -q --example serve -- --topology "$f3_addr")"
grep -q "replication topology from $f3_addr (3 node(s))" <<< "$topo_out"
grep -q "$leader_addr  \[root\]" <<< "$topo_out"
grep -q "└─ $f2_addr  \[follower\]" <<< "$topo_out"
grep -q "└─ $f3_addr  \[follower\]" <<< "$topo_out"

# Distributed tracing: one traced update against the root must assemble
# into a single cross-process span tree whose spans name the client and
# all three server nodes — proof the context propagated client → leader
# shard → WAL → follower → chained follower (DESIGN.md §16).
echo "==> cargo run --example serve -- --trace-update (cross-process span tree)"
trace_out="$(cargo run -q --example serve -- --trace-update "$f3_addr")"
kill "$f3_pid" "$f2_pid" "$leader_pid" 2>/dev/null || true
wait "$f3_pid" "$f2_pid" "$leader_pid" 2>/dev/null || true
rm -f "$leader_out" "$f2_out" "$f3_out"
grep -q "across 4 node(s): client" <<< "$trace_out"
grep -q "client.send @ client" <<< "$trace_out"
grep -q "shard.queue @ $leader_addr" <<< "$trace_out"
grep -q "wal.append @ $leader_addr" <<< "$trace_out"
grep -q "wal.fsync @ $leader_addr" <<< "$trace_out"
grep -q "repl.ship @ $leader_addr" <<< "$trace_out"
grep -q "repl.apply @ $f2_addr" <<< "$trace_out"
grep -q "repl.ship @ $f2_addr" <<< "$trace_out"
grep -q "repl.apply @ $f3_addr" <<< "$trace_out"

echo "CI OK"
