#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test -p compview-session (service + incremental maintenance)"
cargo test -q -p compview-session

echo "==> cargo build --example session --benches"
cargo build --example session
cargo build --benches -p compview-bench

echo "CI OK"
