#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test -p compview-session (service + incremental maintenance)"
cargo test -q -p compview-session

echo "==> cargo test -p compview-obs (metrics registry, histogram + codec proptests)"
cargo test -q -p compview-obs

# Fault-injection sweep: the recovery suite derives its injected-fault
# plans (failing append/sync/truncate points, short-write lengths) from
# COMPVIEW_FAULT_SEED, so CI can rotate seeds and a failure names its own
# reproduction.  Defaults to a fixed seed for run-to-run determinism.
echo "==> recovery fault-injection suite (COMPVIEW_FAULT_SEED=${COMPVIEW_FAULT_SEED:-20260806})"
COMPVIEW_FAULT_SEED="${COMPVIEW_FAULT_SEED:-20260806}" \
    cargo test -q -p compview-session --test recovery

# The wire protocol's contract is byte-identity with in-process dispatch;
# the loopback suite proves it at 1, 2, and 8 worker threads, plus
# connection isolation under malformed frames.
echo "==> cargo test -p compview-serve (wire codec + loopback server)"
cargo test -q -p compview-serve
cargo test -q -p compview-serve --test loopback

# The sharded dispatcher's contract is the same byte-identity at 1, 2,
# and 8 dispatcher shards — responses, per-session WAL files, and
# post-batch-consistent metrics snapshots (proptested random
# interleavings with pipelined probes included).
echo "==> cargo test -p compview-serve --test sharded (sharded dispatcher)"
cargo test -q -p compview-serve --test sharded

# The subscription subsystem's contract: the delta stream replayed over
# the subscribe-time image reconstructs a fresh read byte-for-byte, at
# 1/2/8 worker threads x 1/2/8 dispatcher shards (proptested), plus
# slow-consumer cuts, typed errors, and dead-connection cleanup.
echo "==> cargo test -p compview-serve --test subs (delta subscriptions)"
cargo test -q -p compview-serve --test subs

# The replication subsystem's contract: every follower ends
# byte-identical to the leader (state, WAL file, Read responses) at the
# same applied sequence — including a 1->4 fan-out and a 3-deep chain
# with a mid-chain node kill — across cut/bit-flipped streams and a
# leader restart, at 1/2/8 worker threads x 1/2 dispatcher shards.
# Promotion after a leader kill accepts writes having lost nothing
# acked, with a downstream replication stream and a live subscriber
# attached; sessions created mid-tail are discovered and mirrored down
# the chain; ReadAt answers at the token or refuses with typed Lagging.
# The fault scenarios derive their cut/flip plans from
# COMPVIEW_FAULT_SEED, same rotation discipline as the recovery suite.
echo "==> cargo test -p compview-serve --test replica (WAL shipping, COMPVIEW_FAULT_SEED=${COMPVIEW_FAULT_SEED:-20260806})"
COMPVIEW_FAULT_SEED="${COMPVIEW_FAULT_SEED:-20260806}" \
    cargo test -q -p compview-serve --test replica

echo "==> cargo build --example session --example recovery --example serve --benches"
cargo build --example session --example recovery --example serve
cargo build --benches -p compview-bench

# The observability walkthrough doubles as a smoke test: metrics over
# the wire, Prometheus rendering, and the span tracer end to end.
echo "==> cargo run --example obs (observability smoke)"
cargo run -q --example obs > /dev/null

# The subscription walkthrough doubles as a push-path smoke test: a live
# delta stream over TCP must deliver all three updates in sequence.
echo "==> cargo run --example serve -- --subscribe orders/sup (delta stream smoke)"
subscribe_out="$(cargo run -q --example serve -- --subscribe orders/sup)"
grep -q "event seq 3" <<< "$subscribe_out"

# The replication walkthrough doubles as a cross-process topology smoke
# test: a held leader, two direct followers (one held open as an
# upstream), and a third follower chained off the held one — all over
# real loopback TCP.  Every follower must serve the leader's data and
# refuse a write with the typed NotLeader answer; the *chained*
# follower's refusal must name the root leader, not its upstream
# (DESIGN.md §15).  (The in-process failover path — write leader, read
# follower, kill leader, promote, write promoted — is the
# `promotion_after_leader_kill` case in the replica suite above.)
echo "==> cargo run --example serve -- --follow (leader + 2 followers + chained follower smoke)"
leader_out="$(mktemp)"
cargo run -q --example serve -- --hold 60 > "$leader_out" &
leader_pid=$!
leader_addr=""
for _ in $(seq 1 100); do
    leader_addr="$(sed -n 's/^serving on \([0-9.:]*\) .*/\1/p' "$leader_out")"
    [ -n "$leader_addr" ] && break
    sleep 0.1
done
[ -n "$leader_addr" ] || { echo "leader never came up"; kill "$leader_pid"; exit 1; }

# Follower 1: plain follow, runs to completion.
follow_out="$(cargo run -q --example serve -- --follow "$leader_addr")"
grep -q "replicated view 'sup' holds 2 tuples" <<< "$follow_out"
grep -q "write refused: not the leader — retry against $leader_addr" <<< "$follow_out"

# Follower 2: held open so a third process can chain off it.
f2_out="$(mktemp)"
cargo run -q --example serve -- --follow "$leader_addr" --hold 60 > "$f2_out" &
f2_pid=$!
f2_addr=""
for _ in $(seq 1 100); do
    f2_addr="$(sed -n 's/.*serving reads on \([0-9.:]*\)$/\1/p' "$f2_out")"
    [ -n "$f2_addr" ] && break
    sleep 0.1
done
[ -n "$f2_addr" ] || { echo "follower 2 never came up"; kill "$leader_pid" "$f2_pid"; exit 1; }

# Chained follower: tails follower 2, but its refusal and root hint
# must name the ROOT leader.
chain_out="$(cargo run -q --example serve -- --follow "$f2_addr")"
kill "$f2_pid" "$leader_pid" 2>/dev/null || true
wait "$f2_pid" "$leader_pid" 2>/dev/null || true
rm -f "$leader_out" "$f2_out"
grep -q "replicated view 'sup' holds 2 tuples" <<< "$chain_out"
grep -q "following $f2_addr (root leader $leader_addr)" <<< "$chain_out"
grep -q "write refused: not the leader — retry against $leader_addr" <<< "$chain_out"

echo "CI OK"
