#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test -p compview-session (service + incremental maintenance)"
cargo test -q -p compview-session

echo "==> cargo test -p compview-obs (metrics registry, histogram + codec proptests)"
cargo test -q -p compview-obs

# Fault-injection sweep: the recovery suite derives its injected-fault
# plans (failing append/sync/truncate points, short-write lengths) from
# COMPVIEW_FAULT_SEED, so CI can rotate seeds and a failure names its own
# reproduction.  Defaults to a fixed seed for run-to-run determinism.
echo "==> recovery fault-injection suite (COMPVIEW_FAULT_SEED=${COMPVIEW_FAULT_SEED:-20260806})"
COMPVIEW_FAULT_SEED="${COMPVIEW_FAULT_SEED:-20260806}" \
    cargo test -q -p compview-session --test recovery

# The wire protocol's contract is byte-identity with in-process dispatch;
# the loopback suite proves it at 1, 2, and 8 worker threads, plus
# connection isolation under malformed frames.
echo "==> cargo test -p compview-serve (wire codec + loopback server)"
cargo test -q -p compview-serve
cargo test -q -p compview-serve --test loopback

# The sharded dispatcher's contract is the same byte-identity at 1, 2,
# and 8 dispatcher shards — responses, per-session WAL files, and
# post-batch-consistent metrics snapshots (proptested random
# interleavings with pipelined probes included).
echo "==> cargo test -p compview-serve --test sharded (sharded dispatcher)"
cargo test -q -p compview-serve --test sharded

# The subscription subsystem's contract: the delta stream replayed over
# the subscribe-time image reconstructs a fresh read byte-for-byte, at
# 1/2/8 worker threads x 1/2/8 dispatcher shards (proptested), plus
# slow-consumer cuts, typed errors, and dead-connection cleanup.
echo "==> cargo test -p compview-serve --test subs (delta subscriptions)"
cargo test -q -p compview-serve --test subs

echo "==> cargo build --example session --example recovery --example serve --benches"
cargo build --example session --example recovery --example serve
cargo build --benches -p compview-bench

# The observability walkthrough doubles as a smoke test: metrics over
# the wire, Prometheus rendering, and the span tracer end to end.
echo "==> cargo run --example obs (observability smoke)"
cargo run -q --example obs > /dev/null

# The subscription walkthrough doubles as a push-path smoke test: a live
# delta stream over TCP must deliver all three updates in sequence.
echo "==> cargo run --example serve -- --subscribe orders/sup (delta stream smoke)"
subscribe_out="$(cargo run -q --example serve -- --subscribe orders/sup)"
grep -q "event seq 3" <<< "$subscribe_out"

echo "CI OK"
