//! Shared setup helpers for the benchmark harness.
//!
//! Each bench target regenerates one experiment from DESIGN.md §4 and, on
//! startup, prints the experiment's "table" (the shape result recorded in
//! EXPERIMENTS.md) before timing the mechanism behind it.

use compview_core::workload;
use compview_logic::PathSchema;
use compview_relation::Relation;

/// The standard path schema for scale experiments.
pub fn path_schema() -> PathSchema {
    PathSchema::example_2_1_1()
}

/// A deterministic closed instance with roughly `n` generator objects.
pub fn closed_instance(n: usize, dom: usize, seed: u64) -> Relation {
    let ps = path_schema();
    workload::random_path_instance(&ps, n, dom, &mut workload::rng(seed))
}

/// Print a labelled experiment header once.
pub fn header(experiment: &str, what: &str) {
    eprintln!("\n=== {experiment}: {what} ===");
}
