//! T5: the free Boolean type algebra of §2.1 — canonicalisation cost by
//! generator count and expression size.
//!
//! Shape: canonicalisation is Θ(2^generators · |expr|) (explicit minterm
//! sweep); generator counts stay small in schemas (one per attribute
//! class plus null types), so the explicit representation is the right
//! trade against BDD machinery.

use compview_bench::header;
use compview_logic::{TypeAlgebra, TypeExpr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn deep_expr(n_gens: usize, depth: usize) -> TypeExpr {
    let mut e = TypeExpr::Gen(0);
    for i in 1..depth {
        let g = TypeExpr::Gen(i % n_gens);
        e = match i % 3 {
            0 => e.and(g),
            1 => e.or(g),
            _ => e.not().or(g),
        };
    }
    e
}

fn bench_canonicalisation(c: &mut Criterion) {
    header("T5", "free type-algebra canonicalisation (minterm sweep)");
    let mut group = c.benchmark_group("type_algebra/canon");
    for &k in &[4usize, 8, 12, 16] {
        let alg = TypeAlgebra::new((0..k).map(|i| format!("T{i}")).collect::<Vec<_>>());
        let e = deep_expr(k, 24);
        eprintln!("  k={k}: 2^{k} minterms, expr depth 24");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(alg.canon(black_box(&e))))
        });
    }
    group.finish();

    let alg = TypeAlgebra::new(["A", "B", "C", "D", "eta"]);
    let e1 = deep_expr(5, 16);
    let e2 = deep_expr(5, 16).not();
    let mut group = c.benchmark_group("type_algebra/ops");
    group.bench_function("equivalent", |b| {
        b.iter(|| black_box(alg.equivalent(black_box(&e1), black_box(&e2))))
    });
    group.bench_function("implies", |b| {
        b.iter(|| black_box(alg.implies(black_box(&e1), black_box(&e2))))
    });
    let m1 = alg.canon(&e1);
    let m2 = alg.canon(&e2);
    group.bench_function("minterm_and", |b| {
        b.iter(|| black_box(m1.and(black_box(&m2))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_canonicalisation
}
criterion_main!(benches);
