//! E16: delta subscriptions — fan-out latency and push-vs-poll wire
//! cost.
//!
//! `fanout/subs_N` measures one committed `Update` fanning out to N
//! subscribed connections: the writer waits for its commit reply, then
//! every subscriber blocks until its delta event arrives.  Mean divided
//! by N is the per-subscriber delivery cost; N divided by the mean is
//! events per second at that fan-out.
//!
//! The `subs/bytes/*` result lines are not timings: they price one
//! *change observed by N subscribers* on the wire, in bytes, under the
//! two regimes the subsystem replaces and provides.  Polling pays a
//! `Read` request plus a full-image response per subscriber per probe —
//! even when nothing changed.  Push pays one delta event frame per
//! subscriber, only on change.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{v, Instance, RelDecl, Signature, Tuple};
use compview_serve::proto::{encode_event_payload, encode_request_payload, FRAME_HEADER};
use compview_serve::{Client, Server};
use compview_session::sub::{DeltaEvent, DeltaKind};
use compview_session::{Service, Session, SessionConfig, SessionRequest, SessionResponse};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

/// A row wide enough to look like a record, not a token: the poll/push
/// byte comparison depends on image size versus delta size, so rows
/// carry an 80-byte payload.
fn row(i: usize) -> Tuple {
    Tuple::new([v(&format!("a{i}:{:078}", i))])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        ("R".to_owned(), (0..5).map(row).collect()),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

/// One session, view `r` registered — the same 256-state space as the
/// `serve` bench (5 + 3 pool bits), but with wide rows.
fn demo_service() -> Service<SubschemaComponents> {
    let sig = sig();
    let mut session = Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pools(),
        Instance::null_model(&sig).with(
            "R",
            compview_relation::Relation::from_tuples(1, vec![row(0)]),
        ),
        SessionConfig::default(),
    )
    .unwrap();
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .unwrap();
    let mut svc = Service::new();
    svc.add_session("w", session).unwrap();
    svc
}

/// The two states the writer flips between: a one-row delta each way,
/// over a three-to-four-row image.
fn states() -> (Instance, Instance) {
    let a = Instance::null_model(&sig()).with(
        "R",
        compview_relation::Relation::from_tuples(1, (0..3).map(row).collect::<Vec<_>>()),
    );
    let b = Instance::null_model(&sig()).with(
        "R",
        compview_relation::Relation::from_tuples(1, (0..4).map(row).collect::<Vec<_>>()),
    );
    (a, b)
}

fn bench_subs(c: &mut Criterion) {
    header(
        "E16",
        "delta subscriptions: fan-out latency, push vs poll bytes",
    );
    let mut group = c.benchmark_group("subs");
    let (state_a, state_b) = states();

    for n in [1usize, 8, 64] {
        let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
        let mut writer = Client::connect(server.local_addr()).unwrap();
        let mut subscribers: Vec<Client> = (0..n)
            .map(|_| {
                let mut cl = Client::connect(server.local_addr()).unwrap();
                cl.subscribe("w", "r").unwrap().unwrap();
                cl
            })
            .collect();
        let mut flip = false;
        group.bench_function(format!("fanout/subs_{n}"), |bch| {
            bch.iter(|| {
                flip = !flip;
                let state = if flip { &state_b } else { &state_a };
                let reply = writer
                    .request(
                        "w",
                        &SessionRequest::Update {
                            view: "r".into(),
                            new_state: state.clone(),
                        },
                    )
                    .unwrap();
                assert!(reply.is_ok(), "{reply:?}");
                for cl in &mut subscribers {
                    black_box(cl.next_event().unwrap());
                }
            })
        });
        drop(subscribers);
        drop(writer);
        server.shutdown();
    }

    // Wire cost of one observed change, in bytes.  Poll: each subscriber
    // sends a `Read` and receives the full image.  Push: each subscriber
    // receives one delta event frame, unasked.
    {
        let read_req = encode_request_payload("w", &SessionRequest::Read { view: "r".into() });
        let read_resp = compview_serve::proto::encode_result_payload(&Ok(SessionResponse::State(
            state_b.clone(),
        )));
        let event = encode_event_payload(
            "w",
            &DeltaEvent {
                sub: 1,
                view: "r".into(),
                seq: 1,
                kind: DeltaKind::Rows {
                    added: Instance::null_model(&sig()).with(
                        "R",
                        compview_relation::Relation::from_tuples(1, vec![row(3)]),
                    ),
                    removed: Instance::null_model(&sig()),
                },
            },
        );
        let poll_one = 2 * FRAME_HEADER + read_req.len() + read_resp.len();
        let push_one = FRAME_HEADER + event.len();
        for n in [1usize, 8, 64] {
            println!(
                "{} {{\"id\":\"subs/bytes/poll_subs_{n}\",\"bytes\":{}}}",
                criterion::RESULT_PREFIX,
                poll_one * n
            );
            println!(
                "{} {{\"id\":\"subs/bytes/push_subs_{n}\",\"bytes\":{}}}",
                criterion::RESULT_PREFIX,
                push_one * n
            );
        }
        assert!(
            push_one < poll_one,
            "push ({push_one} B) must undercut polling ({poll_one} B) per subscriber"
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_subs
}
criterion_main!(benches);
