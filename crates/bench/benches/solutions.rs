//! E2 / E3: enumerating solutions of update specifications and
//! classifying them as nonextraneous / minimal (Def 1.2.4, Prop 1.2.6).
//!
//! Shape: solution enumeration is linear in the fibre; the nonextraneous
//! filter is quadratic in the solution count — cheap on the canonical
//! spaces, and the reason real systems want the component shortcut
//! instead of post-hoc classification.

use compview_bench::header;
use compview_core::paper::example_1_1_1 as ex;
use compview_core::{update, MatView, UpdateSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_solution_classification(c: &mut Criterion) {
    header(
        "E2/E3",
        "solution enumeration + nonextraneous/minimal classification",
    );
    let (sp, view) = ex::small_space_and_join_view();
    let mv = MatView::materialise(view, &sp);
    eprintln!(
        "  space: {} states, {} view states",
        sp.len(),
        mv.n_states()
    );
    // Pick the spec with the largest solution fibre to stress the filter.
    let (base, target, max_fibre) = (0..mv.n_states())
        .map(|t| (0usize, t, mv.fibre(t).len()))
        .max_by_key(|&(_, _, n)| n)
        .unwrap();
    eprintln!("  largest fibre: {max_fibre} solutions");

    let mut group = c.benchmark_group("solutions");
    group.bench_function("enumerate", |b| {
        b.iter(|| black_box(update::solutions(&mv, UpdateSpec { base, target })))
    });
    let sols = update::solutions(&mv, UpdateSpec { base, target });
    group.bench_function("nonextraneous_filter", |b| {
        b.iter(|| black_box(update::nonextraneous(&sp, base, black_box(&sols))))
    });
    group.bench_function("minimal_search", |b| {
        b.iter(|| black_box(update::minimal(&sp, base, black_box(&sols))))
    });
    group.bench_function("prop_1_2_6_check", |b| {
        b.iter(|| assert!(update::prop_1_2_6_holds(&sp, base, black_box(&sols))))
    });
    group.finish();
}

fn bench_implied_mining(c: &mut Criterion) {
    header(
        "E1-mining",
        "implied-constraint mining on the join view (discovers *[SP,PJ])",
    );
    let (sp, view) = ex::small_space_and_join_view();
    let mv = MatView::materialise(view, &sp);
    eprintln!("  image: {} view states", mv.n_states());
    let mut group = c.benchmark_group("solutions/mining");
    group.sample_size(20);
    group.bench_function("implied_jds", |b| {
        b.iter(|| black_box(compview_core::implied::implied_jds(black_box(&mv))))
    });
    group.bench_function("implied_fds", |b| {
        b.iter(|| black_box(compview_core::implied::implied_fds(black_box(&mv))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_solution_classification, bench_implied_mining
}
criterion_main!(benches);
