//! Extension experiments: the component-family implementations beyond the
//! chain case — tree translation, horizontal translation, and end-to-end
//! catalog operations.
//!
//! Shape: horizontal translation is O(|Δ| + |part|) with *no* closure
//! (classes don't interact); tree translation matches path translation's
//! near-linear profile; catalog overhead over raw translation is small
//! and constant.

use compview_bench::header;
use compview_core::{Catalog, ComponentFamily, HorizontalComponents, TreeComponents};
use compview_logic::{TreeSchema, TypeAlgebra, TypeAssignment};
use compview_relation::{Instance, Relation, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn star_state(ts: &TreeSchema, n: usize, dom: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Relation::empty(ts.arity());
    for _ in 0..n {
        let leaf = 1 + rng.random_range(0..ts.arity() - 1);
        r.insert(ts.object(&[
            (0, Value::sym(&format!("h{}", rng.random_range(0..dom)))),
            (leaf, Value::sym(&format!("v{}", rng.random_range(0..dom)))),
        ]));
    }
    ts.close(&r)
}

fn bench_tree_translation(c: &mut Criterion) {
    header(
        "EXT-tree",
        "tree-schema component translation (acyclic generalisation)",
    );
    let ts = TreeSchema::star("R", ["Hub", "X", "Y", "Z", "W"]);
    let tc = TreeComponents::new(ts.clone());
    let mut group = c.benchmark_group("families/tree_translate");
    for &n in &[30usize, 100, 300] {
        let base = star_state(&ts, n, (n / 5).max(3), 81);
        let mut part = tc.endo_rel(0b0001, &base);
        part.insert(ts.object(&[(0, v_h(0)), (1, Value::sym("fresh"))]));
        let part = ts.close(&part);
        eprintln!("  n={n}: |base|={} objects", base.len());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    tc.translate_rel(0b0001, black_box(&base), black_box(&part))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn v_h(i: usize) -> Value {
    Value::sym(&format!("h{i}"))
}

fn bench_horizontal_translation(c: &mut Criterion) {
    header(
        "EXT-horizontal",
        "horizontal (type-class) component translation — closure-free",
    );
    let alg = TypeAlgebra::new(["lo", "hi"]);
    let mut mu = TypeAssignment::new();
    let dom = 1000;
    for i in 0..dom {
        mu.declare(Value::sym(&format!("k{i}")), &[usize::from(i >= dom / 2)]);
    }
    let hc = HorizontalComponents::new(
        "T",
        2,
        0,
        vec![("lo".into(), alg.gen("lo")), ("hi".into(), alg.gen("hi"))],
        &alg,
        mu,
    )
    .unwrap();

    let mut group = c.benchmark_group("families/horizontal_translate");
    for &n in &[1000usize, 10000] {
        let mut rng = StdRng::seed_from_u64(83);
        let base = Instance::new().with(
            "T",
            Relation::from_tuples(
                2,
                (0..n).map(|_| {
                    Tuple::new([
                        Value::sym(&format!("k{}", rng.random_range(0..dom))),
                        Value::Int(rng.random_range(0..1_000_000)),
                    ])
                }),
            ),
        );
        let mut part = hc.endo(0b01, &base);
        part.rel_mut("T")
            .insert(Tuple::new([Value::sym("k0"), Value::Int(-1)]));
        eprintln!("  n={n}: lo-part {} rows", part.rel("T").len());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    hc.translate(0b01, black_box(&base), black_box(&part))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_catalog_end_to_end(c: &mut Criterion) {
    header(
        "EXT-catalog",
        "catalog service: read + update + undo round-trip per operation",
    );
    let ts = TreeSchema::star("R", ["Hub", "X", "Y", "Z"]);
    let tc = TreeComponents::new(ts.clone());
    let base = ts.instance(star_state(&ts, 100, 20, 87));
    eprintln!("  base: {} objects", base.rel("R").len());

    let mut group = c.benchmark_group("families/catalog");
    group.bench_function("update_undo_cycle", |b| {
        let mut cat = Catalog::new(tc.clone(), base.clone());
        cat.register("hx", 0b001).unwrap();
        let mut toggle = false;
        b.iter(|| {
            let mut part = cat.read("hx").unwrap();
            let obj = ts.object(&[(0, v_h(0)), (1, Value::sym("bench-obj"))]);
            if toggle {
                part.rel_mut("R").remove(&obj);
            } else {
                part.rel_mut("R").insert(obj);
            }
            toggle = !toggle;
            cat.update("hx", &part).unwrap();
            cat.undo().unwrap();
            black_box(cat.state().total_tuples())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_tree_translation, bench_horizontal_translation, bench_catalog_end_to_end
}
criterion_main!(benches);
