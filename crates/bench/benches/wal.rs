//! E12: durability costs — WAL append throughput per fsync policy,
//! group-commit amortisation, and recovery latency.
//!
//! `append_*` legs run the same `Update`/`Undo` round trip as
//! `session/update_undo`, but on a durable session logging to a real
//! file, so the difference prices the log: serialization + append per
//! request, plus an fsync per record (`always`), per 8th record
//! (`every8`), or never (`never` — the OS flushes, recovery truncates
//! whatever had not landed).  `group_commit_16` dispatches a 16-request
//! batch through `Service::dispatch` on an `Always` session: the
//! deferred-sync window coalesces the 16 per-record fsyncs into one, so
//! its mean **divided by 16** is the per-request cost to compare against
//! the `append_*` ladder.  `recover_64` is the full crash-restart path:
//! read the log, decode the snapshot, re-enumerate the state space, and
//! replay 64 logged requests through `serve`.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_session::{
    LogStore, MemStore, Service, Session, SessionConfig, SessionRequest, SyncPolicy,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

fn base() -> Instance {
    Instance::null_model(&sig()).with("R", rel(1, [["a0"]]))
}

/// A durable session over `store`, with the view `r` registered — the
/// same 256-state space as the `session` bench, for comparability.
fn open_durable(store: Box<dyn LogStore>, policy: SyncPolicy) -> Session<SubschemaComponents> {
    let mut session = Session::open_durable(
        SubschemaComponents::singletons(sig()),
        Schema::unconstrained(sig()),
        &pools(),
        base(),
        SessionConfig::default(),
        store,
        policy,
    )
    .expect("fresh store opens");
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .expect("R is a subschema component");
    session
}

fn bench_wal(c: &mut Criterion) {
    header(
        "E12",
        "wal: append throughput per fsync policy, recovery latency",
    );
    let target = Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["a2"]]));
    let update_undo = |session: &mut Session<SubschemaComponents>| {
        black_box(
            session
                .serve(SessionRequest::Update {
                    view: "r".into(),
                    new_state: target.clone(),
                })
                .unwrap(),
        );
        black_box(session.serve(SessionRequest::Undo).unwrap());
    };

    let mut group = c.benchmark_group("wal");
    let tmp = std::env::temp_dir().join(format!("compview-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    for (leg, policy) in [
        ("append_always", SyncPolicy::Always),
        ("append_every8", SyncPolicy::EveryN(8)),
        ("append_never", SyncPolicy::Never),
    ] {
        let path = tmp.join(format!("{leg}.wal"));
        std::fs::remove_file(&path).ok();
        let store = compview_session::FsStore::open(&path).unwrap();
        let mut session = open_durable(Box::new(store), policy);
        group.bench_function(leg, |b| b.iter(|| update_undo(&mut session)));
    }

    // Group commit: the same update/undo traffic under SyncPolicy::Always,
    // but dispatched as one 16-request batch — one fsync per batch instead
    // of one per record.  Compare (mean / 16) against append_always and
    // append_never.
    {
        let path = tmp.join("group_commit.wal");
        std::fs::remove_file(&path).ok();
        let store = compview_session::FsStore::open(&path).unwrap();
        let session = open_durable(Box::new(store), SyncPolicy::Always);
        let mut service: Service<SubschemaComponents> = Service::new();
        service.add_session("w", session).unwrap();
        let batch: Vec<(String, SessionRequest)> = (0..8)
            .flat_map(|_| {
                [
                    (
                        "w".to_owned(),
                        SessionRequest::Update {
                            view: "r".into(),
                            new_state: target.clone(),
                        },
                    ),
                    ("w".to_owned(), SessionRequest::Undo),
                ]
            })
            .collect();
        group.bench_function("group_commit_16", |b| {
            b.iter(|| {
                let results = service.dispatch(batch.clone());
                assert!(results.iter().all(Result::is_ok));
                black_box(results)
            })
        });
    }

    // Recovery latency: a log holding the snapshot plus 64 update/undo
    // records, recovered from scratch each iteration.
    let (store, shared) = MemStore::new();
    let mut session = open_durable(Box::new(store), SyncPolicy::Never);
    for _ in 0..32 {
        update_undo(&mut session);
    }
    let bytes = shared.lock().unwrap().clone();
    group.bench_function("recover_64", |b| {
        b.iter(|| {
            let (session, report) = Session::<SubschemaComponents>::recover(
                SubschemaComponents::singletons(sig()),
                Schema::unconstrained(sig()),
                Box::new(MemStore::from_bytes(bytes.clone())),
                SyncPolicy::Never,
            )
            .unwrap();
            assert_eq!(report.records_applied, 65);
            black_box(session)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&tmp).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_wal
}
criterion_main!(benches);
