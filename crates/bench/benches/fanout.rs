//! E18: replication topology — fan-out visibility latency and leader
//! egress, flat vs chained.
//!
//! `fanout/visible_all/followers_N` prices one committed change made
//! visible on *every* follower of a flat 1→N fan-out: the writer's
//! `Update` commits on the leader, the WAL record ships to N followers
//! over loopback, and a delta subscription on each follower pushes the
//! resulting event — the iteration ends when all N follower clients
//! have seen it.  Compare N=1 against E17's `repl/ship/update_visible`
//! (same topology) and watch how the slowest-of-N tail grows with N.
//!
//! `fanout/chain_visible/depth_D` is the same wait at the *tail* of a
//! D-deep chain (leader → f1 → … → fD, each hop re-shipping its
//! mirrored log downstream): per-hop shipping latency compounds, but
//! the leader only feeds one stream.
//!
//! The `fanout/egress/*` result lines are not timings: they price the
//! **leader's** replication egress (`serve.repl.bytes_out`, measured,
//! not computed) per committed change.  Flat 1→4 makes the leader ship
//! every record four times; a 3-deep chain serving the same four nodes
//! (leader → f1 → f2 → f3, one direct follower) ships it once and lets
//! the intermediate hops pay the rest — the bandwidth argument for
//! chaining.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_obs::MetricsSnapshot;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{Client, Replica, ReplicaOptions, ServeOptions, Server};
use compview_session::{Service, SessionConfig, SessionRequest, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

fn base() -> Instance {
    Instance::null_model(&sig()).with("R", rel(1, [["a0"]]))
}

/// One durable session `w` logging into `dir` — the E17 workload, for
/// comparability.
fn durable_service(dir: &PathBuf) -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    svc.create_durable_session(
        dir,
        "w",
        SubschemaComponents::singletons(sig()),
        Schema::unconstrained(sig()),
        &pools(),
        base(),
        SessionConfig::default(),
        SyncPolicy::Always,
    )
    .expect("fresh durable session");
    svc
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "compview-bench-fanout-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

fn replica_options(seed: u64) -> ReplicaOptions {
    ReplicaOptions {
        retry_base: Duration::from_millis(2),
        retry_max: Duration::from_millis(50),
        read_timeout: Duration::from_secs(2),
        connect_attempts: 50,
        seed,
        ..ReplicaOptions::default()
    }
}

/// A follower that is itself an upstream must heartbeat its own
/// downstream faster than the downstream's read timeout.
fn upstream_options(seed: u64) -> ReplicaOptions {
    ReplicaOptions {
        serve: ServeOptions {
            heartbeat_interval: Some(Duration::from_millis(100)),
            ..ServeOptions::default()
        },
        ..replica_options(seed)
    }
}

fn states() -> (Instance, Instance) {
    let a = Instance::null_model(&sig()).with("R", rel(1, [["a0"], ["a1"]]));
    let b = Instance::null_model(&sig()).with("R", rel(1, [["a0"], ["a2"]]));
    (a, b)
}

fn update(new_state: Instance) -> SessionRequest {
    SessionRequest::Update {
        view: "r".into(),
        new_state,
    }
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, value)| *value)
}

/// Leader plus a writer client with view `r` registered.
fn leader(tag: &str) -> (Server<SubschemaComponents>, Client, PathBuf) {
    let ldir = bench_dir(tag);
    let server = Server::bind("127.0.0.1:0", durable_service(&ldir)).unwrap();
    let mut writer = Client::connect(server.local_addr()).unwrap();
    writer
        .request(
            "w",
            &SessionRequest::RegisterView {
                name: "r".into(),
                mask: 0b01,
            },
        )
        .unwrap()
        .unwrap();
    (server, writer, ldir)
}

fn bench_fanout(c: &mut Criterion) {
    header(
        "E18",
        "replication topology: fan-out visibility, chain depth, leader egress",
    );
    let mut group = c.benchmark_group("fanout");
    let (state_a, state_b) = states();

    // Flat fan-out: one change visible on ALL of N followers.
    for n in [1usize, 2, 4, 8] {
        let (server, mut writer, ldir) = leader(&format!("flat{n}-l"));
        let leader_addr = server.local_addr().to_string();
        let fdirs: Vec<PathBuf> = (0..n)
            .map(|i| bench_dir(&format!("flat{n}-f{i}")))
            .collect();
        let replicas: Vec<Replica<SubschemaComponents>> = fdirs
            .iter()
            .enumerate()
            .map(|(i, fdir)| {
                Replica::start(
                    "127.0.0.1:0",
                    &leader_addr,
                    durable_service(fdir),
                    replica_options(0xC0FFEE ^ i as u64),
                )
                .unwrap()
            })
            .collect();
        let mut observers: Vec<Client> = replicas
            .iter()
            .map(|r| {
                let mut cl = Client::connect(r.local_addr()).unwrap();
                cl.subscribe("w", "r").unwrap().unwrap();
                cl
            })
            .collect();
        let mut flip = false;
        group.bench_function(format!("visible_all/followers_{n}"), |bch| {
            bch.iter(|| {
                flip = !flip;
                let state = if flip { &state_a } else { &state_b };
                writer
                    .request("w", &update(state.clone()))
                    .unwrap()
                    .unwrap();
                for obs in &mut observers {
                    black_box(obs.next_event().unwrap());
                }
            })
        });
        drop(observers);
        drop(writer);
        for r in replicas {
            let _ = r.shutdown();
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&ldir);
        for d in fdirs {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    // Chained shipping: one change visible at the tail of a D-deep
    // chain, each hop re-shipping its mirrored log.
    for depth in [1usize, 3] {
        let (server, mut writer, ldir) = leader(&format!("chain{depth}-l"));
        let mut upstream = server.local_addr().to_string();
        let mut dirs = vec![ldir];
        let mut hops: Vec<Replica<SubschemaComponents>> = Vec::new();
        for hop in 0..depth {
            let fdir = bench_dir(&format!("chain{depth}-h{hop}"));
            let replica = Replica::start(
                "127.0.0.1:0",
                &upstream,
                durable_service(&fdir),
                upstream_options(0xC0FFEE ^ hop as u64),
            )
            .unwrap();
            upstream = replica.local_addr().to_string();
            hops.push(replica);
            dirs.push(fdir);
        }
        let mut observer = Client::connect(hops.last().unwrap().local_addr()).unwrap();
        observer.subscribe("w", "r").unwrap().unwrap();
        let mut flip = false;
        group.bench_function(format!("chain_visible/depth_{depth}"), |bch| {
            bch.iter(|| {
                flip = !flip;
                let state = if flip { &state_a } else { &state_b };
                writer
                    .request("w", &update(state.clone()))
                    .unwrap()
                    .unwrap();
                black_box(observer.next_event().unwrap());
            })
        });
        drop(observer);
        drop(writer);
        for r in hops.into_iter().rev() {
            let _ = r.shutdown();
        }
        server.shutdown();
        for d in dirs {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    // Leader egress per committed change, measured off the leader's
    // `serve.repl.bytes_out` counter: flat 1→4 vs a 3-deep chain
    // serving the same four nodes off one direct follower.
    {
        const ROUNDS: u64 = 32;

        // Flat: four direct followers, observe on all four.
        let flat_per_change = {
            let (server, mut writer, ldir) = leader("egress-flat-l");
            let leader_addr = server.local_addr().to_string();
            let fdirs: Vec<PathBuf> = (0..4)
                .map(|i| bench_dir(&format!("egress-flat-f{i}")))
                .collect();
            let replicas: Vec<Replica<SubschemaComponents>> = fdirs
                .iter()
                .enumerate()
                .map(|(i, fdir)| {
                    Replica::start(
                        "127.0.0.1:0",
                        &leader_addr,
                        durable_service(fdir),
                        replica_options(0xBEEF ^ i as u64),
                    )
                    .unwrap()
                })
                .collect();
            let mut observers: Vec<Client> = replicas
                .iter()
                .map(|r| {
                    let mut cl = Client::connect(r.local_addr()).unwrap();
                    cl.subscribe("w", "r").unwrap().unwrap();
                    cl
                })
                .collect();
            let before = counter(&writer.metrics().unwrap(), "serve.repl.bytes_out");
            let mut flip = false;
            for _ in 0..ROUNDS {
                flip = !flip;
                let state = if flip { &state_a } else { &state_b };
                writer
                    .request("w", &update(state.clone()))
                    .unwrap()
                    .unwrap();
                for obs in &mut observers {
                    obs.next_event().unwrap();
                }
            }
            let after = counter(&writer.metrics().unwrap(), "serve.repl.bytes_out");
            drop(observers);
            drop(writer);
            for r in replicas {
                let _ = r.shutdown();
            }
            server.shutdown();
            let _ = std::fs::remove_dir_all(&ldir);
            for d in fdirs {
                let _ = std::fs::remove_dir_all(&d);
            }
            (after - before) / ROUNDS
        };

        // Chain: leader feeds one follower; three more nodes hang off
        // the chain (depth 3 below the leader), observe at the tail so
        // every hop has applied before the next change.
        let chain_per_change = {
            let (server, mut writer, ldir) = leader("egress-chain-l");
            let mut upstream = server.local_addr().to_string();
            let mut dirs = vec![ldir];
            let mut hops: Vec<Replica<SubschemaComponents>> = Vec::new();
            for hop in 0..3usize {
                let fdir = bench_dir(&format!("egress-chain-h{hop}"));
                let replica = Replica::start(
                    "127.0.0.1:0",
                    &upstream,
                    durable_service(&fdir),
                    upstream_options(0xBEEF ^ hop as u64),
                )
                .unwrap();
                upstream = replica.local_addr().to_string();
                hops.push(replica);
                dirs.push(fdir);
            }
            let mut observer = Client::connect(hops.last().unwrap().local_addr()).unwrap();
            observer.subscribe("w", "r").unwrap().unwrap();
            let before = counter(&writer.metrics().unwrap(), "serve.repl.bytes_out");
            let mut flip = false;
            for _ in 0..ROUNDS {
                flip = !flip;
                let state = if flip { &state_a } else { &state_b };
                writer
                    .request("w", &update(state.clone()))
                    .unwrap()
                    .unwrap();
                observer.next_event().unwrap();
            }
            let after = counter(&writer.metrics().unwrap(), "serve.repl.bytes_out");
            drop(observer);
            drop(writer);
            for r in hops.into_iter().rev() {
                let _ = r.shutdown();
            }
            server.shutdown();
            for d in dirs {
                let _ = std::fs::remove_dir_all(&d);
            }
            (after - before) / ROUNDS
        };

        println!(
            "{} {{\"id\":\"fanout/egress/flat_followers_4\",\"bytes_per_change\":{flat_per_change}}}",
            criterion::RESULT_PREFIX,
        );
        println!(
            "{} {{\"id\":\"fanout/egress/chain_depth_3\",\"bytes_per_change\":{chain_per_change}}}",
            criterion::RESULT_PREFIX,
        );
        assert!(
            chain_per_change < flat_per_change,
            "chaining must cut leader egress: chain {chain_per_change} B/change \
             vs flat {flat_per_change} B/change"
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_fanout
}
criterion_main!(benches);
