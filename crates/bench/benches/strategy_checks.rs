//! E4–E6 / T1: building update strategies and checking the §1.2
//! admissibility requirements over enumerated spaces.
//!
//! Shape: constant-complement strategy construction is O(|LDB|·|view|),
//! the full admissibility audit is the quadratic part (functoriality
//! composes pairs), and the greedy smallest-change strategy costs far more
//! to build than the canonical one — and then fails its audit anyway.

use compview_bench::header;
use compview_core::paper::example_1_3_6 as ex;
use compview_core::{strategy, MatView, Strategy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    header(
        "E4-E6/T1",
        "strategy construction + admissibility audit (canonical vs greedy)",
    );
    for &n in &[2usize, 3] {
        let sp = ex::space(n);
        let g1 = MatView::materialise(ex::gamma1(), &sp);
        let g2 = MatView::materialise(ex::gamma2(), &sp);
        eprintln!(
            "  domain {n}: |LDB| = {}, |view| = {}",
            sp.len(),
            g1.n_states()
        );

        let mut group = c.benchmark_group(format!("strategy/ldb{}", sp.len()));
        group.sample_size(10);
        group.bench_function("build_constant_complement", |b| {
            b.iter(|| black_box(Strategy::constant_complement(&sp, &g1, &g2)))
        });
        group.bench_function("build_smallest_change", |b| {
            b.iter(|| black_box(Strategy::smallest_change(&sp, &g1)))
        });
        let canonical = Strategy::constant_complement(&sp, &g1, &g2);
        group.bench_function("audit_admissibility", |b| {
            b.iter(|| {
                let report = strategy::check(&sp, &g1, black_box(&canonical));
                assert!(report.is_admissible());
                black_box(report)
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_strategies
}
criterion_main!(benches);
