//! E1: evaluating the Example 1.1.1 join view and measuring insertion
//! side effects at scale.
//!
//! Shape: join evaluation scales with output size; the *side-effect
//! count* of a naive base reflection grows with the key's fan-out —
//! the quantitative version of "performed but not performed exactly".

use compview_bench::header;
use compview_core::paper::example_1_1_1 as ex;
use compview_relation::{Relation, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_binary(n: usize, left_dom: usize, right_dom: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Relation::empty(2);
    while r.len() < n {
        r.insert(Tuple::new([
            Value::Int(rng.random_range(0..left_dom as i64)),
            Value::Int(rng.random_range(0..right_dom as i64)),
        ]));
    }
    r
}

fn bench_join_eval(c: &mut Criterion) {
    header("E1", "join-view evaluation and insertion side effects");
    let view = ex::join_view();
    let mut group = c.benchmark_group("join_view/eval");
    for &n in &[100usize, 1000, 10000] {
        let base = compview_relation::Instance::new()
            .with("R_SP", random_binary(n, n, n / 10, 71))
            .with("R_PJ", random_binary(n, n / 10, n, 73));
        let out = view.apply(&base);
        eprintln!("  n={n}: join output {} tuples", out.rel("R_SPJ").len());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(view.apply(black_box(&base))))
        });
    }
    group.finish();

    // Side-effect table: fan-out f ⇒ inserting one (s,p,j) with a shared
    // part p of fan-out f creates 2f side-effect tuples.
    eprintln!("  side effects of one view insert, by part fan-out:");
    eprintln!("    fanout   side-effects");
    for &f in &[1usize, 4, 16, 64] {
        let mut sp = Relation::empty(2);
        let mut pj = Relation::empty(2);
        for i in 0..f {
            sp.insert(Tuple::new([Value::Int(i as i64), Value::Int(0)]));
            pj.insert(Tuple::new([Value::Int(0), Value::Int(i as i64)]));
        }
        let before = sp.join(&pj, &[(1, 0)]);
        let mut sp2 = sp.clone();
        let mut pj2 = pj.clone();
        sp2.insert(Tuple::new([Value::Int(-1), Value::Int(0)]));
        pj2.insert(Tuple::new([Value::Int(0), Value::Int(-1)]));
        let after = sp2.join(&pj2, &[(1, 0)]);
        let effects = after.len() - before.len() - 1; // minus the asked-for tuple
        eprintln!("    {f:6}   {effects}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_join_eval
}
criterion_main!(benches);
