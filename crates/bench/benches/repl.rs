//! E17: WAL shipping — replication visibility latency and catch-up
//! throughput.
//!
//! `repl/ship/update_visible` prices the full replication path for one
//! committed change: the writer's `Update` commits on the leader
//! (serialize, append, fsync, dispatch), the WAL record ships over
//! loopback, the follower's dispatcher applies it into local state, and
//! a delta subscription *on the follower* pushes the resulting event —
//! the iteration ends only when the change is visible to a follower
//! client.  Compare against `subs/fanout/subs_1` (same wait, no
//! replication hop) to isolate the shipping cost.
//!
//! `repl/catchup/records_64` is the cold-start path: a fresh follower
//! with an empty log runs `Replica::start` against a leader holding a
//! 64-record log, which must ship and apply the whole history before
//! the replica serves its first read.  Mean divided by 64 is the
//! per-record catch-up cost; 64 divided by the mean is catch-up
//! records/second.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{Client, Replica, ReplicaOptions, Server};
use compview_session::{Service, SessionConfig, SessionRequest, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

fn base() -> Instance {
    Instance::null_model(&sig()).with("R", rel(1, [["a0"]]))
}

/// A service with one durable session `w` (view `r` registered) logging
/// into `dir` — the same 256-state space as the `wal` and `subs`
/// benches, for comparability.
fn durable_service(dir: &PathBuf) -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    svc.create_durable_session(
        dir,
        "w",
        SubschemaComponents::singletons(sig()),
        Schema::unconstrained(sig()),
        &pools(),
        base(),
        SessionConfig::default(),
        SyncPolicy::Always,
    )
    .expect("fresh durable session");
    svc
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("compview-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

fn replica_options() -> ReplicaOptions {
    ReplicaOptions {
        retry_base: Duration::from_millis(2),
        retry_max: Duration::from_millis(50),
        read_timeout: Duration::from_secs(2),
        connect_attempts: 50,
        seed: 0xC0FFEE,
        ..ReplicaOptions::default()
    }
}

/// The two states the writer flips between: a one-row delta each way,
/// never growing the pool (pool inserts re-enumerate the state space
/// and would swamp the shipping cost being measured).
fn states() -> (Instance, Instance) {
    let a = Instance::null_model(&sig()).with("R", rel(1, [["a0"], ["a1"]]));
    let b = Instance::null_model(&sig()).with("R", rel(1, [["a0"], ["a2"]]));
    (a, b)
}

fn update(new_state: Instance) -> SessionRequest {
    SessionRequest::Update {
        view: "r".into(),
        new_state,
    }
}

fn bench_repl(c: &mut Criterion) {
    header(
        "E17",
        "replication: shipped-update visibility, catch-up throughput",
    );
    let mut group = c.benchmark_group("repl");
    let (state_a, state_b) = states();

    // Leader commit → follower-visible event, one iteration per change.
    {
        let ldir = bench_dir("ship-l");
        let fdir = bench_dir("ship-f");
        let leader = Server::bind("127.0.0.1:0", durable_service(&ldir)).unwrap();
        let leader_addr = leader.local_addr().to_string();
        let mut writer = Client::connect(leader.local_addr()).unwrap();
        writer
            .request(
                "w",
                &SessionRequest::RegisterView {
                    name: "r".into(),
                    mask: 0b01,
                },
            )
            .unwrap()
            .unwrap();
        let replica = Replica::start(
            "127.0.0.1:0",
            &leader_addr,
            durable_service(&fdir),
            replica_options(),
        )
        .unwrap();
        let mut observer = Client::connect(replica.local_addr()).unwrap();
        observer.subscribe("w", "r").unwrap().unwrap();
        let mut flip = false;
        group.bench_function("ship/update_visible", |bch| {
            bch.iter(|| {
                flip = !flip;
                let state = if flip { &state_a } else { &state_b };
                writer
                    .request("w", &update(state.clone()))
                    .unwrap()
                    .unwrap();
                black_box(observer.next_event().unwrap());
            })
        });
        drop(observer);
        drop(writer);
        let _ = replica.shutdown();
        leader.shutdown();
        let _ = std::fs::remove_dir_all(&ldir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    // Cold start: sync a fresh follower against a 64-record leader log.
    {
        let records = 64usize;
        let ldir = bench_dir("catchup-l");
        let leader = Server::bind("127.0.0.1:0", durable_service(&ldir)).unwrap();
        let leader_addr = leader.local_addr().to_string();
        let mut writer = Client::connect(leader.local_addr()).unwrap();
        writer
            .request(
                "w",
                &SessionRequest::RegisterView {
                    name: "r".into(),
                    mask: 0b01,
                },
            )
            .unwrap()
            .unwrap();
        for i in 0..records {
            let state = if i % 2 == 0 { &state_a } else { &state_b };
            writer
                .request("w", &update(state.clone()))
                .unwrap()
                .unwrap();
        }
        let mut round = 0usize;
        group.bench_function(format!("catchup/records_{records}"), |bch| {
            bch.iter(|| {
                round += 1;
                let fdir = bench_dir(&format!("catchup-f{round}"));
                let replica = Replica::start(
                    "127.0.0.1:0",
                    &leader_addr,
                    durable_service(&fdir),
                    replica_options(),
                )
                .unwrap();
                let _ = black_box(replica.shutdown());
                let _ = std::fs::remove_dir_all(&fdir);
            })
        });
        drop(writer);
        leader.shutdown();
        let _ = std::fs::remove_dir_all(&ldir);
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_repl
}
criterion_main!(benches);
