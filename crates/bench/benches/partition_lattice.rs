//! T3 / T4: the partition lattice of §2.2 at scale — kernel construction,
//! refinement tests, join (common refinement), meet (union-find closure),
//! and complement checks, for partitions of up to 100k points.
//!
//! Shape: all operations near-linear (hashing / union-find), so the §2.2
//! embedding is practical for real view catalogues.

use compview_bench::header;
use compview_lattice::Partition;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_labels(n: usize, blocks: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..blocks as u32)).collect()
}

fn bench_partition_ops(c: &mut Criterion) {
    header(
        "T3/T4",
        "partition-lattice operations (kernels, join, meet, refinement)",
    );
    for &n in &[1000usize, 10_000, 100_000] {
        let la = random_labels(n, n / 10, 61);
        let lb = random_labels(n, n / 10, 67);
        let p = Partition::from_labels(&la);
        let q = Partition::from_labels(&lb);
        eprintln!("  n={n}: {} and {} blocks", p.n_blocks(), q.n_blocks());

        let mut group = c.benchmark_group(format!("partition/n{n}"));
        group.bench_with_input(BenchmarkId::new("kernel", n), &n, |b, _| {
            b.iter(|| black_box(Partition::from_labels(black_box(&la))))
        });
        group.bench_with_input(BenchmarkId::new("join", n), &n, |b, _| {
            b.iter(|| black_box(p.join(black_box(&q))))
        });
        group.bench_with_input(BenchmarkId::new("meet", n), &n, |b, _| {
            b.iter(|| black_box(p.meet(black_box(&q))))
        });
        group.bench_with_input(BenchmarkId::new("refines", n), &n, |b, _| {
            b.iter(|| black_box(p.join(&q).refines(black_box(&p))))
        });
        group.bench_with_input(BenchmarkId::new("complement_check", n), &n, |b, _| {
            b.iter(|| black_box(p.is_complement(black_box(&q))))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_partition_ops
}
criterion_main!(benches);
