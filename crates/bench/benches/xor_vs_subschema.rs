//! E7 / E11: the subschema complement `Γ₂` versus the XOR complement
//! `Γ₃` of Examples 1.3.6 / 3.3.1, at scale.
//!
//! Two measurements:
//! 1. **Reflected change size** (the experiment's "table"): `Γ₂`-constant
//!    reflections equal the requested change; `Γ₃`-constant reflections
//!    are exactly twice as large (the extraneous mirror-change in `S`).
//! 2. **Translation time** per update, by relation size.

use compview_bench::header;
use compview_core::{workload, xor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn shape_table() {
    header(
        "E7/E11",
        "reflected change: Γ2 (strong) vs Γ3 (XOR) constant complements",
    );
    eprintln!("  |R|=|S|   |ΔR|   via Γ2   via Γ3   ratio");
    for &(n, edits) in &[(100usize, 10usize), (1000, 50), (10000, 200)] {
        let mut rng = workload::rng(41);
        let base = workload::random_two_unary(n, n + n / 2, &mut rng);
        let new_r = workload::mutate_unary(base.rel("R"), edits, edits, n + n / 2, &mut rng);
        let cmp = xor::compare(&base, &new_r);
        eprintln!(
            "  {:7}   {:4}   {:6}   {:6}   {:.1}×",
            n,
            base.rel("R").sym_diff(&new_r).len(),
            cmp.change_via_s,
            cmp.change_via_t,
            cmp.change_via_t as f64 / cmp.change_via_s.max(1) as f64
        );
    }
}

fn bench_translation_time(c: &mut Criterion) {
    shape_table();
    for &n in &[100usize, 1000, 10000] {
        let mut rng = workload::rng(43);
        let base = workload::random_two_unary(n, n + n / 2, &mut rng);
        let new_r = workload::mutate_unary(base.rel("R"), 20, 20, n + n / 2, &mut rng);

        let mut group = c.benchmark_group(format!("xor/n{n}"));
        group.bench_with_input(BenchmarkId::new("via_gamma2", n), &n, |b, _| {
            b.iter(|| black_box(xor::update_r_const_s(black_box(&base), black_box(&new_r))))
        });
        group.bench_with_input(BenchmarkId::new("via_gamma3", n), &n, |b, _| {
            b.iter(|| black_box(xor::update_r_const_t(black_box(&base), black_box(&new_r))))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_translation_time
}
criterion_main!(benches);
