//! Design-choice ablations #1–#2 (DESIGN.md §7): interned symbols vs
//! inline strings for tuple comparison, and `BTreeSet` relations vs a
//! sort-and-dedup `Vec` baseline for the set algebra of Notation 1.2.3.
//!
//! Shape expected: interning wins on comparison-heavy operations (orders
//! of magnitude on wide tuples); BTreeSet and Vec trade blows — Vec wins
//! bulk union, BTreeSet wins membership and incremental insert, which is
//! the pattern translation needs.

use compview_relation::{rel, Relation, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn interned_relation(n: usize) -> Relation {
    Relation::from_tuples(
        2,
        (0..n).map(|i| {
            Tuple::new([
                Value::sym(&format!("left{i}")),
                Value::sym(&format!("right{}", i % 97)),
            ])
        }),
    )
}

/// The string-comparison baseline: same data as (String, String) pairs in
/// a BTreeSet.
fn string_relation(n: usize) -> std::collections::BTreeSet<(String, String)> {
    (0..n)
        .map(|i| (format!("left{i}"), format!("right{}", i % 97)))
        .collect()
}

fn bench_interning_ablation(c: &mut Criterion) {
    compview_bench::header(
        "ablation-1",
        "interned u32 symbols vs inline strings (set intersection)",
    );
    let mut group = c.benchmark_group("relation_ops/interning");
    for &n in &[1000usize, 10000] {
        let a = interned_relation(n);
        let b2 = interned_relation(n / 2);
        group.bench_with_input(BenchmarkId::new("interned", n), &n, |b, _| {
            b.iter(|| black_box(a.intersect(black_box(&b2))))
        });
        let sa = string_relation(n);
        let sb = string_relation(n / 2);
        group.bench_with_input(BenchmarkId::new("strings", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    sa.intersection(black_box(&sb))
                        .cloned()
                        .collect::<std::collections::BTreeSet<_>>(),
                )
            })
        });
    }
    group.finish();
}

fn bench_set_algebra(c: &mut Criterion) {
    compview_bench::header(
        "ablation-2",
        "BTreeSet relations vs Vec sort-dedup baseline (union + membership)",
    );
    let mut group = c.benchmark_group("relation_ops/container");
    for &n in &[1000usize, 10000] {
        let a = interned_relation(n);
        let b2 = interned_relation(n + n / 3);
        group.bench_with_input(BenchmarkId::new("btree_union", n), &n, |b, _| {
            b.iter(|| black_box(a.union(black_box(&b2))))
        });
        let va: Vec<Tuple> = a.iter().cloned().collect();
        let vb: Vec<Tuple> = b2.iter().cloned().collect();
        group.bench_with_input(BenchmarkId::new("vec_sort_union", n), &n, |b, _| {
            b.iter(|| {
                let mut out = va.clone();
                out.extend(vb.iter().cloned());
                out.sort();
                out.dedup();
                black_box(out)
            })
        });
        let probe: Vec<Tuple> = (0..100)
            .map(|i| {
                Tuple::new([
                    Value::sym(&format!("left{i}")),
                    Value::sym(&format!("right{}", i % 97)),
                ])
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("btree_membership", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &probe {
                    if a.contains(black_box(t)) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("vec_membership", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in &probe {
                    if va.binary_search(black_box(t)).is_ok() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();

    // Projection and join micro-costs on realistic shapes.
    let mut group = c.benchmark_group("relation_ops/algebra");
    let r = rel(
        2,
        (0..5000)
            .map(|i| [format!("s{}", i % 500), format!("p{}", i % 97)])
            .collect::<Vec<_>>(),
    );
    let s = rel(
        2,
        (0..5000)
            .map(|i| [format!("p{}", i % 97), format!("j{}", i % 333)])
            .collect::<Vec<_>>(),
    );
    group.bench_function("project_5k", |b| {
        b.iter(|| black_box(r.project(black_box(&[1]))))
    });
    group.bench_function("hash_join_5k", |b| {
        b.iter(|| black_box(r.join(black_box(&s), &[(1, 0)])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_interning_ablation, bench_set_algebra
}
criterion_main!(benches);
