//! E10: incremental state-space maintenance — patching the LDB
//! enumeration and ↓-poset in place on a single-tuple pool edit vs
//! re-enumerating from scratch (the `compview-session` hot path).
//!
//! Schema: R[K,V] with FD K→V over a pool of `keys` keys × 2 candidate
//! values, so each key is independently absent or bound to one of two
//! values and the space has exactly 3^keys states.  Each "patch" iter
//! performs one `insert_tuple` + one `remove_tuple` (restoring the
//! space); each "full" iter performs the same edit pair by two fresh
//! enumerations.
//!
//! Expected shape: patch ≫ full — insert decides fresh poset pairs by
//! per-relation submask inclusion (u64 ops) instead of the O(n²)
//! subinstance checks of `FinPoset::from_leq`, and remove is a pure
//! filter that never consults leq.  Acceptance floor: ≥5x at the
//! largest pool.

use compview_bench::header;
use compview_core::StateSpace;
use compview_logic::{Constraint, Fd, Schema};
use compview_relation::{v, RelDecl, Signature, Tuple};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn fd_schema() -> Schema {
    Schema::new(
        Signature::new([RelDecl::new("R", ["K", "V"])]),
        vec![Constraint::Fd(Fd::new("R", vec![0], vec![1]))],
    )
}

fn fd_pools(keys: usize) -> BTreeMap<String, Vec<Tuple>> {
    let mut pool = Vec::new();
    for k in 0..keys {
        for val in 0..2 {
            pool.push(Tuple::new([v(&format!("k{k}")), v(&format!("v{val}"))]));
        }
    }
    [("R".to_owned(), pool)].into()
}

fn bench_incremental(c: &mut Criterion) {
    header(
        "E10",
        "incremental maintenance: patch-in-place vs full re-enumeration",
    );
    for &keys in &[4usize, 5, 6] {
        let pools = fd_pools(keys);
        let extra = Tuple::new([v("kx"), v("v0")]);
        let mut space = StateSpace::enumerate(fd_schema(), &pools);
        eprintln!("  keys={keys}: {} states", space.len());

        let mut group = c.benchmark_group(format!("incremental/keys{keys}"));
        group.bench_function("patch", |b| {
            b.iter(|| {
                space.insert_tuple("R", extra.clone()).unwrap();
                black_box(space.len());
                space.remove_tuple("R", &extra).unwrap();
                black_box(space.len());
            })
        });
        group.sample_size(10);
        group.bench_function("full", |b| {
            b.iter(|| {
                let mut grown = pools.clone();
                grown.get_mut("R").expect("pool").push(extra.clone());
                black_box(StateSpace::enumerate(fd_schema(), &grown).len());
                black_box(StateSpace::enumerate(fd_schema(), &pools).len());
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_incremental
}
criterion_main!(benches);
