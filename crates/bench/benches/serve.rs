//! E13: wire-protocol costs — codec throughput, loopback round-trip
//! latency, and pipelining.
//!
//! `codec_request` prices the frame payload codec alone (encode + decode
//! of an `Update` request, no I/O).  `roundtrip` is one `Read` request
//! call-and-wait over a loopback TCP connection: wire framing, CRC,
//! thread hand-off to the dispatcher, and back.  `pipelined_16` sends 16
//! `Read`s before collecting any response, so its mean divided by 16 is
//! the per-request cost once the connection's FIFO is kept full — the
//! client-side face of the server's batch dispatcher.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::proto::{decode_request_payload, encode_request_payload};
use compview_serve::{Client, Server};
use compview_session::{Service, Session, SessionConfig, SessionRequest};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

/// An in-memory service with one session and the view `r` registered —
/// the same 256-state space as the `session` and `wal` benches.
fn demo_service() -> Service<SubschemaComponents> {
    let sig = sig();
    let mut session = Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pools(),
        Instance::null_model(&sig).with("R", rel(1, [["a0"]])),
        SessionConfig::default(),
    )
    .unwrap();
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .unwrap();
    let mut svc = Service::new();
    svc.add_session("w", session).unwrap();
    svc
}

fn bench_serve(c: &mut Criterion) {
    header(
        "E13",
        "serve: wire codec, loopback round-trip, pipelining amortisation",
    );
    let mut group = c.benchmark_group("serve");

    // Codec alone: encode + decode the largest common payload, an Update
    // carrying a full view state.
    {
        let update = SessionRequest::Update {
            view: "r".into(),
            new_state: Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["a2"]])),
        };
        group.bench_function("codec_request", |b| {
            b.iter(|| {
                let payload = encode_request_payload("w", &update);
                black_box(decode_request_payload(&payload).unwrap())
            })
        });
    }

    let read = SessionRequest::Read { view: "r".into() };

    // One call-and-wait request over loopback TCP.
    {
        let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        group.bench_function("roundtrip", |b| {
            b.iter(|| {
                let res = client.request("w", &read).unwrap();
                assert!(res.is_ok());
                black_box(res)
            })
        });
        drop(client);
        server.shutdown();
    }

    // 16 pipelined requests: divide by 16 for the amortised per-request
    // cost with the connection FIFO kept full.
    {
        let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        group.bench_function("pipelined_16", |b| {
            b.iter(|| {
                for _ in 0..16 {
                    client.send("w", &read).unwrap();
                }
                for _ in 0..16 {
                    assert!(client.recv().unwrap().is_ok());
                }
            })
        });
        drop(client);
        server.shutdown();
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_serve
}
criterion_main!(benches);
