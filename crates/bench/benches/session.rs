//! E11: `compview-session` serving costs — a cached component read
//! (`Read` with the view's endomorphism map already memoised) vs a cold
//! read that must recompute the map (`cache_miss`, forced by
//! invalidating the cache each iter, as a pool edit would), plus the
//! per-request cost of a full `Update`/`Undo` round trip.
//!
//! Expected shape: read_hit ≪ read_miss — a hit is one memoised table
//! lookup per request, a miss recomputes `endo` + `id_of` for every
//! state and re-verifies the strong-endomorphism property.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_session::{Session, SessionConfig, SessionRequest};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

/// Two unary relations with modest pools: 2^(5+3) = 256 states.
fn open_session() -> Session<SubschemaComponents> {
    let sig = Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])]);
    let pools: BTreeMap<String, Vec<Tuple>> = [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into();
    let base = Instance::null_model(&sig).with("R", rel(1, [["a0"]]));
    let mut session = Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig),
        &pools,
        base,
        SessionConfig::default(),
    )
    .expect("base state is in the space");
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .expect("R is a subschema component");
    session
}

fn bench_session(c: &mut Criterion) {
    header("E11", "session serving: cached read vs cold read vs update");
    let mut session = open_session();
    eprintln!(
        "  {} states, {} cached masks",
        session.space().len(),
        session.stats().cache_misses
    );

    let mut group = c.benchmark_group("session");
    group.bench_function("read_hit", |b| {
        b.iter(|| {
            black_box(
                session
                    .serve(SessionRequest::Read { view: "r".into() })
                    .unwrap(),
            )
        })
    });
    group.bench_function("read_miss", |b| {
        b.iter(|| {
            session.invalidate_cache();
            black_box(
                session
                    .serve(SessionRequest::Read { view: "r".into() })
                    .unwrap(),
            )
        })
    });
    // Satellite: endo-cache remap across pool inserts.  Both variants run
    // the same warm-read / insert / read / remove cycle; they differ only
    // in whether the cache survives the insert (remapped through the
    // splice trace) or is dropped and recomputed.  The difference is the
    // measured remap win: (miss) − (remap + hit) per insert.
    let fresh = Tuple::new([v("zz")]);
    group.bench_function("insert_cycle_remap", |b| {
        b.iter(|| {
            session
                .serve(SessionRequest::Read { view: "r".into() })
                .unwrap();
            session
                .serve(SessionRequest::InsertPoolTuple {
                    relation: "R".into(),
                    tuple: fresh.clone(),
                })
                .unwrap();
            black_box(
                session
                    .serve(SessionRequest::Read { view: "r".into() })
                    .unwrap(),
            );
            session
                .serve(SessionRequest::RemovePoolTuple {
                    relation: "R".into(),
                    tuple: fresh.clone(),
                })
                .unwrap();
        })
    });
    group.bench_function("insert_cycle_invalidate", |b| {
        b.iter(|| {
            session
                .serve(SessionRequest::Read { view: "r".into() })
                .unwrap();
            session
                .serve(SessionRequest::InsertPoolTuple {
                    relation: "R".into(),
                    tuple: fresh.clone(),
                })
                .unwrap();
            session.invalidate_cache();
            black_box(
                session
                    .serve(SessionRequest::Read { view: "r".into() })
                    .unwrap(),
            );
            session
                .serve(SessionRequest::RemovePoolTuple {
                    relation: "R".into(),
                    tuple: fresh.clone(),
                })
                .unwrap();
        })
    });
    let target =
        Instance::null_model(session.space().schema().sig()).with("R", rel(1, [["a1"], ["a2"]]));
    group.bench_function("update_undo", |b| {
        b.iter(|| {
            black_box(
                session
                    .serve(SessionRequest::Update {
                        view: "r".into(),
                        new_state: target.clone(),
                    })
                    .unwrap(),
            );
            black_box(session.serve(SessionRequest::Undo).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_session
}
criterion_main!(benches);
