//! E19: distributed-tracing overhead — what trace-context tagging costs
//! on the E12 group-commit batch, per sampling rate.
//!
//! Every leg dispatches the same 16-request update/undo batch as
//! `wal/group_commit_16` on an `Always` durable session, so the numbers
//! divide by 16 for per-request cost and compare directly against E12.
//! `untraced` is the plain `dispatch` baseline.  `tag_off` tags every
//! request with a trace context while sampling is off (rate 0): the head
//! sampler drops everything, so this prices the tagging plumbing alone
//! and must sit at noise level.  `tag_1in64` samples one trace in 64 —
//! the recommended production rate.  `tag_on` samples every request
//! (rate 1) and drains the span buffer each iteration, the worst case a
//! collector would ever see; the acceptance bar is ≤ 5% over the
//! baseline.  `snapshot_codec_1k` prices the `TraceSnapshot` wire codec
//! (encode + decode of a 1024-span drain) that a `Trace` request pays.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_obs::{DistTracer, TraceCtx, TraceSnapshot};
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_session::{Service, Session, SessionConfig, SessionRequest, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

/// A one-session durable service logging to `path` under
/// `SyncPolicy::Always` — the E12 `group_commit_16` setup, verbatim.
fn durable_service(path: &std::path::Path) -> Service<SubschemaComponents> {
    std::fs::remove_file(path).ok();
    let store = compview_session::FsStore::open(path).unwrap();
    let mut session = Session::open_durable(
        SubschemaComponents::singletons(sig()),
        Schema::unconstrained(sig()),
        &pools(),
        Instance::null_model(&sig()).with("R", rel(1, [["a0"]])),
        SessionConfig::default(),
        Box::new(store),
        SyncPolicy::Always,
    )
    .unwrap();
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .unwrap();
    let mut svc = Service::new();
    svc.add_session("w", session).unwrap();
    svc
}

/// The E12 16-request group-commit batch: 8 × (update, undo).
fn batch() -> Vec<(String, SessionRequest)> {
    let target = Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["a2"]]));
    (0..8)
        .flat_map(|_| {
            [
                (
                    "w".to_owned(),
                    SessionRequest::Update {
                        view: "r".into(),
                        new_state: target.clone(),
                    },
                ),
                ("w".to_owned(), SessionRequest::Undo),
            ]
        })
        .collect()
}

fn bench_trace(c: &mut Criterion) {
    header(
        "E19",
        "trace: context-tagging overhead on the E12 group-commit batch",
    );
    let mut group = c.benchmark_group("trace");
    let tmp = std::env::temp_dir().join(format!("compview-bench-trace-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let batch = batch();

    // Baseline: the untraced dispatch path, same bytes as E12.
    {
        let mut service = durable_service(&tmp.join("untraced.wal"));
        group.bench_function("group_commit_16_untraced", |b| {
            b.iter(|| {
                let results = service.dispatch(batch.clone());
                assert!(results.iter().all(Result::is_ok));
                black_box(results)
            })
        });
    }

    // Tagged legs: every request carries a trace context; the sampling
    // rate decides how many actually record spans.
    for (leg, rate) in [
        ("group_commit_16_tag_off", 0u64),
        ("group_commit_16_tag_1in64", 64),
        ("group_commit_16_tag_on", 1),
    ] {
        let mut service = durable_service(&tmp.join(format!("{leg}.wal")));
        let tracer = service.registry().dtracer();
        tracer.configure("bench", rate);
        group.bench_function(leg, |b| {
            b.iter(|| {
                let tagged: Vec<(String, SessionRequest, Option<TraceCtx>)> = batch
                    .iter()
                    .map(|(name, req)| {
                        let ctx = TraceCtx {
                            trace_id: tracer.new_trace_id(),
                            parent_span: 7,
                        };
                        (name.clone(), req.clone(), Some(ctx))
                    })
                    .collect();
                let results = service.dispatch_traced(tagged);
                assert!(results.iter().all(Result::is_ok));
                // A live collector drains as it goes; fold that cost in
                // so the sampled legs price the whole pipeline.
                if rate != 0 {
                    black_box(service.registry().dtracer().drain());
                }
                black_box(results)
            })
        });
    }

    // The wire codec a `Trace` request pays: encode + decode a
    // 1024-span drain.
    {
        let tracer = DistTracer::new();
        tracer.configure("127.0.0.1:9999", 1);
        for i in 0..1024u64 {
            let ctx = TraceCtx {
                trace_id: tracer.sampled_trace_id(),
                parent_span: i,
            };
            tracer.record(ctx, "wal.append", i * 100, 42);
        }
        let snap = tracer.drain();
        assert_eq!(snap.spans.len(), 1024);
        group.bench_function("snapshot_codec_1k", |b| {
            b.iter(|| {
                let bytes = snap.encode();
                black_box(TraceSnapshot::decode(&bytes).unwrap())
            })
        });
    }

    group.finish();
    std::fs::remove_dir_all(&tmp).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_trace
}
criterion_main!(benches);
