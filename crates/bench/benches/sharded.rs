//! E15: sharded dispatch — write throughput vs dispatcher shard count.
//!
//! Two views of the same question.  `dispatch_x32` is the in-process
//! core: a `ShardedService` fans one 32-request batch (round-robin over
//! 8 in-memory sessions) across its shards, so its mean divided by 32 is
//! the per-request dispatch cost with no wire in the way.  `wire_x32`
//! is the full server: 8 **durable** sessions (fsync-per-record policy,
//! group commit amortising it), one pipelined connection, 32 updates per
//! iteration scattered over every session — the multi-core write path of
//! DESIGN.md §12.  On an N-core box throughput should scale until shards
//! exceed min(cores, sessions); on one core the curves stay flat and the
//! sweep prices pure sharding overhead instead.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{Client, Server};
use compview_session::{
    Service, Session, SessionConfig, SessionRequest, ShardedService, SyncPolicy,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::Path;

const SESSIONS: usize = 8;
const BATCH: usize = 32;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

fn open_session() -> Session<SubschemaComponents> {
    let sig = sig();
    let mut session = Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pools(),
        Instance::null_model(&sig).with("R", rel(1, [["a0"]])),
        SessionConfig::default(),
    )
    .unwrap();
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .unwrap();
    session
    // same 256-state space as the session/wal/serve benches
}

/// 8 in-memory sessions, view registered.
fn memory_service() -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for i in 0..SESSIONS {
        svc.add_session(format!("s{i}"), open_session()).unwrap();
    }
    svc
}

/// 8 durable sessions (WAL + fsync-per-record), view registered.
fn durable_service(dir: &Path) -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for i in 0..SESSIONS {
        let sig = sig();
        let name = format!("s{i}");
        svc.create_durable_session(
            dir,
            &name,
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            Instance::null_model(&sig).with("R", rel(1, [["a0"]])),
            SessionConfig::default(),
            SyncPolicy::Always,
        )
        .unwrap();
        svc.serve(
            &name,
            SessionRequest::RegisterView {
                name: "r".into(),
                mask: 0b01,
            },
        )
        .unwrap();
    }
    svc
}

/// The 32-request write batch: updates round-robin over the sessions,
/// alternating between two reachable states so every request is a real
/// transition.
fn write_batch(flip: bool) -> Vec<(String, SessionRequest)> {
    let a = Instance::null_model(&sig()).with("R", rel(1, [["a1"]]));
    let b = Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["a2"]]));
    (0..BATCH)
        .map(|i| {
            let odd = (i / SESSIONS).is_multiple_of(2);
            (
                format!("s{}", i % SESSIONS),
                SessionRequest::Update {
                    view: "r".into(),
                    new_state: if odd != flip { a.clone() } else { b.clone() },
                },
            )
        })
        .collect()
}

fn bench_sharded(c: &mut Criterion) {
    header(
        "E15",
        "sharded dispatch: write throughput vs dispatcher shard count",
    );
    let mut group = c.benchmark_group("sharded");

    // In-process: ShardedService::dispatch, no wire.
    for shards in [1usize, 2, 4, 8] {
        let mut sharded = ShardedService::new(memory_service(), shards);
        let mut flip = false;
        group.bench_function(format!("dispatch_x32/shards={shards}"), |b| {
            b.iter(|| {
                flip = !flip;
                black_box(sharded.dispatch(write_batch(flip)))
            })
        });
        sharded.into_service();
    }

    // Full server: durable sessions, one pipelined connection, group
    // commit per shard per drain.
    for shards in [1usize, 2, 4, 8] {
        let dir = std::env::temp_dir().join(format!(
            "compview-bench-sharded-{}-{shards}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let server = Server::bind_sharded("127.0.0.1:0", durable_service(&dir), shards).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut flip = false;
        group.bench_function(format!("wire_x32/shards={shards}"), |b| {
            b.iter(|| {
                flip = !flip;
                for (session, req) in write_batch(flip) {
                    client.send(&session, &req).unwrap();
                }
                for _ in 0..BATCH {
                    assert!(client.recv().unwrap().is_ok());
                }
            })
        });
        // The tail of the run just measured: exact Update quantiles from
        // the reservoir, plus the deepest any shard queue ever got.
        let snap = client.metrics().unwrap();
        let tail = &snap
            .quantiles
            .iter()
            .find(|(n, _)| n == "session.serve.update_tail_ns")
            .expect("update tail reservoir")
            .1;
        let hwm = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "serve.queue_depth_hwm")
            .expect("queue depth gauge")
            .1;
        println!(
            "compview-bench: {{\"id\":\"sharded/wire_tail/shards={shards}\",\
             \"queue_depth_hwm\":{hwm},\"p50_ns\":{},\"p95_ns\":{},\
             \"p99_ns\":{},\"p999_ns\":{}}}",
            tail.quantile(0.50),
            tail.quantile(0.95),
            tail.quantile(0.99),
            tail.quantile(0.999),
        );
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_sharded
}
criterion_main!(benches);
