//! E10 / T2 (headline): constant-complement **component translation**
//! versus **brute-force solution search**.
//!
//! The paper's thesis, quantified: updating through a component is a
//! *structural* operation (split, replace, re-close — near-linear in the
//! data), while without the component algebra a system must *search* for
//! a base state realising the view update (exponential in the candidate
//! tuple space).  Expected shape: component translation scales ~linearly;
//! brute force explodes past a dozen tuples; crossover is immediate.

use compview_bench::{closed_instance, header, path_schema};
use compview_core::{workload, PathComponents};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_component_translation(c: &mut Criterion) {
    header(
        "E10/T2",
        "component translation vs brute-force search (who wins: components, by orders of magnitude)",
    );
    let ps = path_schema();
    let pc = PathComponents::new(ps.clone());

    let mut group = c.benchmark_group("translate/component");
    for &n in &[10usize, 30, 100, 300, 1000] {
        let base = closed_instance(n, (n / 4).max(3), 7);
        let part = pc.endo(0b001, &base);
        let new_part = workload::mutate_component_state(
            &ps,
            0b001,
            &part,
            3,
            2,
            (n / 4).max(3),
            &mut workload::rng(11),
        );
        eprintln!(
            "  n_gen={n}: |base|={} objects, |AB-part|={} → {}",
            base.len(),
            part.len(),
            new_part.len()
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let out = pc
                    .translate(0b001, black_box(&base), black_box(&new_part))
                    .unwrap();
                black_box(out)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("translate/brute_force");
    group.sample_size(10);
    for &n in &[2usize, 3, 4] {
        // Tiny instances: the pool is the closure of base ∪ new_part and
        // brute force enumerates its subsets.
        let base = closed_instance(n, 3, 13);
        let part = pc.endo(0b001, &base);
        let new_part =
            workload::mutate_component_state(&ps, 0b001, &part, 1, 0, 3, &mut workload::rng(17));
        let pool = ps.close(&base.union(&new_part));
        if pool.len() > 16 {
            eprintln!("  n_gen={n}: pool {} too large, skipped", pool.len());
            continue;
        }
        eprintln!("  n_gen={n}: search space 2^{}", pool.len());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let out = pc
                    .translate_brute_force(0b001, black_box(&base), black_box(&new_part))
                    .unwrap();
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let ps = path_schema();
    let pc = PathComponents::new(ps);
    let mut group = c.benchmark_group("translate/decompose");
    for &n in &[100usize, 1000] {
        let base = closed_instance(n, (n / 4).max(3), 23);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let a = pc.endo(0b011, black_box(&base));
                let bb = pc.endo(0b100, black_box(&base));
                black_box(pc.reconstruct(&a, &bb))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_component_translation, bench_decomposition
}
criterion_main!(benches);
