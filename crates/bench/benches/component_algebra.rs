//! E9: building and verifying the Boolean algebra of components.
//!
//! Enumerated side: generate + fully verify the 2.3.4 algebra over state
//! spaces of growing size (the verification cost is what a DBA pays once
//! per schema).  Symbolic side: component operations (endo / complement /
//! decomposition) on large instances, where the algebra has 2^(k-1)
//! elements but operations stay O(data).

use compview_bench::{closed_instance, header};
use compview_core::paper::example_2_1_1 as ex;
use compview_core::{strong, ComponentAlgebra, MatView, PathComponents, StateSpace};
use compview_logic::PathSchema;
use compview_relation::{v, Tuple};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn spaces() -> Vec<(usize, StateSpace)> {
    let ps = PathSchema::example_2_1_1();
    let pool_small: Vec<Tuple> = vec![
        ps.object(0, &[v("a1"), v("b1")]),
        ps.object(1, &[v("b1"), v("c1")]),
        ps.object(2, &[v("c1"), v("d1")]),
        ps.object(0, &[v("a2"), v("b1")]),
    ];
    let pool_mid = ex::small_generator_pool();
    let mut pool_large = ex::small_generator_pool();
    pool_large.push(ps.object(0, &[v("a3"), v("b1")]));
    pool_large.push(ps.object(2, &[v("c1"), v("d3")]));
    vec![
        (pool_small.len(), ex::small_space(&pool_small)),
        (pool_mid.len(), ex::small_space(&pool_mid)),
        (pool_large.len(), ex::small_space(&pool_large)),
    ]
}

fn bench_generate_and_verify(c: &mut Criterion) {
    header(
        "E9",
        "component algebra: generation + full Boolean verification per space size",
    );
    for (gens, sp) in spaces() {
        eprintln!("  pool={gens} generators → |LDB| = {}", sp.len());
        let atoms = || {
            vec![
                ("AB", vec![0usize, 1]),
                ("BC", vec![1, 2]),
                ("CD", vec![2, 3]),
            ]
            .into_iter()
            .map(|(n, cols)| {
                let mv = MatView::materialise(ex::object_view(n, &cols), &sp);
                (n.to_owned(), strong::endomorphism(&sp, &mv))
            })
            .collect::<Vec<_>>()
        };
        let mut group = c.benchmark_group(format!("component_algebra/ldb{}", sp.len()));
        group.sample_size(10);
        group.bench_function("strength_analysis", |b| b.iter(|| black_box(atoms())));
        let a = atoms();
        group.bench_function("generate", |b| {
            b.iter(|| black_box(ComponentAlgebra::generate(&sp, a.clone()).unwrap()))
        });
        let alg = ComponentAlgebra::generate(&sp, a).unwrap();
        group.bench_function("verify_laws", |b| b.iter(|| alg.verify().unwrap()));
        group.finish();
    }
}

fn bench_symbolic_ops(c: &mut Criterion) {
    let ps = PathSchema::example_2_1_1();
    let pc = PathComponents::new(ps);
    let mut group = c.benchmark_group("component_algebra/symbolic_endo");
    for &n in &[100usize, 1000, 10000] {
        let base = closed_instance(n, (n / 4).max(3), 53);
        eprintln!("  symbolic endo over {} objects", base.len());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(pc.endo(0b011, black_box(&base))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_generate_and_verify, bench_symbolic_ops
}
criterion_main!(benches);
