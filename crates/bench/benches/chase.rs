//! E8: closure of null-augmented instances (Example 2.1.1), plus
//! design-choice ablation #3 — specialised worklist closure vs semi-naive
//! chase vs naive chase.
//!
//! Expected shape: specialised ≪ semi-naive ≪ naive, with the gap growing
//! with instance size; all three agree tuple-for-tuple (asserted in tests).

use compview_bench::{closed_instance, header, path_schema};
use compview_core::workload;
use compview_logic::{chase, chase_naive, ChaseConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_closure_engines(c: &mut Criterion) {
    header(
        "E8",
        "null-augmented closure: specialised vs semi-naive vs naive chase",
    );
    let ps = path_schema();
    let rules = ps.closure_tgds();
    let cfg = ChaseConfig::default();

    for &n in &[10usize, 30, 100] {
        // Unclosed generators (what arrives before closure).
        let gens = {
            let mut r = compview_relation::Relation::empty(ps.arity());
            let mut rng = workload::rng(31);
            for t in workload::random_path_instance(&ps, n, (n / 4).max(3), &mut rng)
                .iter()
                .filter(|t| ps.interval(t).is_some_and(|(i, j)| j == i + 1))
            {
                r.insert(t.clone());
            }
            r
        };
        let closed_len = ps.close(&gens).len();
        eprintln!(
            "  n={n}: {} generators close to {closed_len} objects",
            gens.len()
        );

        let mut group = c.benchmark_group(format!("chase/n{n}"));
        group.bench_function("specialised", |b| {
            b.iter(|| black_box(ps.close(black_box(&gens))))
        });
        let inst = ps.instance(gens.clone());
        group.bench_function("semi_naive", |b| {
            b.iter(|| black_box(chase(black_box(&inst), &rules, &[], &cfg).unwrap()))
        });
        if n <= 30 {
            group.sample_size(10);
            group.bench_function("naive", |b| {
                b.iter(|| black_box(chase_naive(black_box(&inst), &rules, &[], &cfg).unwrap()))
            });
        }
        group.finish();
    }
}

fn bench_closure_scaling(c: &mut Criterion) {
    // Pure specialised-closure scaling, larger sizes.
    let ps = path_schema();
    let mut group = c.benchmark_group("chase/specialised_scaling");
    for &n in &[100usize, 300, 1000, 3000] {
        let closed = closed_instance(n, (n / 4).max(3), 37);
        eprintln!("  n={n}: re-closing {} objects", closed.len());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ps.close(black_box(&closed))))
        });
    }
    group.finish();
}

fn bench_wide_join(c: &mut Criterion) {
    // Wide-body (3- and 4-atom) TGDs: stresses `TupleIndex` bucket
    // selection in the semi-naive engine — each rule body offers several
    // candidate delta atoms and the planner must pick join columns well.
    let rules = workload::wide_join_tgds();
    let cfg = ChaseConfig::default();
    for &edges in &[40usize, 120] {
        let inst = workload::random_edge_instance(edges, 20, &mut workload::rng(41));
        let closed = chase(&inst, &rules, &[], &cfg).unwrap();
        eprintln!(
            "  edges={edges}: {} transitive pairs, {} four-hop pairs",
            closed.rel("T").len(),
            closed.rel("Q").len()
        );
        let mut group = c.benchmark_group(format!("chase/wide_join/e{edges}"));
        group.bench_function("semi_naive", |b| {
            b.iter(|| black_box(chase(black_box(&inst), &rules, &[], &cfg).unwrap()))
        });
        if edges <= 40 {
            group.sample_size(10);
            group.bench_function("naive", |b| {
                b.iter(|| black_box(chase_naive(black_box(&inst), &rules, &[], &cfg).unwrap()))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_closure_engines, bench_closure_scaling, bench_wide_join
}
criterion_main!(benches);
