//! E14: instrumentation overhead — the same hot paths as E11/E12, run
//! once against a **no-op** registry (every handle is `None`; recording
//! is a branch) and once against a **live** one (a few relaxed atomic
//! ops plus two `Instant::now()` calls per timed section).
//!
//! Legs pair up: `read_hit_noop` vs `read_hit_observed` prices the
//! per-request cost on E11's cached-read path; `group_commit_16_noop`
//! vs `group_commit_16_observed` prices it on E12's batch-dispatch path
//! (16 durable requests, one deferred fsync).  The acceptance bar is
//! observed/noop < 1.03 on both pairs.  `counter_inc` and
//! `histogram_record` are the primitive costs for reference.

use compview_bench::header;
use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_obs::Registry;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_session::{MemStore, Service, Session, SessionConfig, SessionRequest, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["B"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            (0..5).map(|i| Tuple::new([v(&format!("a{i}"))])).collect(),
        ),
        (
            "S".to_owned(),
            (0..3).map(|i| Tuple::new([v(&format!("b{i}"))])).collect(),
        ),
    ]
    .into()
}

fn base() -> Instance {
    Instance::null_model(&sig()).with("R", rel(1, [["a0"]]))
}

/// The E11 session (256 states, view `r` registered), bound to `registry`.
fn open_session(registry: &Registry) -> Session<SubschemaComponents> {
    let mut session = Session::open_observed(
        SubschemaComponents::singletons(sig()),
        Schema::unconstrained(sig()),
        &pools(),
        base(),
        SessionConfig::default(),
        registry,
    )
    .expect("base state is in the space");
    session
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .expect("R is a subschema component");
    session
}

/// The E12 group-commit service: one durable `Always` session over a
/// `MemStore` (no disk noise — this prices the bookkeeping, not the
/// fsync), observing itself on `registry`.
fn open_service(registry: Registry) -> Service<SubschemaComponents> {
    let (store, _shared) = MemStore::new();
    let mut service = Service::with_registry(registry);
    let session = Session::open_durable(
        SubschemaComponents::singletons(sig()),
        Schema::unconstrained(sig()),
        &pools(),
        base(),
        SessionConfig::default(),
        Box::new(store),
        SyncPolicy::Always,
    )
    .expect("fresh store opens");
    service.add_session("w", session).unwrap();
    service
        .session_mut("w")
        .unwrap()
        .serve(SessionRequest::RegisterView {
            name: "r".into(),
            mask: 0b01,
        })
        .expect("R is a subschema component");
    service
}

fn batch_16(target: &Instance) -> Vec<(String, SessionRequest)> {
    (0..8)
        .flat_map(|_| {
            [
                (
                    "w".to_owned(),
                    SessionRequest::Update {
                        view: "r".into(),
                        new_state: target.clone(),
                    },
                ),
                ("w".to_owned(), SessionRequest::Undo),
            ]
        })
        .collect()
}

fn bench_obs(c: &mut Criterion) {
    header(
        "E14",
        "obs: instrumentation overhead, no-op vs live registry",
    );
    let mut group = c.benchmark_group("obs");

    // Primitive costs.
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let hist = registry.histogram("bench.hist");
    group.bench_function("counter_inc", |b| b.iter(|| black_box(&counter).inc()));
    group.bench_function("histogram_record", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(&hist).record(x >> 32)
        })
    });

    // E11's cached-read path, both ways.
    for (leg, registry) in [
        ("read_hit_noop", Registry::disabled()),
        ("read_hit_observed", Registry::new()),
    ] {
        let mut session = open_session(&registry);
        group.bench_function(leg, |b| {
            b.iter(|| {
                black_box(
                    session
                        .serve(SessionRequest::Read { view: "r".into() })
                        .unwrap(),
                )
            })
        });
    }

    // E12's group-commit path, both ways.
    let target = Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["a2"]]));
    for (leg, registry) in [
        ("group_commit_16_noop", Registry::disabled()),
        ("group_commit_16_observed", Registry::new()),
    ] {
        let mut service = open_service(registry);
        let batch = batch_16(&target);
        group.bench_function(leg, |b| {
            b.iter(|| {
                let results = service.dispatch(batch.clone());
                assert!(results.iter().all(Result::is_ok));
                black_box(results)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
