//! Property tests for the histogram and the metrics wire codec:
//! merging snapshots is exactly equivalent to interleaved recording,
//! bucket boundaries survive the codec bit-for-bit, and corrupted
//! encodings (every truncation, every single-bit flip) are rejected.

use compview_obs::{bucket_floor, bucket_index, HistogramSnapshot, MetricsSnapshot, Registry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// A value stream skewed across the whole `u64` range: small latencies,
/// mid-range byte counts, and the occasional huge outlier.
fn rand_values(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let shift = rng.random_range(0..64u32);
            rng.next_u64() >> shift
        })
        .collect()
}

fn record_all(reg: &Registry, name: &str, values: &[u64]) -> HistogramSnapshot {
    let h = reg.histogram(name);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == the snapshot of one histogram that saw both
    /// streams, in *any* interleaving (here: a deterministic shuffle).
    #[test]
    fn merge_equals_interleaved_recording(seed in 0u64..1u64 << 48, na in 0usize..60, nb in 0usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let va = rand_values(&mut rng, na);
        let vb = rand_values(&mut rng, nb);

        let reg = Registry::new();
        let mut merged = record_all(&reg, "a", &va);
        merged.merge(&record_all(&reg, "b", &vb));

        // Interleave the two streams pseudo-randomly.
        let combined = reg.histogram("combined");
        let (mut ia, mut ib) = (va.iter(), vb.iter());
        let (mut xa, mut xb) = (ia.next(), ib.next());
        while xa.is_some() || xb.is_some() {
            let take_a = match (xa, xb) {
                (Some(_), Some(_)) => rng.next_u64() % 2 == 0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_a {
                combined.record(*xa.unwrap());
                xa = ia.next();
            } else {
                combined.record(*xb.unwrap());
                xb = ib.next();
            }
        }
        prop_assert_eq!(&merged, &combined.snapshot());
        prop_assert_eq!(merged.count, (na + nb) as u64);
    }

    /// Every recorded value lands in the bucket whose floor covers it.
    #[test]
    fn bucket_index_brackets_value(seed in 0u64..1u64 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        for v in rand_values(&mut rng, 32) {
            let i = bucket_index(v);
            prop_assert!(bucket_floor(i) <= v);
            if v > 0 {
                prop_assert!(v < bucket_floor(i).saturating_mul(2).max(1));
            }
        }
    }

    /// Snapshots round-trip the wire codec exactly — bucket boundaries,
    /// counts, sums, names — and every truncation of the encoding is
    /// rejected, as is every single-bit flip.
    #[test]
    fn codec_round_trips_and_rejects_corruption(seed in 0u64..1u64 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = Registry::new();
        for i in 0..rng.random_range(0..4u32) {
            reg.counter(&format!("c{i}")).add(rng.next_u64() >> 32);
        }
        for i in 0..rng.random_range(0..3u32) {
            reg.gauge(&format!("g{i}")).set(rng.next_u64());
        }
        for i in 0..rng.random_range(1..4u32) {
            let n = rng.random_range(0..40usize);
            record_all(&reg, &format!("h{i}"), &rand_values(&mut rng, n));
        }
        for i in 0..rng.random_range(0..3u32) {
            let r = reg.reservoir(&format!("r{i}"));
            let n = rng.random_range(0..30usize);
            for v in rand_values(&mut rng, n) {
                r.record(v);
            }
        }
        let snap = reg.snapshot();
        let bytes = snap.encode();
        let decoded = MetricsSnapshot::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Ok(&snap));

        for cut in 0..bytes.len() {
            prop_assert!(MetricsSnapshot::decode(&bytes[..cut]).is_err());
        }
        // All single-bit flips on a sample of bytes (the full sweep runs
        // in the unit tests; here the payload is fuzzed instead).
        for _ in 0..64 {
            let i = rng.random_range(0..bytes.len() as u32) as usize;
            let bit = rng.random_range(0..8u32);
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            prop_assert!(MetricsSnapshot::decode(&corrupt).is_err());
        }
    }
}
