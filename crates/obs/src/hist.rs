//! Log-bucketed latency histograms.
//!
//! Values land in power-of-two buckets: bucket 0 holds the value 0 and
//! bucket `i` (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.  That gives
//! a fixed 65-slot layout covering the whole `u64` range with ~2×
//! relative error — plenty for latency work, where the interesting
//! signal is orders of magnitude (ns vs µs vs ms), and cheap enough to
//! record with two relaxed atomic adds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub(crate) const BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value in bucket `i` (the bucket's lower boundary).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistCore {
    fn default() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistCore {
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0;
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                count += n;
                buckets.push((bucket_floor(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A handle onto a log-bucketed histogram (see module docs); `None`
/// inside means a no-op handle.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistCore>>);

impl Histogram {
    /// A handle that records nothing.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    pub(crate) fn from_core(core: Arc<HistCore>) -> Histogram {
        Histogram(Some(core))
    }

    /// Record one value (two relaxed atomic adds).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Start timing: `Some(now)` on a live handle, `None` on a no-op —
    /// so a disabled registry skips the `Instant::now()` call too.
    #[inline]
    pub fn start(&self) -> Option<std::time::Instant> {
        self.0.as_ref().map(|_| std::time::Instant::now())
    }

    /// Record the nanoseconds elapsed since [`Histogram::start`]
    /// (saturating at `u64::MAX`); a no-op when `started` is `None`.
    #[inline]
    pub fn stop(&self, started: Option<std::time::Instant>) {
        if let Some(t) = started {
            self.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map(|core| core.snapshot())
            .unwrap_or_default()
    }

    /// Add a frozen snapshot's buckets into the live histogram, so that
    /// a subsequent [`Histogram::snapshot`] equals the merge of both —
    /// the registry-merge path ([`crate::Registry::absorb`]).
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if let Some(core) = &self.0 {
            for &(lo, n) in &snap.buckets {
                core.buckets[bucket_index(lo)].fetch_add(n, Ordering::Relaxed);
            }
            core.sum.fetch_add(snap.sum, Ordering::Relaxed);
        }
    }
}

/// A frozen histogram: total count, sum of recorded values, and the
/// non-empty buckets as `(lower boundary, count)` pairs in ascending
/// boundary order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// `(bucket lower boundary, count)` for each non-empty bucket,
    /// boundaries strictly ascending.  Boundary 0 is the zero bucket;
    /// every other boundary is a power of two and the bucket covers
    /// `[b, 2b)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one (bucket-wise addition).
    /// Merging the snapshots of two histograms equals the snapshot of
    /// one histogram that recorded both value streams, in any
    /// interleaving — the proptests in `tests/props.rs` pin this.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(&&(lo, n)), None) => {
                    merged.push((lo, n));
                    a.next();
                }
                (None, Some(&&(lo, n))) => {
                    merged.push((lo, n));
                    b.next();
                }
                (Some(&&(la, na)), Some(&&(lb, nb))) => {
                    if la < lb {
                        merged.push((la, na));
                        a.next();
                    } else if lb < la {
                        merged.push((lb, nb));
                        b.next();
                    } else {
                        merged.push((la, na + nb));
                        a.next();
                        b.next();
                    }
                }
            }
        }
        self.buckets = merged;
    }

    /// Mean of the recorded values, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (0.0 ≤ q ≤ 1.0): the exclusive
    /// upper boundary of the bucket where the quantile falls.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return if lo == 0 { 0 } else { lo.saturating_mul(2) - 1 };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's floor lands back in that bucket, and floor-1 in
        // the previous one.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i);
            if i > 1 {
                assert_eq!(bucket_index(bucket_floor(i) - 1), i - 1);
            }
        }
    }

    #[test]
    fn record_and_snapshot() {
        let reg = crate::Registry::new();
        let h = reg.histogram("t");
        for v in [0, 0, 1, 3, 3, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.buckets, vec![(0, 2), (1, 1), (2, 3), (512, 1)]);
        assert_eq!(s.mean(), 144);
    }

    #[test]
    fn merge_matches_interleaved() {
        let reg = crate::Registry::new();
        let a = reg.histogram("a");
        let b = reg.histogram("b");
        let both = reg.histogram("both");
        for v in [5u64, 9, 0, 77] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 1 << 40, 3] {
            b.record(v);
            both.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn quantile_bounds() {
        let reg = crate::Registry::new();
        let h = reg.histogram("q");
        for _ in 0..99 {
            h.record(10); // bucket [8,16)
        }
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), 15);
        assert_eq!(s.quantile_upper_bound(1.0), (1 << 21) - 1);
        assert_eq!(s.quantile_upper_bound(0.0), 15);
    }

    #[test]
    fn timing_helpers() {
        let reg = crate::Registry::new();
        let h = reg.histogram("lat");
        let t = h.start();
        assert!(t.is_some());
        h.stop(t);
        assert_eq!(h.snapshot().count, 1);
        let noop = Histogram::noop();
        assert!(noop.start().is_none());
        noop.stop(None);
        assert_eq!(noop.snapshot().count, 0);
    }
}
