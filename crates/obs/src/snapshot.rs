//! Frozen metrics snapshots: the wire codec and the Prometheus text
//! exposition.
//!
//! The codec is self-contained (little-endian integers, length-prefixed
//! UTF-8 strings) and ends in a CRC-32 trailer over everything before
//! it, so a corrupted snapshot is *rejected*, never misread: CRC-32
//! catches every single-bit flip, and the strict structural checks
//! (exact length, sorted unique names, power-of-two bucket boundaries,
//! bucket counts summing to the histogram count) catch truncations and
//! splices.  The proptests in `tests/props.rs` sweep both.

use crate::crc32;
use crate::hist::HistogramSnapshot;
use crate::reservoir::ReservoirSnapshot;

/// A frozen view of a [`crate::Registry`]: every instrument, sorted by
/// name within each kind, with the values read at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, names ascending.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, names ascending.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram, names ascending.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, snapshot)` for every quantile reservoir, names ascending.
    pub quantiles: Vec<(String, ReservoirSnapshot)>,
}

/// Codec format version.  Version 2 added the quantile-reservoir
/// section; version-1 readers reject version-2 bytes outright (the
/// codec is all-or-nothing, never partially read).
const VERSION: u8 = 2;

/// Why a metrics snapshot failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeMetricsError {
    /// Shorter than the minimum frame (version byte + CRC trailer).
    TooShort,
    /// The CRC-32 trailer does not match the body.
    BadCrc { want: u32, got: u32 },
    /// Unknown format version.
    BadVersion(u8),
    /// The body ended early or a length prefix overran it.
    Eof { at: usize },
    /// A name was not valid UTF-8.
    BadUtf8 { at: usize },
    /// Names within a section were not strictly ascending.
    UnsortedNames { at: usize },
    /// A histogram's buckets were malformed (non-ascending boundaries,
    /// a boundary that is neither 0 nor a power of two, a zero bucket
    /// count, or bucket counts that do not sum to the total).
    BadHistogram { at: usize },
    /// A quantile reservoir was malformed (samples not nondecreasing,
    /// or more samples than the recorded count).
    BadQuantiles { at: usize },
    /// Bytes remained after the structure was fully decoded.
    TrailingBytes { at: usize },
}

impl std::fmt::Display for DecodeMetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeMetricsError::TooShort => write!(f, "metrics snapshot too short"),
            DecodeMetricsError::BadCrc { want, got } => {
                write!(
                    f,
                    "metrics snapshot crc mismatch: want {want:#x}, got {got:#x}"
                )
            }
            DecodeMetricsError::BadVersion(v) => write!(f, "unknown metrics version {v}"),
            DecodeMetricsError::Eof { at } => write!(f, "metrics snapshot truncated at {at}"),
            DecodeMetricsError::BadUtf8 { at } => write!(f, "bad metric name utf-8 at {at}"),
            DecodeMetricsError::UnsortedNames { at } => {
                write!(f, "metric names out of order at {at}")
            }
            DecodeMetricsError::BadHistogram { at } => {
                write!(f, "malformed histogram at {at}")
            }
            DecodeMetricsError::BadQuantiles { at } => {
                write!(f, "malformed quantile reservoir at {at}")
            }
            DecodeMetricsError::TrailingBytes { at } => {
                write!(f, "trailing bytes after metrics snapshot at {at}")
            }
        }
    }
}

impl std::error::Error for DecodeMetricsError {}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("name fits u32"));
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeMetricsError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeMetricsError::Eof { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeMetricsError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeMetricsError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeMetricsError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, DecodeMetricsError> {
        let at = self.pos;
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(DecodeMetricsError::Eof { at });
        }
        std::str::from_utf8(self.take(len)?)
            .map(str::to_owned)
            .map_err(|_| DecodeMetricsError::BadUtf8 { at })
    }

    /// A count that must leave at least `min_bytes_per_item` per item.
    fn count(&mut self, min_bytes_per_item: usize) -> Result<usize, DecodeMetricsError> {
        let at = self.pos;
        let n = self.u32()? as u64;
        let cap = ((self.buf.len() - self.pos) / min_bytes_per_item.max(1)) as u64;
        if n > cap {
            return Err(DecodeMetricsError::Eof { at });
        }
        Ok(n as usize)
    }
}

impl MetricsSnapshot {
    /// Encode to bytes: version, the four sections, CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(VERSION);
        for section in [&self.counters, &self.gauges] {
            put_u32(&mut out, u32::try_from(section.len()).expect("fits"));
            for (name, v) in section.iter() {
                put_str(&mut out, name);
                put_u64(&mut out, *v);
            }
        }
        put_u32(
            &mut out,
            u32::try_from(self.histograms.len()).expect("fits"),
        );
        for (name, h) in &self.histograms {
            put_str(&mut out, name);
            put_u64(&mut out, h.count);
            put_u64(&mut out, h.sum);
            put_u32(&mut out, u32::try_from(h.buckets.len()).expect("fits"));
            for &(lo, n) in &h.buckets {
                put_u64(&mut out, lo);
                put_u64(&mut out, n);
            }
        }
        put_u32(&mut out, u32::try_from(self.quantiles.len()).expect("fits"));
        for (name, r) in &self.quantiles {
            put_str(&mut out, name);
            put_u64(&mut out, r.count);
            put_u32(&mut out, u32::try_from(r.samples.len()).expect("fits"));
            for &v in &r.samples {
                put_u64(&mut out, v);
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode bytes produced by [`MetricsSnapshot::encode`], rejecting
    /// any corruption (see module docs).
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, DecodeMetricsError> {
        if bytes.len() < 5 {
            return Err(DecodeMetricsError::TooShort);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let got = u32::from_le_bytes(trailer.try_into().expect("4"));
        let want = crc32(body);
        if want != got {
            return Err(DecodeMetricsError::BadCrc { want, got });
        }
        let mut r = Reader { buf: body, pos: 0 };
        let version = r.u8()?;
        if version != VERSION {
            return Err(DecodeMetricsError::BadVersion(version));
        }
        let mut sections: [Vec<(String, u64)>; 2] = [Vec::new(), Vec::new()];
        for section in sections.iter_mut() {
            let n = r.count(4 + 8)?;
            for _ in 0..n {
                let at = r.pos;
                let name = r.str()?;
                let v = r.u64()?;
                if section.last().is_some_and(|(last, _)| *last >= name) {
                    return Err(DecodeMetricsError::UnsortedNames { at });
                }
                section.push((name, v));
            }
        }
        let [counters, gauges] = sections;
        let n = r.count(4 + 8 + 8 + 4)?;
        let mut histograms = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos;
            let name = r.str()?;
            if histograms
                .last()
                .is_some_and(|(last, _): &(String, _)| *last >= name)
            {
                return Err(DecodeMetricsError::UnsortedNames { at });
            }
            let count = r.u64()?;
            let sum = r.u64()?;
            let nb = r.count(8 + 8)?;
            let mut buckets = Vec::with_capacity(nb);
            let mut total = 0u64;
            for _ in 0..nb {
                let bat = r.pos;
                let lo = r.u64()?;
                let cnt = r.u64()?;
                // Boundaries must be the floors the histogram can
                // produce (0 or a power of two), strictly ascending,
                // with a non-zero count — anything else is corruption.
                if (lo != 0 && !lo.is_power_of_two()) || cnt == 0 {
                    return Err(DecodeMetricsError::BadHistogram { at: bat });
                }
                if buckets.last().is_some_and(|&(last, _)| last >= lo) {
                    return Err(DecodeMetricsError::BadHistogram { at: bat });
                }
                total = total
                    .checked_add(cnt)
                    .ok_or(DecodeMetricsError::BadHistogram { at: bat })?;
                buckets.push((lo, cnt));
            }
            if total != count {
                return Err(DecodeMetricsError::BadHistogram { at });
            }
            histograms.push((
                name,
                HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            ));
        }
        let n = r.count(4 + 8 + 4)?;
        let mut quantiles: Vec<(String, ReservoirSnapshot)> = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos;
            let name = r.str()?;
            if quantiles.last().is_some_and(|(last, _)| *last >= name) {
                return Err(DecodeMetricsError::UnsortedNames { at });
            }
            let count = r.u64()?;
            let ns = r.count(8)?;
            if (ns as u64) > count {
                return Err(DecodeMetricsError::BadQuantiles { at });
            }
            let mut samples = Vec::with_capacity(ns);
            for _ in 0..ns {
                let sat = r.pos;
                let v = r.u64()?;
                if samples.last().is_some_and(|&last| last > v) {
                    return Err(DecodeMetricsError::BadQuantiles { at: sat });
                }
                samples.push(v);
            }
            quantiles.push((name, ReservoirSnapshot { count, samples }));
        }
        if r.pos != body.len() {
            return Err(DecodeMetricsError::TrailingBytes { at: r.pos });
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
            quantiles,
        })
    }

    /// Aggregate several snapshots into one: counters add, gauges take
    /// the maximum (every gauge in the workspace is a high-water mark or
    /// a size — the maximum is the conservative service-wide reading),
    /// histograms merge bucket-wise, reservoirs merge-sort their
    /// samples.  Names union; the result is sorted within each kind, so
    /// its content ordering is deterministic whenever each part's name
    /// set is.  This is how a sharded server answers `Metrics` across
    /// per-shard registries.
    pub fn merged<'a, I>(parts: I) -> MetricsSnapshot
    where
        I: IntoIterator<Item = &'a MetricsSnapshot>,
    {
        use std::collections::BTreeMap;
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&str, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<&str, HistogramSnapshot> = BTreeMap::new();
        let mut quantiles: BTreeMap<&str, ReservoirSnapshot> = BTreeMap::new();
        for part in parts {
            for (name, v) in &part.counters {
                *counters.entry(name).or_default() += v;
            }
            for (name, v) in &part.gauges {
                let cell = gauges.entry(name).or_default();
                *cell = (*cell).max(*v);
            }
            for (name, h) in &part.histograms {
                histograms.entry(name).or_default().merge(h);
            }
            for (name, r) in &part.quantiles {
                quantiles.entry(name).or_default().merge(r);
            }
        }
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            gauges: gauges.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: histograms
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            quantiles: quantiles
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        }
    }

    /// The sorted instrument names, one per line, prefixed by kind —
    /// the "content ordering" the determinism contract pins across
    /// thread counts (values excluded).
    pub fn content_ordering(&self) -> String {
        let mut out = String::new();
        for (name, _) in &self.counters {
            out.push_str("counter ");
            out.push_str(name);
            out.push('\n');
        }
        for (name, _) in &self.gauges {
            out.push_str("gauge ");
            out.push_str(name);
            out.push('\n');
        }
        for (name, _) in &self.histograms {
            out.push_str("histogram ");
            out.push_str(name);
            out.push('\n');
        }
        for (name, _) in &self.quantiles {
            out.push_str("quantiles ");
            out.push_str(name);
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition format.  Dotted metric names become
    /// underscore-separated with a `compview_` prefix; histograms render
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut s = String::with_capacity(name.len() + 9);
            s.push_str("compview_");
            for ch in name.chars() {
                if ch.is_ascii_alphanumeric() {
                    s.push(ch);
                } else {
                    s.push('_');
                }
            }
            s
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for &(lo, cnt) in &h.buckets {
                cum += cnt;
                let le = if lo == 0 { 0 } else { lo.saturating_mul(2) - 1 };
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        for (name, r) in &self.quantiles {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (label, q) in [
                ("0.5", 0.5),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                out.push_str(&format!("{n}{{quantile=\"{label}\"}} {}\n", r.quantile(q)));
            }
            out.push_str(&format!("{n}_count {}\n", r.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("serve.frames_in").add(12);
        reg.counter("session.requests").add(7);
        reg.gauge("serve.queue_depth_hwm").set(3);
        let h = reg.histogram("wal.fsync_ns");
        for v in [0u64, 900, 1100, 1 << 33] {
            h.record(v);
        }
        let r = reg.reservoir("session.serve.update_tail_ns");
        for v in [40u64, 10, 99] {
            r.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(MetricsSnapshot::decode(&bytes), Ok(snap.clone()));
        // Empty snapshot round-trips too.
        let empty = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::decode(&empty.encode()), Ok(empty));
        // Bucket boundaries survive exactly.
        let decoded = MetricsSnapshot::decode(&bytes).unwrap();
        assert_eq!(
            decoded.histograms[0].1.buckets,
            vec![(0, 1), (512, 1), (1024, 1), (1 << 33, 1)]
        );
    }

    #[test]
    fn every_truncation_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                MetricsSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_bit_flip_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    MetricsSnapshot::decode(&corrupt).is_err(),
                    "bit flip at byte {i} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn structural_corruption_rejected_even_with_fresh_crc() {
        // Re-CRC'd malformed bodies exercise the structural checks.
        let reseal = |mut body: Vec<u8>| {
            body.truncate(body.len() - 4);
            let crc = crc32(&body);
            body.extend_from_slice(&crc.to_le_bytes());
            body
        };
        // Unsorted counter names.
        let mut snap = sample();
        snap.counters.swap(0, 1);
        assert!(matches!(
            MetricsSnapshot::decode(&reseal(snap.encode())),
            Err(DecodeMetricsError::UnsortedNames { .. })
        ));
        // Histogram count disagreeing with bucket sum.
        let mut snap = sample();
        snap.histograms[0].1.count += 1;
        assert!(matches!(
            MetricsSnapshot::decode(&reseal(snap.encode())),
            Err(DecodeMetricsError::BadHistogram { .. })
        ));
        // Non-power-of-two bucket boundary.
        let mut snap = sample();
        snap.histograms[0].1.buckets[1].0 = 513;
        assert!(matches!(
            MetricsSnapshot::decode(&reseal(snap.encode())),
            Err(DecodeMetricsError::BadHistogram { .. })
        ));
        // Bad version byte (including the retired version 1).
        for bad in [1u8, 9] {
            let mut bytes = sample().encode();
            bytes[0] = bad;
            assert!(matches!(
                MetricsSnapshot::decode(&reseal(bytes)),
                Err(DecodeMetricsError::BadVersion(v)) if v == bad
            ));
        }
        // Reservoir samples out of order.
        let mut snap = sample();
        snap.quantiles[0].1.samples.swap(0, 2);
        assert!(matches!(
            MetricsSnapshot::decode(&reseal(snap.encode())),
            Err(DecodeMetricsError::BadQuantiles { .. })
        ));
        // More samples than the recorded count.
        let mut snap = sample();
        snap.quantiles[0].1.count = 1;
        assert!(matches!(
            MetricsSnapshot::decode(&reseal(snap.encode())),
            Err(DecodeMetricsError::BadQuantiles { .. })
        ));
        // Trailing garbage inside the CRC'd body.
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 4);
        bytes.push(0);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            MetricsSnapshot::decode(&bytes),
            Err(DecodeMetricsError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn content_ordering_lists_names_by_kind() {
        let snap = sample();
        assert_eq!(
            snap.content_ordering(),
            "counter serve.frames_in\ncounter session.requests\n\
             gauge serve.queue_depth_hwm\nhistogram wal.fsync_ns\n\
             quantiles session.serve.update_tail_ns\n"
        );
    }

    #[test]
    fn merged_aggregates_across_parts() {
        let a = sample();
        let reg = Registry::new();
        reg.counter("session.requests").add(5);
        reg.counter("shard.only").add(1);
        reg.gauge("serve.queue_depth_hwm").set(9);
        reg.histogram("wal.fsync_ns").record(900);
        reg.reservoir("session.serve.update_tail_ns").record(7);
        let b = reg.snapshot();

        let m = MetricsSnapshot::merged([&a, &b]);
        let get = |n: &str| m.counters.iter().find(|(k, _)| k == n).unwrap().1;
        assert_eq!(get("session.requests"), 12);
        assert_eq!(get("serve.frames_in"), 12);
        assert_eq!(get("shard.only"), 1);
        assert_eq!(m.gauges[0], ("serve.queue_depth_hwm".into(), 9));
        let h = &m.histograms[0].1;
        assert_eq!(h.count, 5);
        // Bucket-wise: the two 900s share the [512, 1024) bucket.
        assert!(h.buckets.contains(&(512, 2)));
        let r = &m.quantiles[0].1;
        assert_eq!(r.count, 4);
        assert_eq!(r.samples, vec![7, 10, 40, 99]);
        // Merging encodes/decodes like any snapshot.
        assert_eq!(MetricsSnapshot::decode(&m.encode()), Ok(m.clone()));
        // Merge of one part is that part.
        assert_eq!(MetricsSnapshot::merged([&a]), a);
    }

    #[test]
    fn absorb_then_snapshot_equals_merged() {
        let a = sample();
        let reg = Registry::new();
        reg.counter("session.requests").add(5);
        reg.histogram("wal.fsync_ns").record(900);
        reg.reservoir("session.serve.update_tail_ns").record(7);
        reg.absorb(&a);
        let live = reg.snapshot();
        let merged = MetricsSnapshot::merged([&reg_before_absorb(), &a]);
        assert_eq!(live.counters, merged.counters);
        assert_eq!(live.histograms, merged.histograms);
        let (lr, mr) = (&live.quantiles[0].1, &merged.quantiles[0].1);
        assert_eq!(lr.count, mr.count);
        assert_eq!(lr.samples, mr.samples);

        fn reg_before_absorb() -> MetricsSnapshot {
            let reg = Registry::new();
            reg.counter("session.requests").add(5);
            reg.histogram("wal.fsync_ns").record(900);
            reg.reservoir("session.serve.update_tail_ns").record(7);
            reg.snapshot()
        }
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let text = sample().render_text();
        assert!(text.contains("# TYPE compview_session_requests_total counter"));
        assert!(text.contains("compview_session_requests_total 7"));
        assert!(text.contains("# TYPE compview_serve_queue_depth_hwm gauge"));
        assert!(text.contains("# TYPE compview_wal_fsync_ns histogram"));
        assert!(text.contains("compview_wal_fsync_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("compview_wal_fsync_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("compview_wal_fsync_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("compview_wal_fsync_ns_count 4"));
        assert!(text.contains("# TYPE compview_session_serve_update_tail_ns summary"));
        assert!(text.contains("compview_session_serve_update_tail_ns{quantile=\"0.5\"} 40"));
        assert!(text.contains("compview_session_serve_update_tail_ns{quantile=\"0.999\"} 99"));
        assert!(text.contains("compview_session_serve_update_tail_ns_count 3"));
    }
}
