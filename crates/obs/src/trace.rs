//! A fixed-capacity ring-buffer event tracer.
//!
//! [`Tracer::span`] records a start event and its guard records the
//! matching end event on drop; [`Tracer::instant`] records a single
//! point event.  Events carry a `&'static str` label (no allocation on
//! the hot path), a monotonic nanosecond timestamp measured from the
//! tracer's epoch, and one free `u64` argument (a byte count, a round
//! number, a cache verdict).
//!
//! The buffer is a preallocated ring guarded by a mutex: when full, new
//! events overwrite the oldest — tracing a long run keeps the *recent*
//! window, which is the one a per-request breakdown needs.  Tracing is
//! off until [`Tracer::enable`] is called; when off, recording is one
//! relaxed atomic load.  This deliberately is not a `tracing`-crate
//! subscriber: the workspace is offline/std-only, and a bounded ring of
//! POD events is all the flame-style breakdown requires (DESIGN.md §11).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened.
    Start,
    /// The most recently opened span with this label closed.
    End,
    /// A point event.
    Instant,
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static label, e.g. `"wal.fsync"`.
    pub label: &'static str,
    /// Start/end/point marker.
    pub kind: TraceKind,
    /// Nanoseconds since the tracer's epoch (monotonic clock).
    pub at_ns: u64,
    /// Free argument: bytes, rounds, hit/miss flag — label-dependent.
    pub arg: u64,
}

struct Ring {
    events: Vec<TraceEvent>,
    /// Next write position.
    head: usize,
    /// Capacity (0 until enabled).
    cap: usize,
    /// Total events ever recorded (so readers can tell how many were
    /// overwritten).
    recorded: u64,
}

struct TracerInner {
    enabled: AtomicBool,
    epoch: Instant,
    ring: Mutex<Ring>,
}

/// Handle onto a shared ring-buffer tracer; `None` inside means a
/// permanent no-op (from a disabled registry).  `Default` is the no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    pub(crate) fn new() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                epoch: Instant::now(),
                ring: Mutex::new(Ring {
                    events: Vec::new(),
                    head: 0,
                    cap: 0,
                    recorded: 0,
                }),
            })),
        }
    }

    /// A handle that never records.
    pub fn noop() -> Tracer {
        Tracer { inner: None }
    }

    /// Turn tracing on with room for `capacity` events (older events are
    /// overwritten once full).  Clears anything previously recorded.
    pub fn enable(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.ring.lock().expect("trace lock");
            ring.events.clear();
            ring.events.reserve_exact(capacity);
            ring.head = 0;
            ring.cap = capacity;
            ring.recorded = 0;
            inner.enabled.store(capacity > 0, Ordering::Release);
        }
    }

    /// Turn tracing off (recorded events stay readable).
    pub fn disable(&self) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(false, Ordering::Release);
        }
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.enabled.load(Ordering::Relaxed))
    }

    #[inline]
    fn push(&self, label: &'static str, kind: TraceKind, arg: u64) {
        let Some(inner) = &self.inner else { return };
        if !inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let at_ns = u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ev = TraceEvent {
            label,
            kind,
            at_ns,
            arg,
        };
        let mut ring = inner.ring.lock().expect("trace lock");
        if ring.cap == 0 {
            return;
        }
        let head = ring.head;
        if ring.events.len() < ring.cap {
            ring.events.push(ev);
        } else {
            ring.events[head] = ev;
        }
        ring.head = (head + 1) % ring.cap;
        ring.recorded += 1;
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, label: &'static str, arg: u64) {
        self.push(label, TraceKind::Instant, arg);
    }

    /// Open a span: records a start event now and the matching end event
    /// when the guard drops.  `arg` is attached to both.
    #[inline]
    pub fn span(&self, label: &'static str, arg: u64) -> SpanGuard {
        let live = self
            .inner
            .as_ref()
            .is_some_and(|i| i.enabled.load(Ordering::Relaxed));
        if live {
            self.push(label, TraceKind::Start, arg);
            SpanGuard {
                tracer: self.clone(),
                label,
                arg,
                live: true,
            }
        } else {
            SpanGuard {
                tracer: Tracer::noop(),
                label,
                arg,
                live: false,
            }
        }
    }

    /// The recorded events, oldest first, plus the count of events that
    /// were recorded in total (including any the ring overwrote).
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), 0);
        };
        let ring = inner.ring.lock().expect("trace lock");
        let mut out = Vec::with_capacity(ring.events.len());
        if ring.events.len() == ring.cap && ring.cap > 0 {
            out.extend_from_slice(&ring.events[ring.head..]);
            out.extend_from_slice(&ring.events[..ring.head]);
        } else {
            out.extend_from_slice(&ring.events);
        }
        (out, ring.recorded)
    }
}

/// Closes its span on drop (see [`Tracer::span`]).
pub struct SpanGuard {
    tracer: Tracer,
    label: &'static str,
    arg: u64,
    live: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            self.tracer.push(self.label, TraceKind::End, self.arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_record_in_order() {
        let t = Tracer::new();
        t.enable(16);
        {
            let _g = t.span("outer", 1);
            t.instant("tick", 42);
        }
        let (events, recorded) = t.snapshot();
        assert_eq!(recorded, 3);
        assert_eq!(
            events.iter().map(|e| (e.label, e.kind)).collect::<Vec<_>>(),
            vec![
                ("outer", TraceKind::Start),
                ("tick", TraceKind::Instant),
                ("outer", TraceKind::End),
            ]
        );
        // Monotonic timestamps.
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(events[1].arg, 42);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new();
        t.enable(4);
        for i in 0..10u64 {
            t.instant("e", i);
        }
        let (events, recorded) = t.snapshot();
        assert_eq!(recorded, 10);
        assert_eq!(
            events.iter().map(|e| e.arg).collect::<Vec<_>>(),
            [6, 7, 8, 9]
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::new();
        {
            let _g = t.span("s", 0);
            t.instant("i", 0);
        }
        assert_eq!(t.snapshot().1, 0);
        t.enable(8);
        t.instant("on", 0);
        t.disable();
        t.instant("off", 0);
        let (events, _) = t.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "on");

        let noop = Tracer::noop();
        noop.enable(8);
        noop.instant("x", 0);
        assert!(!noop.is_enabled());
        assert_eq!(noop.snapshot().0.len(), 0);
    }

    #[test]
    fn span_guard_outlives_disable() {
        let t = Tracer::new();
        t.enable(8);
        let g = t.span("s", 0);
        t.disable();
        drop(g); // end event suppressed because tracing is off
        let (events, _) = t.snapshot();
        assert_eq!(events.len(), 1);
    }
}
