//! Exact tail-latency quantiles via reservoir sampling.
//!
//! Log-bucketed histograms ([`crate::Histogram`]) answer "which order of
//! magnitude" with ~2× relative error — good enough for dashboards, too
//! coarse for tail-latency work where p99 vs p999 is the whole question.
//! A [`Reservoir`] keeps an Algorithm-R sample of up to
//! [`RESERVOIR_CAP`] raw values: while fewer than that many values have
//! been recorded the quantiles are *exact*; beyond it each recorded
//! value has the same probability of being in the sample, so the
//! quantile estimate is unbiased with error shrinking as `1/√cap`.
//!
//! Recording takes a `Mutex`, so a reservoir is meant for request-grained
//! paths (one `record` per served request), not for inner loops — attach
//! it next to a histogram on the hottest request variant, not everywhere.
//! The replacement PRNG is a fixed-seed xorshift so two runs that record
//! the same value stream produce the same sample: snapshots stay
//! reproducible for the determinism tests.

use std::sync::{Arc, Mutex};

/// Maximum number of raw values a reservoir retains.  Below this count
/// the sampled quantiles are exact.
pub const RESERVOIR_CAP: usize = 512;

#[derive(Debug)]
struct State {
    count: u64,
    samples: Vec<u64>,
    rng: u64,
}

pub(crate) struct ReservoirCore {
    inner: Mutex<State>,
}

impl Default for ReservoirCore {
    fn default() -> ReservoirCore {
        ReservoirCore {
            inner: Mutex::new(State {
                count: 0,
                samples: Vec::new(),
                // Fixed seed: reservoirs are reproducible per value
                // stream (see module docs).
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }
}

fn xorshift(x: &mut u64) -> u64 {
    let mut s = *x;
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    *x = s;
    s
}

impl ReservoirCore {
    /// Algorithm R: the first [`RESERVOIR_CAP`] values are kept; value
    /// number `n > cap` replaces a random slot with probability `cap/n`.
    pub(crate) fn record(&self, v: u64) {
        let mut st = self.inner.lock().expect("obs lock");
        st.count += 1;
        if st.samples.len() < RESERVOIR_CAP {
            st.samples.push(v);
        } else {
            let j = (xorshift(&mut st.rng) % st.count) as usize;
            if j < RESERVOIR_CAP {
                st.samples[j] = v;
            }
        }
    }

    pub(crate) fn snapshot(&self) -> ReservoirSnapshot {
        let st = self.inner.lock().expect("obs lock");
        let mut samples = st.samples.clone();
        samples.sort_unstable();
        ReservoirSnapshot {
            count: st.count,
            samples,
        }
    }

    /// Fold a frozen snapshot's samples back into the live reservoir —
    /// the registry-merge path ([`crate::Registry::absorb`]).  Each
    /// absorbed sample passes through the same Algorithm-R acceptance as
    /// a live recording, with the count advanced first so the sample
    /// stays an (approximately) uniform draw over both streams.
    pub(crate) fn absorb(&self, snap: &ReservoirSnapshot) {
        let mut st = self.inner.lock().expect("obs lock");
        // Values beyond the retained samples are unknown; only their
        // count survives.  Advance the count by the unsampled remainder
        // so absorb(count) is exact even when the source overflowed.
        st.count += snap.count.saturating_sub(snap.samples.len() as u64);
        for &v in &snap.samples {
            st.count += 1;
            if st.samples.len() < RESERVOIR_CAP {
                st.samples.push(v);
            } else {
                let j = (xorshift(&mut st.rng) % st.count) as usize;
                if j < RESERVOIR_CAP {
                    st.samples[j] = v;
                }
            }
        }
    }
}

/// A handle onto a quantile reservoir; `None` inside means a no-op
/// handle, same cost model as [`crate::Counter`].
#[derive(Clone, Default)]
pub struct Reservoir(Option<Arc<ReservoirCore>>);

impl Reservoir {
    /// A handle that records nothing.
    pub fn noop() -> Reservoir {
        Reservoir(None)
    }

    pub(crate) fn from_core(core: Arc<ReservoirCore>) -> Reservoir {
        Reservoir(Some(core))
    }

    /// Record one value (takes the reservoir mutex — request-grained
    /// paths only, see module docs).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// A point-in-time copy of the sample, sorted.
    pub fn snapshot(&self) -> ReservoirSnapshot {
        self.0
            .as_ref()
            .map(|core| core.snapshot())
            .unwrap_or_default()
    }
}

/// A frozen reservoir: total recorded count plus the retained sample in
/// nondecreasing order.  When `count == samples.len()` the quantiles are
/// exact; otherwise they are an unbiased estimate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReservoirSnapshot {
    /// Total number of recorded values (≥ `samples.len()`).
    pub count: u64,
    /// The retained sample, nondecreasing.
    pub samples: Vec<u64>,
}

impl ReservoirSnapshot {
    /// Whether the sample holds every recorded value (quantiles exact).
    pub fn is_exact(&self) -> bool {
        self.count == self.samples.len() as u64
    }

    /// Nearest-rank quantile of the sample (`0.0 ≤ q ≤ 1.0`); 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.samples.len();
        if n == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Merge another snapshot into this one: counts add, samples are
    /// merge-sorted.  Merging two exact snapshots stays exact — the
    /// cross-shard metrics aggregation leans on this.
    pub fn merge(&mut self, other: &ReservoirSnapshot) {
        self.count += other.count;
        let mut merged = Vec::with_capacity(self.samples.len() + other.samples.len());
        let (mut a, mut b) = (
            self.samples.iter().copied().peekable(),
            other.samples.iter().copied().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&y)) => {
                    merged.push(y);
                    b.next();
                }
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        merged.push(x);
                        a.next();
                    } else {
                        merged.push(y);
                        b.next();
                    }
                }
            }
        }
        self.samples = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let reg = crate::Registry::new();
        let r = reg.reservoir("t");
        for v in [30u64, 10, 20, 20] {
            r.record(v);
        }
        let s = r.snapshot();
        assert!(s.is_exact());
        assert_eq!(s.samples, vec![10, 20, 20, 30]);
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(0.5), 20);
        assert_eq!(s.quantile(1.0), 30);
        assert_eq!(ReservoirSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn sampling_beyond_capacity_is_bounded_and_plausible() {
        let reg = crate::Registry::new();
        let r = reg.reservoir("big");
        for v in 0..10_000u64 {
            r.record(v);
        }
        let s = r.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.samples.len(), RESERVOIR_CAP);
        assert!(!s.is_exact());
        // The sampled median of a uniform 0..10000 stream lands near
        // 5000 (±~20% with cap 512 is generous).
        let med = s.quantile(0.5);
        assert!((3000..7000).contains(&med), "median {med} implausible");
        // Deterministic: same stream, same sample.
        let r2 = reg.reservoir("big2");
        for v in 0..10_000u64 {
            r2.record(v);
        }
        assert_eq!(s, r2.snapshot());
    }

    #[test]
    fn merge_of_exact_snapshots_is_exact() {
        let reg = crate::Registry::new();
        let (a, b) = (reg.reservoir("a"), reg.reservoir("b"));
        for v in [5u64, 1, 9] {
            a.record(v);
        }
        for v in [2u64, 9] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert!(m.is_exact());
        assert_eq!(m.samples, vec![1, 2, 5, 9, 9]);
        assert_eq!(m.count, 5);
    }

    #[test]
    fn absorb_preserves_count_and_bounds_sample() {
        let reg = crate::Registry::new();
        let live = reg.reservoir("live");
        for v in [7u64, 3] {
            live.record(v);
        }
        let mut frozen = ReservoirSnapshot {
            count: 4,
            samples: vec![1, 2, 8, 9],
        };
        reg.absorb(&{
            let mut snap = reg.snapshot();
            snap.quantiles = vec![("live".into(), frozen.clone())];
            snap.counters.clear();
            snap.gauges.clear();
            snap.histograms.clear();
            snap
        });
        let s = reg.reservoir("live").snapshot();
        assert_eq!(s.count, 2 + 4);
        assert_eq!(s.samples, vec![1, 2, 3, 7, 8, 9]);
        // Absorbing an overflowed snapshot keeps the unsampled remainder
        // in the count.
        frozen.count = 1000;
        let core = ReservoirCore::default();
        core.absorb(&frozen);
        let s = core.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.samples.len(), 4);
    }
}
