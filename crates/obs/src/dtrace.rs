//! Distributed tracing: causally linked spans that cross process
//! boundaries, plus the codec'd [`TraceSnapshot`] the `Trace` wire verb
//! ships.
//!
//! The local [`crate::Tracer`] is a per-process ring buffer with
//! `&'static str` labels — cheap, but it stops at the process boundary.
//! This module adds the cross-node half: a [`TraceCtx`]
//! (`trace_id`, `parent_span`) travels on the wire, and every hop that
//! holds a configured [`DistTracer`] records owned [`SpanRecord`]s into
//! a drainable buffer.  A cross-process trace is assembled by draining
//! each node's buffer and joining spans on `trace_id` / `parent_span`.
//!
//! ## Head sampling
//!
//! Sampling is decided once, deterministically, from the `trace_id`
//! alone: a tracer configured with `sample_one_in = N` records a trace
//! iff `trace_id % N == 0` (`0` = tracing off, `1` = always).  Because
//! every hop applies the same rule to the same id, a request is either
//! traced at *every* hop or at none — no half-assembled trees.  An
//! unsampled request costs one branch per instrumentation point.
//!
//! ## Codec
//!
//! [`TraceSnapshot::encode`] follows the same discipline as
//! [`crate::MetricsSnapshot`]: a version byte, little-endian integers,
//! length-prefixed UTF-8 strings, and a CRC-32 trailer over everything
//! before it.  Corruption is rejected, never misread.

use crate::crc32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Spans buffered per tracer before new ones are dropped (a drain
/// resets the budget).  Bounds memory under always-on sampling.
pub const DTRACE_CAP: usize = 1 << 16;

/// The trace context a request carries across the wire: which trace it
/// belongs to and which span caused it.  16 bytes, `Copy`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Identifies the end-to-end trace; every hop keys sampling off it.
    pub trace_id: u64,
    /// The span id of the causing hop (0 = root: no parent).
    pub parent_span: u64,
}

/// One recorded span: a labelled `[start, start + dur]` interval on one
/// node, causally linked to its parent by `parent_span`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's own id (unique within a trace; never 0).
    pub span_id: u64,
    /// The causing span's id (0 = root).
    pub parent_span: u64,
    /// What the span covers (`"wal.append"`, `"repl.apply"`, …).
    pub label: String,
    /// Wall-clock start, nanoseconds since the Unix epoch.  Comparable
    /// within a node; across nodes it is advisory (clocks may skew) —
    /// tree structure comes from `parent_span`, not timestamps.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// Process-wide counter feeding span- and trace-id generation: ids stay
/// unique across every tracer in the process (shard registries each
/// hold their own tracer but share this counter).
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| wall_ns() | 1)
}

struct DtInner {
    node: Mutex<String>,
    node_hash: AtomicU64,
    sample_one_in: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A drainable buffer of distributed spans plus this node's sampling
/// configuration.  Cloning shares the buffer.  Off (recording nothing)
/// until [`DistTracer::configure`] sets a non-zero sampling rate.
#[derive(Clone, Default)]
pub struct DistTracer {
    inner: Option<Arc<DtInner>>,
}

impl DistTracer {
    /// A tracer that records nothing and cannot be configured.
    pub fn noop() -> DistTracer {
        DistTracer { inner: None }
    }

    /// A fresh, unconfigured tracer (sampling off until
    /// [`DistTracer::configure`]).
    pub fn new() -> DistTracer {
        DistTracer {
            inner: Some(Arc::new(DtInner {
                node: Mutex::new(String::new()),
                node_hash: AtomicU64::new(0),
                sample_one_in: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Name this node (reported in [`TraceSnapshot::node`]) and set the
    /// head-sampling rate: record a trace iff `trace_id % n == 0`, with
    /// `0` = off and `1` = always.  Idempotent; callable any time.
    pub fn configure(&self, node: &str, sample_one_in: u64) {
        if let Some(inner) = &self.inner {
            *inner.node.lock().expect("dtrace lock") = node.to_owned();
            inner
                .node_hash
                .store(fnv1a64(node.as_bytes()), Ordering::Relaxed);
            inner.sample_one_in.store(sample_one_in, Ordering::Relaxed);
        }
    }

    /// The configured node name (empty if unconfigured or no-op).
    pub fn node(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => inner.node.lock().expect("dtrace lock").clone(),
        }
    }

    /// The configured 1-in-N sampling rate (0 = off).
    pub fn sample_one_in(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.sample_one_in.load(Ordering::Relaxed))
    }

    /// Whether this tracer records anything at all.
    pub fn is_on(&self) -> bool {
        self.sample_one_in() != 0
    }

    /// The deterministic head-sampling decision for `trace_id` under
    /// this node's configuration — the same at every hop that shares
    /// the rate.
    pub fn sampled(&self, trace_id: u64) -> bool {
        match self.sample_one_in() {
            0 => false,
            n => trace_id.is_multiple_of(n),
        }
    }

    /// A fresh trace id, roughly uniform (so 1-in-N sampling admits
    /// about 1/N of them).  Unique within the process; cross-process
    /// uniqueness comes from the wall-clock seed.
    pub fn new_trace_id(&self) -> u64 {
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        process_seed() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// A fresh trace id guaranteed to be sampled under the current
    /// configuration (used by demos and tests to force a trace
    /// through).  Returns 0 when sampling is off.
    pub fn sampled_trace_id(&self) -> u64 {
        match self.sample_one_in() {
            0 => 0,
            n => {
                let id = self.new_trace_id();
                id - id % n
            }
        }
    }

    fn next_span_id(&self) -> u64 {
        let hash = self
            .inner
            .as_ref()
            .map_or(0, |i| i.node_hash.load(Ordering::Relaxed));
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        let id = hash ^ process_seed() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if id == 0 {
            1
        } else {
            id
        }
    }

    fn push(&self, rec: SpanRecord) {
        if let Some(inner) = &self.inner {
            let mut spans = inner.spans.lock().expect("dtrace lock");
            if spans.len() < DTRACE_CAP {
                spans.push(rec);
            }
        }
    }

    /// Record a completed span with an explicit start and duration
    /// (used where the interval was measured before the tracer is
    /// consulted, e.g. shard-queue wait).  Returns the new span's id,
    /// or 0 when the trace is not sampled.
    pub fn record(&self, ctx: TraceCtx, label: &str, start_ns: u64, dur_ns: u64) -> u64 {
        if !self.sampled(ctx.trace_id) {
            return 0;
        }
        let span_id = self.next_span_id();
        self.push(SpanRecord {
            trace_id: ctx.trace_id,
            span_id,
            parent_span: ctx.parent_span,
            label: label.to_owned(),
            start_ns,
            dur_ns,
        });
        span_id
    }

    /// Record an instant (zero-duration) event.  Returns the span id,
    /// or 0 when not sampled.
    pub fn instant(&self, ctx: TraceCtx, label: &str) -> u64 {
        self.record(ctx, label, wall_ns(), 0)
    }

    /// Open a span under `ctx`; the returned guard records it on drop.
    /// A no-op guard (id 0, `ctx()` = `None`) when the trace is not
    /// sampled — the `Instant::now()` is skipped too.
    pub fn span(&self, ctx: TraceCtx, label: &str) -> DistSpan {
        if !self.sampled(ctx.trace_id) {
            return DistSpan {
                tracer: DistTracer::noop(),
                trace_id: 0,
                span_id: 0,
                parent_span: 0,
                label: String::new(),
                start_ns: 0,
                started: None,
            };
        }
        DistSpan {
            tracer: self.clone(),
            trace_id: ctx.trace_id,
            span_id: self.next_span_id(),
            parent_span: ctx.parent_span,
            label: label.to_owned(),
            start_ns: wall_ns(),
            started: Some(Instant::now()),
        }
    }

    /// Drain the span buffer into a snapshot (the buffer empties — the
    /// `Trace` wire verb is destructive by design, like a log tail).
    pub fn drain(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot::default(),
            Some(inner) => {
                let spans = std::mem::take(&mut *inner.spans.lock().expect("dtrace lock"));
                TraceSnapshot {
                    node: self.node(),
                    spans,
                }
            }
        }
    }
}

/// Guard for an open distributed span: records the [`SpanRecord`] on
/// drop.  [`DistSpan::ctx`] is the context downstream work should
/// carry so its spans parent here.
pub struct DistSpan {
    tracer: DistTracer,
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    label: String,
    start_ns: u64,
    started: Option<Instant>,
}

impl DistSpan {
    /// This span's id (0 on a no-op guard).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// The context for work caused by this span (`None` on a no-op
    /// guard, i.e. when the trace is not sampled).
    pub fn ctx(&self) -> Option<TraceCtx> {
        if self.span_id == 0 {
            None
        } else {
            Some(TraceCtx {
                trace_id: self.trace_id,
                parent_span: self.span_id,
            })
        }
    }
}

impl Drop for DistSpan {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let dur = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tracer.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span: self.parent_span,
            label: std::mem::take(&mut self.label),
            start_ns: self.start_ns,
            dur_ns: dur,
        });
    }
}

/// One node's drained span buffer, ready for the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The reporting node's name (its serving address, by convention).
    pub node: String,
    /// The drained spans, in recording order.
    pub spans: Vec<SpanRecord>,
}

/// Codec format version.
const VERSION: u8 = 1;

/// Why a trace snapshot failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// Shorter than the minimum frame (version byte + CRC trailer).
    TooShort,
    /// The CRC-32 trailer does not match the body.
    BadCrc { want: u32, got: u32 },
    /// Unknown format version.
    BadVersion(u8),
    /// The body ended early or a length prefix overran it.
    Eof { at: usize },
    /// A string was not valid UTF-8.
    BadUtf8 { at: usize },
    /// A span carried id 0 (reserved for "no parent").
    BadSpanId { at: usize },
    /// Bytes remained after the structure was fully decoded.
    TrailingBytes { at: usize },
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::TooShort => write!(f, "trace snapshot too short"),
            DecodeTraceError::BadCrc { want, got } => {
                write!(
                    f,
                    "trace snapshot crc mismatch: want {want:#x}, got {got:#x}"
                )
            }
            DecodeTraceError::BadVersion(v) => write!(f, "unknown trace version {v}"),
            DecodeTraceError::Eof { at } => write!(f, "trace snapshot truncated at {at}"),
            DecodeTraceError::BadUtf8 { at } => write!(f, "bad trace string utf-8 at {at}"),
            DecodeTraceError::BadSpanId { at } => write!(f, "span id 0 at {at}"),
            DecodeTraceError::TrailingBytes { at } => {
                write!(f, "trailing bytes after trace snapshot at {at}")
            }
        }
    }
}

impl std::error::Error for DecodeTraceError {}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string fits u32"));
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeTraceError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeTraceError::Eof { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeTraceError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeTraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeTraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, DecodeTraceError> {
        let at = self.pos;
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(DecodeTraceError::Eof { at });
        }
        std::str::from_utf8(self.take(len)?)
            .map(str::to_owned)
            .map_err(|_| DecodeTraceError::BadUtf8 { at })
    }

    /// A count that must leave at least `min_bytes_per_item` per item.
    fn count(&mut self, min_bytes_per_item: usize) -> Result<usize, DecodeTraceError> {
        let at = self.pos;
        let n = self.u32()? as u64;
        let cap = ((self.buf.len() - self.pos) / min_bytes_per_item.max(1)) as u64;
        if n > cap {
            return Err(DecodeTraceError::Eof { at });
        }
        Ok(n as usize)
    }
}

impl TraceSnapshot {
    /// Encode to bytes: version, node name, spans, CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(VERSION);
        put_str(&mut out, &self.node);
        put_u32(&mut out, u32::try_from(self.spans.len()).expect("fits"));
        for s in &self.spans {
            put_u64(&mut out, s.trace_id);
            put_u64(&mut out, s.span_id);
            put_u64(&mut out, s.parent_span);
            put_str(&mut out, &s.label);
            put_u64(&mut out, s.start_ns);
            put_u64(&mut out, s.dur_ns);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode bytes produced by [`TraceSnapshot::encode`], rejecting any
    /// corruption (same all-or-nothing discipline as the metrics codec).
    pub fn decode(bytes: &[u8]) -> Result<TraceSnapshot, DecodeTraceError> {
        if bytes.len() < 5 {
            return Err(DecodeTraceError::TooShort);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let got = u32::from_le_bytes(trailer.try_into().expect("4"));
        let want = crc32(body);
        if want != got {
            return Err(DecodeTraceError::BadCrc { want, got });
        }
        let mut r = Reader { buf: body, pos: 0 };
        let version = r.u8()?;
        if version != VERSION {
            return Err(DecodeTraceError::BadVersion(version));
        }
        let node = r.str()?;
        let n = r.count(8 + 8 + 8 + 4 + 8 + 8)?;
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos;
            let trace_id = r.u64()?;
            let span_id = r.u64()?;
            let parent_span = r.u64()?;
            if span_id == 0 {
                return Err(DecodeTraceError::BadSpanId { at });
            }
            let label = r.str()?;
            let start_ns = r.u64()?;
            let dur_ns = r.u64()?;
            spans.push(SpanRecord {
                trace_id,
                span_id,
                parent_span,
                label,
                start_ns,
                dur_ns,
            });
        }
        if r.pos != body.len() {
            return Err(DecodeTraceError::TrailingBytes { at: r.pos });
        }
        Ok(TraceSnapshot { node, spans })
    }

    /// Merge several snapshots from the *same node* (per-shard tracers
    /// behind one server) into one, spans sorted by
    /// `(trace_id, start_ns, span_id)` for a deterministic content
    /// ordering.  The node name is taken from the first non-empty part.
    pub fn merged<'a, I>(parts: I) -> TraceSnapshot
    where
        I: IntoIterator<Item = &'a TraceSnapshot>,
    {
        let mut node = String::new();
        let mut spans = Vec::new();
        for part in parts {
            if node.is_empty() {
                node = part.node.clone();
            }
            spans.extend(part.spans.iter().cloned());
        }
        spans.sort_by(|a, b| {
            (a.trace_id, a.start_ns, a.span_id).cmp(&(b.trace_id, b.start_ns, b.span_id))
        });
        TraceSnapshot { node, spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            node: "127.0.0.1:4100".to_owned(),
            spans: vec![
                SpanRecord {
                    trace_id: 64,
                    span_id: 0x1111,
                    parent_span: 0,
                    label: "client.send".to_owned(),
                    start_ns: 1_000,
                    dur_ns: 500,
                },
                SpanRecord {
                    trace_id: 64,
                    span_id: 0x2222,
                    parent_span: 0x1111,
                    label: "session.dispatch".to_owned(),
                    start_ns: 1_100,
                    dur_ns: 300,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample();
        assert_eq!(TraceSnapshot::decode(&snap.encode()), Ok(snap));
        let empty = TraceSnapshot::default();
        assert_eq!(TraceSnapshot::decode(&empty.encode()), Ok(empty));
    }

    #[test]
    fn every_truncation_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                TraceSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_bit_flip_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    TraceSnapshot::decode(&corrupt).is_err(),
                    "bit flip at byte {i} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn structural_corruption_rejected_even_with_fresh_crc() {
        let reseal = |mut body: Vec<u8>| {
            body.truncate(body.len() - 4);
            let crc = crc32(&body);
            body.extend_from_slice(&crc.to_le_bytes());
            body
        };
        // Bad version byte.
        let mut bytes = sample().encode();
        bytes[0] = 9;
        assert!(matches!(
            TraceSnapshot::decode(&reseal(bytes)),
            Err(DecodeTraceError::BadVersion(9))
        ));
        // Span id 0 is reserved for "no parent".
        let mut snap = sample();
        snap.spans[1].span_id = 0;
        assert!(matches!(
            TraceSnapshot::decode(&reseal(snap.encode())),
            Err(DecodeTraceError::BadSpanId { .. })
        ));
        // Trailing garbage inside the CRC'd body.
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 4);
        bytes.push(0);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            TraceSnapshot::decode(&bytes),
            Err(DecodeTraceError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn sampling_is_deterministic_and_keyed_off_trace_id() {
        let t = DistTracer::new();
        assert!(!t.is_on());
        assert!(!t.sampled(0));
        t.configure("node-a", 64);
        assert!(t.sampled(0));
        assert!(t.sampled(128));
        assert!(!t.sampled(1));
        assert!(!t.sampled(63));
        // Always-on and off.
        t.configure("node-a", 1);
        assert!(t.sampled(17));
        t.configure("node-a", 0);
        assert!(!t.sampled(17));
        // A guaranteed-sampled id respects the configured rate.
        t.configure("node-a", 64);
        for _ in 0..32 {
            let id = t.sampled_trace_id();
            assert!(t.sampled(id));
        }
    }

    #[test]
    fn spans_record_and_link_causally() {
        let t = DistTracer::new();
        t.configure("127.0.0.1:9", 1);
        let root = TraceCtx {
            trace_id: t.sampled_trace_id(),
            parent_span: 0,
        };
        let outer = t.span(root, "client.send");
        let outer_id = outer.id();
        assert_ne!(outer_id, 0);
        let child_ctx = outer.ctx().expect("sampled");
        assert_eq!(child_ctx.trace_id, root.trace_id);
        assert_eq!(child_ctx.parent_span, outer_id);
        let inner_id = t.record(child_ctx, "wal.append", 123, 45);
        assert_ne!(inner_id, 0);
        drop(outer);
        let snap = t.drain();
        assert_eq!(snap.node, "127.0.0.1:9");
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.label == "wal.append").unwrap();
        let outer = snap
            .spans
            .iter()
            .find(|s| s.label == "client.send")
            .unwrap();
        assert_eq!(inner.parent_span, outer.span_id);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(outer.parent_span, 0);
        // Drain emptied the buffer.
        assert!(t.drain().spans.is_empty());
        // Round-trips through the codec.
        let resnap = TraceSnapshot {
            node: snap.node.clone(),
            spans: snap.spans.clone(),
        };
        assert_eq!(TraceSnapshot::decode(&resnap.encode()), Ok(resnap));
    }

    #[test]
    fn unsampled_traces_cost_nothing_and_record_nothing() {
        let t = DistTracer::new();
        t.configure("n", 64);
        let ctx = TraceCtx {
            trace_id: 63,
            parent_span: 0,
        };
        let span = t.span(ctx, "x");
        assert_eq!(span.id(), 0);
        assert!(span.ctx().is_none());
        drop(span);
        assert_eq!(t.record(ctx, "y", 0, 0), 0);
        assert!(t.drain().spans.is_empty());
        // No-op tracer accepts everything silently.
        let noop = DistTracer::noop();
        noop.configure("n", 1);
        assert!(!noop.is_on());
        assert_eq!(noop.span(ctx, "z").id(), 0);
        assert!(noop.drain().spans.is_empty());
    }

    #[test]
    fn buffer_caps_at_dtrace_cap() {
        let t = DistTracer::new();
        t.configure("n", 1);
        let ctx = TraceCtx {
            trace_id: 0,
            parent_span: 0,
        };
        for _ in 0..(DTRACE_CAP + 10) {
            t.instant(ctx, "e");
        }
        assert_eq!(t.drain().spans.len(), DTRACE_CAP);
        // Draining resets the budget.
        t.instant(ctx, "e");
        assert_eq!(t.drain().spans.len(), 1);
    }

    #[test]
    fn merged_sorts_spans_deterministically() {
        let a = TraceSnapshot {
            node: "n1".to_owned(),
            spans: vec![SpanRecord {
                trace_id: 2,
                span_id: 5,
                parent_span: 0,
                label: "b".to_owned(),
                start_ns: 50,
                dur_ns: 1,
            }],
        };
        let b = TraceSnapshot {
            node: "n1".to_owned(),
            spans: vec![SpanRecord {
                trace_id: 1,
                span_id: 9,
                parent_span: 0,
                label: "a".to_owned(),
                start_ns: 99,
                dur_ns: 1,
            }],
        };
        let m = TraceSnapshot::merged([&a, &b]);
        assert_eq!(m.node, "n1");
        assert_eq!(m.spans[0].trace_id, 1);
        assert_eq!(m.spans[1].trace_id, 2);
    }
}
