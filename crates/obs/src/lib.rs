//! # compview-obs
//!
//! Runtime observability for the compview stack: lock-free counters,
//! gauges, and log-bucketed latency histograms behind a [`Registry`],
//! plus a fixed-capacity ring-buffer [`Tracer`] for span-style
//! per-request breakdowns.
//!
//! The crate is std-only and dependency-free so every other crate in the
//! workspace (including `compview-logic` and `compview-core`, which sit
//! below the session layer) can depend on it without cycles.
//!
//! ## Cost model
//!
//! Every instrument handle ([`Counter`], [`Gauge`], [`Histogram`]) is an
//! `Option<Arc<…>>`:
//!
//! * registered on an **enabled** registry, a hit is one or two relaxed
//!   atomic RMW operations — no locks, safe from any thread;
//! * obtained from a **disabled** registry ([`Registry::disabled`]), the
//!   handle is `None` and a hit is a branch on a niche-optimised enum —
//!   the compiler sees through it and the instrumented code costs
//!   near-nothing.
//!
//! Timing helpers follow the same shape: [`Histogram::start`] returns
//! `None` on a no-op handle so the `Instant::now()` call itself is
//! skipped, not just the recording.
//!
//! ## Determinism
//!
//! Snapshots ([`Registry::snapshot`]) list instruments in sorted name
//! order, and instrumented code registers every instrument it may touch
//! eagerly at construction, so the *content ordering* of a snapshot is
//! byte-identical at every thread count.  Only the recorded values (which
//! are timings and scheduling-dependent tallies) vary.

mod dtrace;
mod hist;
mod reservoir;
mod snapshot;
mod trace;

pub use dtrace::{
    DecodeTraceError, DistSpan, DistTracer, SpanRecord, TraceCtx, TraceSnapshot, DTRACE_CAP,
};
pub use hist::{bucket_floor, bucket_index, Histogram, HistogramSnapshot};
pub use reservoir::{Reservoir, ReservoirSnapshot, RESERVOIR_CAP};
pub use snapshot::{DecodeMetricsError, MetricsSnapshot};
pub use trace::{SpanGuard, TraceEvent, TraceKind, Tracer};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// CRC-32 (IEEE, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// This is the same checksum the WAL and the wire protocol use; it lives
/// here (the bottom of the dependency stack) so every layer shares one
/// implementation.  CRC-32 detects *all* single-bit errors and all burst
/// errors up to 32 bits, which is what the metrics codec leans on to
/// reject corrupt snapshots.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nothing.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 on a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins instantaneous value (queue depths, log sizes).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that records nothing.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the value to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn raise(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 on a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<hist::HistCore>>>,
    reservoirs: Mutex<BTreeMap<String, Arc<reservoir::ReservoirCore>>>,
    tracer: Tracer,
    dtracer: DistTracer,
}

/// The instrument directory: hands out [`Counter`]/[`Gauge`]/
/// [`Histogram`] handles by name and snapshots them all in sorted
/// order.
///
/// Cloning a `Registry` clones a handle to the same directory.
/// Registration is idempotent: asking twice for the same name returns
/// handles onto the same underlying cell, which is also how several
/// sessions of one service share aggregate metrics without unbounded
/// per-session cardinality.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                reservoirs: Mutex::new(BTreeMap::new()),
                tracer: Tracer::new(),
                dtracer: DistTracer::new(),
            })),
        }
    }

    /// A registry whose every handle is a no-op and whose snapshot is
    /// empty.  Instrumented code paths cost a branch.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter(None),
            Some(inner) => {
                let mut map = inner.counters.lock().expect("obs lock");
                Counter(Some(Arc::clone(map.entry(name.to_owned()).or_default())))
            }
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge(None),
            Some(inner) => {
                let mut map = inner.gauges.lock().expect("obs lock");
                Gauge(Some(Arc::clone(map.entry(name.to_owned()).or_default())))
            }
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::noop(),
            Some(inner) => {
                let mut map = inner.histograms.lock().expect("obs lock");
                Histogram::from_core(Arc::clone(map.entry(name.to_owned()).or_default()))
            }
        }
    }

    /// Register (or look up) a quantile reservoir (see
    /// [`reservoir`](Reservoir) docs for the cost model: a mutex per
    /// record, so request-grained paths only).
    pub fn reservoir(&self, name: &str) -> Reservoir {
        match &self.inner {
            None => Reservoir::noop(),
            Some(inner) => {
                let mut map = inner.reservoirs.lock().expect("obs lock");
                Reservoir::from_core(Arc::clone(map.entry(name.to_owned()).or_default()))
            }
        }
    }

    /// The registry's event tracer (a no-op tracer on a disabled
    /// registry).  Tracing is off until [`Tracer::enable`] is called.
    pub fn tracer(&self) -> Tracer {
        match &self.inner {
            None => Tracer::noop(),
            Some(inner) => inner.tracer.clone(),
        }
    }

    /// The registry's distributed tracer (a no-op tracer on a disabled
    /// registry).  Off until [`DistTracer::configure`] sets a non-zero
    /// sampling rate; see the [`dtrace`](DistTracer) docs.
    pub fn dtracer(&self) -> DistTracer {
        match &self.inner {
            None => DistTracer::noop(),
            Some(inner) => inner.dtracer.clone(),
        }
    }

    /// Snapshot every registered instrument, sorted by name within each
    /// kind.  The *set and order of names* is deterministic once all
    /// instruments are registered; the values are whatever has been
    /// recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let quantiles = inner
            .reservoirs
            .lock()
            .expect("obs lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            quantiles,
        }
    }

    /// Fold a frozen snapshot's values into this registry's live cells:
    /// counters add, gauges raise (high-water-mark semantics),
    /// histogram buckets add, reservoir samples re-enter Algorithm-R
    /// acceptance.  Instruments named in the snapshot but not yet
    /// registered here are registered — so absorbing a shard registry's
    /// snapshot preserves its full name set.  This is how
    /// `Service::merge` folds per-shard registries back into one after
    /// a sharded server shuts down.  No-op on a disabled registry.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        if self.inner.is_none() {
            return;
        }
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).raise(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name).absorb(h);
        }
        for (name, r) in &snap.quantiles {
            let Some(inner) = &self.inner else { return };
            let core = {
                let mut map = inner.reservoirs.lock().expect("obs lock");
                Arc::clone(map.entry(name.clone()).or_default())
            };
            core.absorb(r);
        }
    }

    /// Render the current snapshot in Prometheus text exposition format
    /// (see [`MetricsSnapshot::render_text`]).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Same vectors the WAL asserts, so the shared implementation is
        // pinned from both ends.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"compview"), crc32(b"compview"));
        assert_ne!(crc32(b"compview"), crc32(b"compvieW"));
    }

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter("a.hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration: same cell.
        assert_eq!(reg.counter("a.hits").get(), 5);

        let g = reg.gauge("a.depth");
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7);
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        c.inc();
        g.set(9);
        h.record(1234);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert!(h.start().is_none());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_orders_names() {
        let reg = Registry::new();
        // Register out of order; snapshot must sort.
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.gauge("m.middle").set(3);
        reg.histogram("b.lat").record(10);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.counters[0].1, 2);
        assert_eq!(snap.gauges[0].0, "m.middle");
        assert_eq!(snap.histograms[0].0, "b.lat");
    }

    #[test]
    fn registry_handles_are_shared_across_clones() {
        let reg = Registry::new();
        let c1 = reg.counter("shared");
        let reg2 = reg.clone();
        let c2 = reg2.counter("shared");
        c1.inc();
        c2.add(2);
        assert_eq!(reg.counter("shared").get(), 3);
    }

    #[test]
    fn concurrent_recording_is_lock_free_and_lossless() {
        let reg = Registry::new();
        let c = reg.counter("par.count");
        let h = reg.histogram("par.hist");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }
}
