//! The wire format: CRC-checksummed, length-prefixed frames over the
//! canonical binary codec of `compview_session::wal`.
//!
//! ```text
//! connection := handshake frame*     handshake := "CVRPC1", sent by BOTH
//!                                                 sides before anything
//! frame      := len crc payload      len  := u32 LE, payload byte count
//!                                    crc  := u32 LE, CRC-32 (IEEE) of
//!                                            the payload bytes
//! ```
//!
//! Request payloads are `str session ++ wal::encode_request` bytes;
//! response payloads are `wal::encode_result` bytes — the *same* codec
//! the write-ahead log uses, so a request's wire form and its log-record
//! form are byte-identical.  Every frame is gated by its checksum and a
//! hard size limit ([`MAX_FRAME`]) before a single payload byte is
//! interpreted, mirroring how WAL recovery treats on-disk records:
//! corruption is detected and refused, never obeyed, and never a panic.

use compview_obs::{
    DecodeMetricsError, DecodeTraceError, MetricsSnapshot, TraceCtx, TraceSnapshot,
};
use compview_relation::binio::{self, Dec, DecodeError};
use compview_session::wal::{self, crc32};
use compview_session::{DispatchError, SessionRequest, SessionResponse};
use std::io::{self, Read, Write};

/// The 6-byte connection handshake ("CVRPC" + protocol version 1),
/// exchanged in both directions before the first frame.
pub const HANDSHAKE: &[u8; 6] = b"CVRPC1";

/// Hard per-frame payload limit (64 MiB): a frame declaring more is
/// refused *before* any allocation, so a corrupt or hostile length
/// prefix cannot balloon memory.
pub const MAX_FRAME: u32 = 64 << 20;

/// Bytes of framing ahead of the payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 4 + 4;

/// Marker byte of a `Metrics` request payload and of its response.
///
/// A metrics request is the single byte `[KIND_METRICS]` — no session
/// name, because the metrics registry aggregates the whole service.  It
/// cannot collide with an ordinary request payload: those open with a
/// u32 length-prefixed session name, so they are at least 4 bytes.  The
/// response is `KIND_METRICS ++ MetricsSnapshot::encode()` and is
/// answered in per-connection FIFO order like every other request.
pub const KIND_METRICS: u8 = 3;

/// Marker byte of a server-push **delta event** frame.
///
/// Event frames are unsolicited: once a `Subscribe` request is answered,
/// the server interleaves `[KIND_EVENT] ++ str session ++ event` frames
/// into the connection's response stream.  They cannot collide with
/// result payloads (those open with `KIND_RESPONSE` = 2) or metrics
/// responses ([`KIND_METRICS`]).  Ordering contract: a subscription's
/// events arrive after its `Subscribed` response, in sequence order,
/// with no gaps; after an `Unsubscribed` response or a terminal event,
/// no further frames carry that subscription id.
pub const KIND_EVENT: u8 = 4;

/// Marker byte of a **replication** handshake: `Replicate` requests and
/// their acks.
///
/// A `Replicate` request payload is
/// `[0xFF, 0xFF, 0xFF, 0xFF] ++ [KIND_REPLICATE] ++ str session ++
/// u64 from_seq ++ u64 gen`: the four `0xFF` bytes sit where an ordinary
/// request carries its session-name length, and no real name can be
/// `0xFFFF_FFFF` bytes long (payloads are capped at [`MAX_FRAME`]), so
/// the discrimination is unambiguous.  The solicited ack is
/// `[KIND_REPLICATE] ++ status ...` — see [`ReplicateAck`].
pub const KIND_REPLICATE: u8 = 5;

/// Marker byte of an unsolicited **WAL shipment** frame, pushed by a
/// leader to a follower that sent `Replicate`.  Second byte is one of
/// [`W_RECORD`], [`W_RESET`], [`W_END`]; see [`WalFrame`].
pub const KIND_WAL: u8 = 6;

/// [`KIND_WAL`] subtype: one raw framed WAL record, shipped verbatim so
/// the follower can CRC-verify and byte-mirror it.
pub const W_RECORD: u8 = 1;

/// [`KIND_WAL`] subtype: the leader checkpointed — a raw framed record-0
/// snapshot image the follower must reset onto.
pub const W_RESET: u8 = 2;

/// [`KIND_WAL`] subtype: the leader terminated this session's stream
/// (e.g. the follower fell too far behind its outbox cap).  The follower
/// treats it as a disconnect and re-requests.
pub const W_END: u8 = 3;

/// A single-byte keep-alive frame, sent by the leader on connections
/// with active replication streams so a follower's read timeout can tell
/// "idle leader" from "dead link".  Never sent to ordinary clients —
/// they would misroute it as a solicited response.
pub const KIND_HEARTBEAT: u8 = 7;

/// Marker byte of a **read-your-writes** request and the first byte of
/// nothing else: a `ReadAt` is an ordinary `Read` that names a durable
/// position `(gen, min_seq)` the server must have applied before
/// answering, plus a wait budget.  The request payload is
/// `[0xFF × 4] ++ [KIND_READAT] ++ str session ++ str view ++ u64 gen ++
/// u64 min_seq ++ u64 wait_ms` (same sentinel discrimination as
/// `Replicate`).  The solicited answer is an ordinary result payload —
/// the view's bytes exactly as a plain `Read` would produce them, or a
/// typed `Lagging` dispatch error when the deadline passes first.
pub const KIND_READAT: u8 = 8;

/// Marker byte of a **session-listing** request and of its reply: the
/// request payload is `[0xFF × 4] ++ [KIND_SESSIONS]`; the solicited
/// reply is `[KIND_SESSIONS] ++ str leader ++ u64 count ++ str × count`
/// — the address of the *root* leader this node forwards writes to
/// (empty when this node itself accepts writes) and the names of every
/// durable session this node serves.  Followers poll it mid-tail to
/// discover sessions created upstream after they started.
pub const KIND_SESSIONS: u8 = 9;

/// Marker byte of a **traced** dispatch request: an ordinary request
/// payload wrapped with a distributed-trace context.  The payload is
/// `[0xFF × 4] ++ [KIND_TRACED] ++ u64 trace_id ++ u64 parent_span ++
/// <ordinary request payload>` (same sentinel discrimination as
/// `Replicate`).  Untagged request frames are **unchanged** — an old
/// client's bytes decode and dispatch byte-identically, and a client
/// that never traces never pays the 21-byte wrapper.
pub const KIND_TRACED: u8 = 10;

/// Marker byte of a **trace-drain** request and of its reply: the
/// request payload is `[0xFF × 4] ++ [KIND_TRACE]`; the solicited reply
/// is `[KIND_TRACE] ++ TraceSnapshot::encode()` — the node's buffered
/// distributed spans, drained (the buffer empties, like a log tail).
pub const KIND_TRACE: u8 = 11;

/// Marker byte of a **topology introspection** request and of its
/// reply: the request payload is `[0xFF × 4] ++ [KIND_TOPOLOGY]`; the
/// solicited reply is a [`TopologyReply`] — this node's role, upstream
/// and root addresses, heartbeat freshness, per-session replication
/// positions, and live downstream stream / subscriber counts.
pub const KIND_TOPOLOGY: u8 = 12;

/// [`KIND_WAL`] subtype: a [`W_RECORD`] whose producing write carried a
/// sampled trace context.  Layout puts the two context words *before*
/// the raw record bytes (which run to the end of the payload):
/// `[KIND_WAL][W_RECORD_TRACED] ++ str session ++ u64 gen ++
/// u64 trace_id ++ u64 parent_span ++ record bytes`.  The record bytes
/// themselves are identical to the untraced form — trace context is
/// wire-frame metadata, never WAL-file content.
pub const W_RECORD_TRACED: u8 = 4;

/// The four bytes that open a `Replicate` request payload where an
/// ordinary request carries its session-name length.
pub const REPLICATE_SENTINEL: [u8; 4] = [0xFF; 4];

/// Why a connection's byte stream was refused.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (including truncation inside a
    /// frame: the peer vanished mid-record).
    Io(io::Error),
    /// The peer did not open with [`HANDSHAKE`].
    BadHandshake {
        /// The bytes received instead.
        got: [u8; 6],
    },
    /// A frame declared a payload larger than [`MAX_FRAME`].
    TooLarge {
        /// The declared payload length.
        len: u32,
    },
    /// A frame's payload did not match its checksum.
    BadCrc {
        /// The checksum the frame carried.
        carried: u32,
        /// The checksum of the bytes actually received.
        computed: u32,
    },
    /// The frame was sound but its payload did not decode.
    Decode(DecodeError),
    /// A metrics response frame failed its own (CRC-gated, strictly
    /// validated) codec.
    Metrics(DecodeMetricsError),
    /// A trace response frame failed its own (CRC-gated, strictly
    /// validated) codec.
    Trace(DecodeTraceError),
    /// The connection died earlier and cannot carry anything further.
    /// Unlike [`ProtoError::Io`], this is *sticky*: every send or receive
    /// after the loss reports it again, deterministically, with the
    /// original failure in `detail`.
    ConnectionLost {
        /// The transport failure that killed the connection.
        detail: String,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport failed: {e}"),
            ProtoError::BadHandshake { got } => {
                write!(f, "bad handshake: expected {HANDSHAKE:?}, got {got:?}")
            }
            ProtoError::TooLarge { len } => {
                write!(f, "frame declares {len} bytes, limit is {MAX_FRAME}")
            }
            ProtoError::BadCrc { carried, computed } => write!(
                f,
                "frame checksum mismatch: carried {carried:#010x}, computed {computed:#010x}"
            ),
            ProtoError::Decode(e) => write!(f, "undecodable payload: {e}"),
            ProtoError::Metrics(e) => write!(f, "undecodable metrics snapshot: {e}"),
            ProtoError::Trace(e) => write!(f, "undecodable trace snapshot: {e}"),
            ProtoError::ConnectionLost { detail } => {
                write!(f, "connection lost: {detail}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> ProtoError {
        ProtoError::Decode(e)
    }
}

impl From<DecodeMetricsError> for ProtoError {
    fn from(e: DecodeMetricsError) -> ProtoError {
        ProtoError::Metrics(e)
    }
}

impl From<DecodeTraceError> for ProtoError {
    fn from(e: DecodeTraceError) -> ProtoError {
        ProtoError::Trace(e)
    }
}

/// Send the handshake bytes.
pub fn send_handshake(w: &mut impl Write) -> io::Result<()> {
    w.write_all(HANDSHAKE)
}

/// Read and verify the peer's handshake.
pub fn expect_handshake(r: &mut impl Read) -> Result<(), ProtoError> {
    let mut got = [0u8; 6];
    r.read_exact(&mut got)?;
    if &got != HANDSHAKE {
        return Err(ProtoError::BadHandshake { got });
    }
    Ok(())
}

/// Write one frame around `payload`.
///
/// # Errors
/// [`ProtoError::TooLarge`] when the payload exceeds [`MAX_FRAME`]
/// (nothing is written); otherwise any transport error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or(ProtoError::TooLarge {
            len: payload.len().min(u32::MAX as usize) as u32,
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Fill `buf` exactly, or report a clean end-of-stream (`Ok(false)`) when
/// the stream ends *before the first byte*.  Ending mid-buffer is an
/// [`io::ErrorKind::UnexpectedEof`] — the peer died inside a frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("stream ended {filled} bytes into a {}-byte read", buf.len()),
            ));
        }
        filled += n;
    }
    Ok(true)
}

/// Read one frame; `Ok(None)` on a clean end-of-stream at a frame
/// boundary (the peer hung up between requests).
///
/// # Errors
/// [`ProtoError::TooLarge`] before allocating anything for an over-limit
/// length; [`ProtoError::BadCrc`] when the payload bytes do not match
/// their checksum; [`ProtoError::Io`] on transport failure or truncation
/// inside the frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; FRAME_HEADER];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let carried = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut payload)? && len != 0 {
        return Err(ProtoError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended between a frame's header and its payload",
        )));
    }
    let computed = crc32(&payload);
    if computed != carried {
        return Err(ProtoError::BadCrc { carried, computed });
    }
    Ok(Some(payload))
}

/// Encode a request frame payload: the target session's name, then the
/// request in its canonical (WAL-identical) binary form.
pub fn encode_request_payload(session: &str, req: &SessionRequest) -> Vec<u8> {
    let mut out = Vec::new();
    binio::put_str(&mut out, session);
    out.extend_from_slice(&wal::encode_request(req));
    out
}

/// Decode a request frame payload (inverse of
/// [`encode_request_payload`]).
pub fn decode_request_payload(payload: &[u8]) -> Result<(String, SessionRequest), DecodeError> {
    let mut d = Dec::new(payload);
    let session = d.str()?;
    let req = wal::decode_request(&payload[d.pos()..])?;
    Ok((session, req))
}

/// Everything a request frame can carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRequest {
    /// An ordinary session request, dispatched through the service.
    Dispatch(String, SessionRequest),
    /// A metrics-snapshot request for the whole service.
    Metrics,
    /// A follower asks to tail `session`'s WAL starting at `from_seq`
    /// of generation `gen` (`0, 0` = from scratch).
    Replicate {
        /// The session whose log to stream.
        session: String,
        /// The next sequence number the follower wants.
        from_seq: u64,
        /// The generation the follower is on (0 = none).
        gen: u64,
    },
    /// A read that waits (bounded) until this node has applied the named
    /// durable position, then answers exactly like `Read` — see
    /// [`KIND_READAT`].
    ReadAt {
        /// The session to read.
        session: String,
        /// The registered view to read.
        view: String,
        /// The WAL generation the client's token names.
        gen: u64,
        /// The minimum applied sequence number within that generation.
        min_seq: u64,
        /// Wait budget in milliseconds before a `Lagging` refusal.
        wait_ms: u64,
    },
    /// List this node's durable sessions and its root leader — see
    /// [`KIND_SESSIONS`].
    Sessions,
    /// An ordinary session request carrying a distributed-trace context
    /// (see [`KIND_TRACED`]): dispatched exactly like
    /// [`WireRequest::Dispatch`], with spans recorded when the context
    /// is sampled.
    DispatchTraced {
        /// The target session.
        session: String,
        /// The request.
        req: SessionRequest,
        /// The trace context the client stamped on it.
        ctx: TraceCtx,
    },
    /// Drain this node's distributed-span buffer — see [`KIND_TRACE`].
    Trace,
    /// Report this node's place in the replication tree — see
    /// [`KIND_TOPOLOGY`].
    Topology,
}

/// Encode a metrics request frame payload.
pub fn encode_metrics_request_payload() -> Vec<u8> {
    vec![KIND_METRICS]
}

/// Decode any request frame payload: the one-byte metrics marker, or a
/// session-addressed request.
///
/// # Errors
/// Whatever [`decode_request_payload`] rejects (the metrics marker is
/// unambiguous — see [`KIND_METRICS`]).
pub fn decode_wire_request(payload: &[u8]) -> Result<WireRequest, DecodeError> {
    if payload == [KIND_METRICS] {
        return Ok(WireRequest::Metrics);
    }
    if payload.len() > 4 && payload[..4] == REPLICATE_SENTINEL {
        match payload[4] {
            KIND_REPLICATE => {
                let mut d = Dec::new(&payload[5..]);
                let session = d.str()?;
                let from_seq = d.u64()?;
                let gen = d.u64()?;
                if !d.is_done() {
                    return Err(DecodeError::BadLength {
                        at: d.pos() + 5,
                        len: d.remaining() as u64,
                    });
                }
                return Ok(WireRequest::Replicate {
                    session,
                    from_seq,
                    gen,
                });
            }
            KIND_READAT => {
                let mut d = Dec::new(&payload[5..]);
                let session = d.str()?;
                let view = d.str()?;
                let gen = d.u64()?;
                let min_seq = d.u64()?;
                let wait_ms = d.u64()?;
                if !d.is_done() {
                    return Err(DecodeError::BadLength {
                        at: d.pos() + 5,
                        len: d.remaining() as u64,
                    });
                }
                return Ok(WireRequest::ReadAt {
                    session,
                    view,
                    gen,
                    min_seq,
                    wait_ms,
                });
            }
            KIND_SESSIONS => {
                if payload.len() != 5 {
                    return Err(DecodeError::BadLength {
                        at: 5,
                        len: (payload.len() - 5) as u64,
                    });
                }
                return Ok(WireRequest::Sessions);
            }
            KIND_TRACED => {
                let mut d = Dec::new(&payload[5..]);
                let trace_id = d.u64()?;
                let parent_span = d.u64()?;
                let (session, req) = decode_request_payload(&payload[5 + d.pos()..])?;
                return Ok(WireRequest::DispatchTraced {
                    session,
                    req,
                    ctx: TraceCtx {
                        trace_id,
                        parent_span,
                    },
                });
            }
            KIND_TRACE => {
                if payload.len() != 5 {
                    return Err(DecodeError::BadLength {
                        at: 5,
                        len: (payload.len() - 5) as u64,
                    });
                }
                return Ok(WireRequest::Trace);
            }
            KIND_TOPOLOGY => {
                if payload.len() != 5 {
                    return Err(DecodeError::BadLength {
                        at: 5,
                        len: (payload.len() - 5) as u64,
                    });
                }
                return Ok(WireRequest::Topology);
            }
            tag => return Err(DecodeError::BadTag { at: 4, tag }),
        }
    }
    let (session, req) = decode_request_payload(payload)?;
    Ok(WireRequest::Dispatch(session, req))
}

/// Encode a `Replicate` request frame payload (see [`KIND_REPLICATE`]).
pub fn encode_replicate_payload(session: &str, from_seq: u64, gen: u64) -> Vec<u8> {
    let mut out = REPLICATE_SENTINEL.to_vec();
    out.push(KIND_REPLICATE);
    binio::put_str(&mut out, session);
    binio::put_u64(&mut out, from_seq);
    binio::put_u64(&mut out, gen);
    out
}

/// Encode a `ReadAt` request frame payload (see [`KIND_READAT`]).
pub fn encode_read_at_payload(
    session: &str,
    view: &str,
    gen: u64,
    min_seq: u64,
    wait_ms: u64,
) -> Vec<u8> {
    let mut out = REPLICATE_SENTINEL.to_vec();
    out.push(KIND_READAT);
    binio::put_str(&mut out, session);
    binio::put_str(&mut out, view);
    binio::put_u64(&mut out, gen);
    binio::put_u64(&mut out, min_seq);
    binio::put_u64(&mut out, wait_ms);
    out
}

/// Encode a `Sessions` request frame payload (see [`KIND_SESSIONS`]).
pub fn encode_sessions_payload() -> Vec<u8> {
    let mut out = REPLICATE_SENTINEL.to_vec();
    out.push(KIND_SESSIONS);
    out
}

/// Encode a traced request frame payload (see [`KIND_TRACED`]): the
/// trace context, then the ordinary request payload byte-for-byte.
pub fn encode_traced_request_payload(
    session: &str,
    req: &SessionRequest,
    ctx: TraceCtx,
) -> Vec<u8> {
    let mut out = REPLICATE_SENTINEL.to_vec();
    out.push(KIND_TRACED);
    binio::put_u64(&mut out, ctx.trace_id);
    binio::put_u64(&mut out, ctx.parent_span);
    out.extend_from_slice(&encode_request_payload(session, req));
    out
}

/// Encode a `Trace` (span-drain) request frame payload (see
/// [`KIND_TRACE`]).
pub fn encode_trace_request_payload() -> Vec<u8> {
    let mut out = REPLICATE_SENTINEL.to_vec();
    out.push(KIND_TRACE);
    out
}

/// Encode a `Topology` request frame payload (see [`KIND_TOPOLOGY`]).
pub fn encode_topology_request_payload() -> Vec<u8> {
    let mut out = REPLICATE_SENTINEL.to_vec();
    out.push(KIND_TOPOLOGY);
    out
}

/// Encode a trace response frame payload around an already-encoded
/// [`TraceSnapshot`].
pub fn encode_trace_response_payload(snapshot: &TraceSnapshot) -> Vec<u8> {
    let mut out = vec![KIND_TRACE];
    out.extend_from_slice(&snapshot.encode());
    out
}

/// Decode a trace response frame payload (inverse of
/// [`encode_trace_response_payload`]).
///
/// # Errors
/// [`DecodeTraceError`] when the marker byte is missing or the snapshot
/// codec rejects the remainder.
pub fn decode_trace_response_payload(payload: &[u8]) -> Result<TraceSnapshot, DecodeTraceError> {
    match payload.split_first() {
        Some((&KIND_TRACE, rest)) => TraceSnapshot::decode(rest),
        Some((&other, _)) => Err(DecodeTraceError::BadVersion(other)),
        None => Err(DecodeTraceError::TooShort),
    }
}

/// Whether a sound frame is a trace reply.
pub fn is_trace_reply_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_TRACE)
}

/// A node's role in the replication tree, as reported by `Topology`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoRole {
    /// Accepts writes and has no upstream: the tree's root.
    Root,
    /// Read-only, tailing an upstream.
    Follower,
    /// Was a follower, promoted to accept writes (its old upstream is
    /// gone; downstream nodes may still chain off it).
    Promoted,
}

impl std::fmt::Display for TopoRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoRole::Root => write!(f, "root"),
            TopoRole::Follower => write!(f, "follower"),
            TopoRole::Promoted => write!(f, "promoted"),
        }
    }
}

/// One session's replication position in a [`TopologyReply`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoSession {
    /// The session name.
    pub name: String,
    /// This node's WAL generation for the session.
    pub gen: u64,
    /// Last sequence number applied locally.
    pub applied: u64,
    /// The upstream's last known sequence number (what `applied` chases;
    /// equals `applied` on the root, which *is* the target).
    pub target: u64,
    /// Milliseconds since the last shipment for this session was applied
    /// ([`u64::MAX`] = never, e.g. on a root or before the first
    /// shipment).  A link can be stalled with `lag_records() == 0` —
    /// this is the time dimension that makes it visible.
    pub lag_age_ms: u64,
}

impl TopoSession {
    /// Records this node still has to apply to reach its upstream.
    pub fn lag_records(&self) -> u64 {
        self.target.saturating_sub(self.applied)
    }
}

/// The solicited answer to a `Topology` request (see [`KIND_TOPOLOGY`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyReply {
    /// This node's role in the tree.
    pub role: TopoRole,
    /// The upstream this node tails (`None` on a root / promoted node).
    pub upstream: Option<String>,
    /// The root leader's address as this node knows it (`None` when this
    /// node is the root).
    pub root: Option<String>,
    /// Milliseconds since the last frame (shipment *or* heartbeat)
    /// arrived from the upstream; `None` on a root / promoted node.  A
    /// healthy link keeps this under the leader's heartbeat interval —
    /// staleness here flags a silently dead link before reconnect
    /// backoff fires.
    pub heartbeat_age_ms: Option<u64>,
    /// Live downstream replication streams served by this node.
    pub repl_streams: u64,
    /// Live subscription streams served by this node.
    pub subscribers: u64,
    /// Per-session replication positions, sorted by name.
    pub sessions: Vec<TopoSession>,
}

/// Sentinel encoding `None` for the optional millisecond ages.
const TOPO_NONE: u64 = u64::MAX;

/// Encode a [`TopologyReply`] frame payload.
pub fn encode_topology_reply_payload(reply: &TopologyReply) -> Vec<u8> {
    let mut out = vec![KIND_TOPOLOGY];
    binio::put_u8(
        &mut out,
        match reply.role {
            TopoRole::Root => 0,
            TopoRole::Follower => 1,
            TopoRole::Promoted => 2,
        },
    );
    binio::put_str(&mut out, reply.upstream.as_deref().unwrap_or(""));
    binio::put_str(&mut out, reply.root.as_deref().unwrap_or(""));
    binio::put_u64(&mut out, reply.heartbeat_age_ms.unwrap_or(TOPO_NONE));
    binio::put_u64(&mut out, reply.repl_streams);
    binio::put_u64(&mut out, reply.subscribers);
    binio::put_u64(&mut out, reply.sessions.len() as u64);
    for s in &reply.sessions {
        binio::put_str(&mut out, &s.name);
        binio::put_u64(&mut out, s.gen);
        binio::put_u64(&mut out, s.applied);
        binio::put_u64(&mut out, s.target);
        binio::put_u64(&mut out, s.lag_age_ms);
    }
    out
}

/// Decode a [`TopologyReply`] frame payload (inverse of
/// [`encode_topology_reply_payload`]).
///
/// # Errors
/// [`DecodeError`] on a wrong marker, a bad role byte, truncation, or
/// trailing bytes.
pub fn decode_topology_reply_payload(payload: &[u8]) -> Result<TopologyReply, DecodeError> {
    let mut d = Dec::new(payload);
    let kind = d.u8()?;
    if kind != KIND_TOPOLOGY {
        return Err(DecodeError::BadTag { at: 0, tag: kind });
    }
    let at = d.pos();
    let role = match d.u8()? {
        0 => TopoRole::Root,
        1 => TopoRole::Follower,
        2 => TopoRole::Promoted,
        tag => return Err(DecodeError::BadTag { at, tag }),
    };
    let upstream = d.str()?;
    let root = d.str()?;
    let heartbeat_age_ms = d.u64()?;
    let repl_streams = d.u64()?;
    let subscribers = d.u64()?;
    let count = d.u64()?;
    let mut sessions = Vec::new();
    for _ in 0..count {
        sessions.push(TopoSession {
            name: d.str()?,
            gen: d.u64()?,
            applied: d.u64()?,
            target: d.u64()?,
            lag_age_ms: d.u64()?,
        });
    }
    if !d.is_done() {
        return Err(DecodeError::BadLength {
            at: d.pos(),
            len: d.remaining() as u64,
        });
    }
    Ok(TopologyReply {
        role,
        upstream: Some(upstream).filter(|s| !s.is_empty()),
        root: Some(root).filter(|s| !s.is_empty()),
        heartbeat_age_ms: Some(heartbeat_age_ms).filter(|&m| m != TOPO_NONE),
        repl_streams,
        subscribers,
        sessions,
    })
}

/// Whether a sound frame is a topology reply.
pub fn is_topology_reply_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_TOPOLOGY)
}

/// The solicited answer to a `Sessions` request (see [`KIND_SESSIONS`]).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SessionsReply {
    /// Where writes go: the *root* leader's address forwarded through
    /// however many chain hops sit between — or `None` when the answering
    /// node itself accepts writes.
    pub leader: Option<String>,
    /// Every durable session this node serves, sorted by name.
    pub sessions: Vec<String>,
}

/// Encode a [`SessionsReply`] frame payload.
pub fn encode_sessions_reply_payload(reply: &SessionsReply) -> Vec<u8> {
    let mut out = vec![KIND_SESSIONS];
    binio::put_str(&mut out, reply.leader.as_deref().unwrap_or(""));
    binio::put_u64(&mut out, reply.sessions.len() as u64);
    for name in &reply.sessions {
        binio::put_str(&mut out, name);
    }
    out
}

/// Decode a [`SessionsReply`] frame payload (inverse of
/// [`encode_sessions_reply_payload`]).
///
/// # Errors
/// [`DecodeError`] on a wrong marker, truncation, or trailing bytes.
pub fn decode_sessions_reply_payload(payload: &[u8]) -> Result<SessionsReply, DecodeError> {
    let mut d = Dec::new(payload);
    let kind = d.u8()?;
    if kind != KIND_SESSIONS {
        return Err(DecodeError::BadTag { at: 0, tag: kind });
    }
    let leader = d.str()?;
    let count = d.u64()?;
    let mut sessions = Vec::new();
    for _ in 0..count {
        sessions.push(d.str()?);
    }
    if !d.is_done() {
        return Err(DecodeError::BadLength {
            at: d.pos(),
            len: d.remaining() as u64,
        });
    }
    Ok(SessionsReply {
        leader: Some(leader).filter(|l| !l.is_empty()),
        sessions,
    })
}

/// Whether a sound frame is a sessions reply.
pub fn is_sessions_reply_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_SESSIONS)
}

/// Encode a metrics response frame payload around an already-encoded
/// [`MetricsSnapshot`].
pub fn encode_metrics_response_payload(snapshot: &MetricsSnapshot) -> Vec<u8> {
    let mut out = vec![KIND_METRICS];
    out.extend_from_slice(&snapshot.encode());
    out
}

/// Decode a metrics response frame payload (inverse of
/// [`encode_metrics_response_payload`]).
///
/// # Errors
/// [`DecodeMetricsError`] when the marker byte is missing or the
/// snapshot codec rejects the remainder.
pub fn decode_metrics_response_payload(
    payload: &[u8],
) -> Result<MetricsSnapshot, DecodeMetricsError> {
    match payload.split_first() {
        Some((&KIND_METRICS, rest)) => MetricsSnapshot::decode(rest),
        Some((&other, _)) => Err(DecodeMetricsError::BadVersion(other)),
        None => Err(DecodeMetricsError::TooShort),
    }
}

/// Encode an event frame payload: the owning session's name, then the
/// event in its canonical binary form.
pub fn encode_event_payload(session: &str, event: &compview_session::DeltaEvent) -> Vec<u8> {
    let mut out = vec![KIND_EVENT];
    binio::put_str(&mut out, session);
    compview_session::sub::encode_event_into(&mut out, event);
    out
}

/// Decode an event frame payload (inverse of [`encode_event_payload`]).
///
/// # Errors
/// [`DecodeError`] when the marker byte is wrong, the payload is
/// truncated or malformed, or trailing bytes follow the event.
pub fn decode_event_payload(
    payload: &[u8],
) -> Result<(String, compview_session::DeltaEvent), DecodeError> {
    let mut d = Dec::new(payload);
    let kind = d.u8()?;
    if kind != KIND_EVENT {
        return Err(DecodeError::BadTag { at: 0, tag: kind });
    }
    let session = d.str()?;
    let event = compview_session::sub::decode_event_from(&mut d)?;
    if !d.is_done() {
        return Err(DecodeError::BadLength {
            at: d.pos(),
            len: d.remaining() as u64,
        });
    }
    Ok((session, event))
}

/// Whether a sound frame from the server is an event frame (vs a result
/// or metrics response) — the one-byte peek clients use to route.
pub fn is_event_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_EVENT)
}

/// Encode a response frame payload: one dispatch outcome in its
/// canonical binary form.
pub fn encode_result_payload(res: &Result<SessionResponse, DispatchError>) -> Vec<u8> {
    wal::encode_result(res)
}

/// Decode a response frame payload (inverse of
/// [`encode_result_payload`]).
pub fn decode_result_payload(
    payload: &[u8],
) -> Result<Result<SessionResponse, DispatchError>, DecodeError> {
    wal::decode_result(payload)
}

/// The leader's solicited answer to a `Replicate` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicateAck {
    /// The stream is on: catch-up frames (and then live shipments)
    /// follow as unsolicited [`WalFrame`]s.
    Streaming {
        /// The leader log's current generation.
        gen: u64,
        /// First sequence number the leader will ship (`0` means a
        /// [`W_RESET`] snapshot comes first).
        start_seq: u64,
        /// The leader log's last sequence number at ack time.
        last_seq: u64,
    },
    /// The leader refuses to stream (unknown or non-durable session, or
    /// the follower is ahead of the leader — split brain).
    Refused {
        /// Why.
        detail: String,
    },
}

/// Ack status bytes.
const ACK_STREAMING: u8 = 1;
const ACK_REFUSED: u8 = 2;

/// Encode a [`ReplicateAck`] frame payload.
pub fn encode_replicate_ack_payload(ack: &ReplicateAck) -> Vec<u8> {
    let mut out = vec![KIND_REPLICATE];
    match ack {
        ReplicateAck::Streaming {
            gen,
            start_seq,
            last_seq,
        } => {
            binio::put_u8(&mut out, ACK_STREAMING);
            binio::put_u64(&mut out, *gen);
            binio::put_u64(&mut out, *start_seq);
            binio::put_u64(&mut out, *last_seq);
        }
        ReplicateAck::Refused { detail } => {
            binio::put_u8(&mut out, ACK_REFUSED);
            binio::put_str(&mut out, detail);
        }
    }
    out
}

/// Decode a [`ReplicateAck`] frame payload.
///
/// # Errors
/// [`DecodeError`] on a wrong marker, a bad status byte, truncation, or
/// trailing bytes.
pub fn decode_replicate_ack_payload(payload: &[u8]) -> Result<ReplicateAck, DecodeError> {
    let mut d = Dec::new(payload);
    let kind = d.u8()?;
    if kind != KIND_REPLICATE {
        return Err(DecodeError::BadTag { at: 0, tag: kind });
    }
    let at = d.pos();
    let ack = match d.u8()? {
        ACK_STREAMING => ReplicateAck::Streaming {
            gen: d.u64()?,
            start_seq: d.u64()?,
            last_seq: d.u64()?,
        },
        ACK_REFUSED => ReplicateAck::Refused { detail: d.str()? },
        tag => return Err(DecodeError::BadTag { at, tag }),
    };
    if !d.is_done() {
        return Err(DecodeError::BadLength {
            at: d.pos(),
            len: d.remaining() as u64,
        });
    }
    Ok(ack)
}

/// One unsolicited WAL shipment frame (see [`KIND_WAL`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalFrame {
    /// One raw framed WAL record of `session`, shipped verbatim.
    Record {
        /// The owning session.
        session: String,
        /// The generation the record belongs to.
        gen: u64,
        /// The full framed record bytes (still CRC-protected by the WAL
        /// framing itself, on top of the wire frame's CRC).
        bytes: Vec<u8>,
        /// The distributed-trace context of the write that produced the
        /// record, when it was sampled: `(trace_id, parent_span)`.
        /// Encoded as [`W_RECORD_TRACED`]; `None` encodes as the
        /// byte-identical-to-before [`W_RECORD`].
        trace: Option<(u64, u64)>,
    },
    /// The leader checkpointed: a raw framed record-0 snapshot image.
    Reset {
        /// The owning session.
        session: String,
        /// The fresh log's generation.
        gen: u64,
        /// The full framed record-0 bytes.
        record0: Vec<u8>,
    },
    /// The leader ended this session's stream; the follower should treat
    /// the link as lost and re-request.
    End {
        /// The owning session.
        session: String,
        /// Why the stream ended.
        reason: String,
    },
}

/// Encode a [`WalFrame`] payload.
pub fn encode_wal_frame_payload(frame: &WalFrame) -> Vec<u8> {
    let mut out = vec![KIND_WAL];
    match frame {
        WalFrame::Record {
            session,
            gen,
            bytes,
            trace,
        } => match trace {
            None => {
                binio::put_u8(&mut out, W_RECORD);
                binio::put_str(&mut out, session);
                binio::put_u64(&mut out, *gen);
                out.extend_from_slice(bytes);
            }
            Some((trace_id, parent_span)) => {
                binio::put_u8(&mut out, W_RECORD_TRACED);
                binio::put_str(&mut out, session);
                binio::put_u64(&mut out, *gen);
                binio::put_u64(&mut out, *trace_id);
                binio::put_u64(&mut out, *parent_span);
                out.extend_from_slice(bytes);
            }
        },
        WalFrame::Reset {
            session,
            gen,
            record0,
        } => {
            binio::put_u8(&mut out, W_RESET);
            binio::put_str(&mut out, session);
            binio::put_u64(&mut out, *gen);
            out.extend_from_slice(record0);
        }
        WalFrame::End { session, reason } => {
            binio::put_u8(&mut out, W_END);
            binio::put_str(&mut out, session);
            binio::put_str(&mut out, reason);
        }
    }
    out
}

/// Decode a [`WalFrame`] payload (inverse of
/// [`encode_wal_frame_payload`]).  The carried record bytes are *not*
/// validated here — the follower's apply path CRC-checks the WAL framing
/// itself, so a corrupt record is refused where it can be retried.
///
/// # Errors
/// [`DecodeError`] on a wrong marker or subtype, or truncation of the
/// leading fields.
pub fn decode_wal_frame_payload(payload: &[u8]) -> Result<WalFrame, DecodeError> {
    let mut d = Dec::new(payload);
    let kind = d.u8()?;
    if kind != KIND_WAL {
        return Err(DecodeError::BadTag { at: 0, tag: kind });
    }
    let at = d.pos();
    match d.u8()? {
        W_RECORD => {
            let session = d.str()?;
            let gen = d.u64()?;
            Ok(WalFrame::Record {
                session,
                gen,
                bytes: payload[d.pos()..].to_vec(),
                trace: None,
            })
        }
        W_RECORD_TRACED => {
            let session = d.str()?;
            let gen = d.u64()?;
            let trace_id = d.u64()?;
            let parent_span = d.u64()?;
            Ok(WalFrame::Record {
                session,
                gen,
                bytes: payload[d.pos()..].to_vec(),
                trace: Some((trace_id, parent_span)),
            })
        }
        W_RESET => {
            let session = d.str()?;
            let gen = d.u64()?;
            Ok(WalFrame::Reset {
                session,
                gen,
                record0: payload[d.pos()..].to_vec(),
            })
        }
        W_END => {
            let session = d.str()?;
            let reason = d.str()?;
            if !d.is_done() {
                return Err(DecodeError::BadLength {
                    at: d.pos(),
                    len: d.remaining() as u64,
                });
            }
            Ok(WalFrame::End { session, reason })
        }
        tag => Err(DecodeError::BadTag { at, tag }),
    }
}

/// Whether a sound frame is an unsolicited WAL shipment.
pub fn is_wal_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_WAL)
}

/// The heartbeat frame payload (see [`KIND_HEARTBEAT`]).
pub fn encode_heartbeat_payload() -> Vec<u8> {
    vec![KIND_HEARTBEAT]
}

/// Whether a sound frame is a heartbeat.
pub fn is_heartbeat_payload(payload: &[u8]) -> bool {
    payload == [KIND_HEARTBEAT]
}

/// Whether a sound frame is a replication ack.
pub fn is_replicate_ack_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&KIND_REPLICATE)
}
