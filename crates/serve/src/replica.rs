//! Fault-tolerant read replicas: WAL shipping from a leader
//! [`Server`](crate::Server) to follower processes.
//!
//! A [`Replica`] owns a complete follower: it first **syncs** every
//! durable session against the leader (connecting, sending `Replicate`
//! requests, and applying the shipped catch-up through the same replay
//! path recovery uses), then binds its own server for local reads and
//! keeps **tailing** the leader's live WAL shipments on a background
//! thread.  Followers refuse durable writes with a typed
//! `NotLeader { leader_addr }` rejection; reads, stats, metrics, and
//! subscriptions are served from local state, which is byte-identical to
//! the leader's at every applied sequence number — the shipped frames
//! *are* the leader's WAL bytes, mirrored verbatim into the follower's
//! log before being replayed.
//!
//! # Robustness
//!
//! The tail loop assumes the link will fail and the leader will restart:
//!
//! - Every transport error, read timeout (missed heartbeats), corrupt or
//!   gapped record, and leader-sent `W_END` tears the link down; the
//!   loop reconnects under bounded exponential backoff with
//!   deterministic jitter and re-requests each session from
//!   `last_applied + 1` — the position reported back by the apply path
//!   itself, never the loop's own bookkeeping — so a torn suffix is
//!   never applied and nothing durable is ever skipped.
//! - A follower that lags (or is cut off entirely) keeps serving reads
//!   from its last applied state; `repl.lag_records` / `repl.lag_bytes`
//!   and `repl.reconnects` make the divergence observable.
//! - A leader refusal (split brain: the follower holds records the
//!   leader never wrote) is **fatal**, not retried — it surfaces through
//!   [`Replica::fault`] instead of silently forking history.
//!
//! # Failover
//!
//! [`Replica::promote`] is explicit: it stops the tail loop, waits for
//! in-flight applies to land, fsyncs every session's log, flips the
//! sessions writable, and hands back the inner [`Server`] — now a
//! leader.  Nothing implicit ever promotes a follower.

use crate::proto::{
    decode_replicate_ack_payload, decode_wal_frame_payload, encode_replicate_payload,
    expect_handshake, is_heartbeat_payload, is_replicate_ack_payload, is_wal_payload, read_frame,
    send_handshake, write_frame, ProtoError, ReplicateAck, WalFrame,
};
use crate::server::{ApplyKind, ApplyReport, ServeOptions, Server};
use compview_core::ComponentFamily;
use compview_obs::{Counter, Gauge, Registry};
use compview_session::{ApplyError, Service};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`Replica::start`].
#[derive(Clone, Debug)]
pub struct ReplicaOptions {
    /// Options for the follower's own read server.
    pub serve: ServeOptions,
    /// First reconnect delay; doubles per consecutive failure.
    pub retry_base: Duration,
    /// Reconnect delay ceiling (before ±50% jitter).
    pub retry_max: Duration,
    /// How long the leader link may stay silent before it is presumed
    /// dead.  Must comfortably exceed the leader's
    /// [`ServeOptions::heartbeat_interval`], or a healthy idle link will
    /// be torn down and redialed on every timeout.
    pub read_timeout: Duration,
    /// Transport failures tolerated during the initial sync before
    /// [`Replica::start`] gives up with [`ReplicaError::Connect`].
    pub connect_attempts: u32,
    /// Seed for the backoff jitter (all randomness in this workspace is
    /// seeded; same seed, same retry schedule).
    pub seed: u64,
}

impl Default for ReplicaOptions {
    fn default() -> ReplicaOptions {
        ReplicaOptions {
            serve: ServeOptions::default(),
            retry_base: Duration::from_millis(50),
            retry_max: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            connect_attempts: 10,
            seed: 0,
        }
    }
}

/// Why a [`Replica`] could not start, promote, or keep streaming.
#[derive(Debug)]
pub enum ReplicaError {
    /// The leader stayed unreachable through every allowed attempt.
    Connect {
        /// The last transport failure.
        detail: String,
    },
    /// The leader refused to stream a session (unknown session, no log,
    /// or the follower is ahead — split brain).
    Refused {
        /// The refused session.
        session: String,
        /// The leader's reason.
        detail: String,
    },
    /// The follower's own server could not bind.
    Bind {
        /// The bind failure.
        detail: String,
    },
    /// Promotion failed (a session's log could not be fsynced, or the
    /// server was torn down underneath the replica).
    Promote {
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Connect { detail } => write!(f, "cannot reach leader: {detail}"),
            ReplicaError::Refused { session, detail } => {
                write!(f, "leader refused to replicate {session:?}: {detail}")
            }
            ReplicaError::Bind { detail } => write!(f, "cannot bind replica server: {detail}"),
            ReplicaError::Promote { detail } => write!(f, "promotion failed: {detail}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Follower-side instruments, registered on the service registry before
/// the server takes it over.
#[derive(Clone)]
struct ReplObs {
    /// Known catch-up distance, in records, summed over sessions (from
    /// the leader's ack positions; 0 once caught up — live shipments are
    /// applied as they arrive).
    lag_records: Gauge,
    /// Bytes of the shipment currently received but not yet applied
    /// (pulses per record; a sustained value means the apply path is the
    /// bottleneck).
    lag_bytes: Gauge,
    /// Times the leader link was torn down and redialed.
    reconnects: Counter,
    /// 1 while the leader link is up.
    connected: Gauge,
    /// Shipped records refused by the apply path (gap, CRC mismatch,
    /// undecodable payload) — each costs the link and forces a re-sync
    /// from the last durably applied record.
    bad_records: Counter,
}

impl ReplObs {
    fn new(registry: &Registry) -> ReplObs {
        ReplObs {
            lag_records: registry.gauge("repl.lag_records"),
            lag_bytes: registry.gauge("repl.lag_bytes"),
            reconnects: registry.counter("repl.reconnects"),
            connected: registry.gauge("repl.connected"),
            bad_records: registry.counter("repl.bad_records"),
        }
    }
}

/// One session's authoritative replication position, as reported by the
/// apply path.
struct Position {
    /// The generation of the local log.
    gen: u64,
    /// The last sequence number durably applied locally.
    applied: u64,
    /// The leader's last known sequence number (from the stream ack).
    target: u64,
    /// Whether this connection's ack has arrived.
    acked: bool,
    /// Whether the initial sync target has been reached.
    synced: bool,
}

impl Position {
    /// What to ask the leader for: the next record after the applied
    /// prefix, or everything (`0, 0`) when there is no usable log.
    fn request(&self) -> (u64, u64) {
        if self.gen == 0 {
            (0, 0)
        } else {
            (self.applied + 1, self.gen)
        }
    }
}

fn total_lag(positions: &BTreeMap<String, Position>) -> u64 {
    positions
        .values()
        .map(|p| p.target.saturating_sub(p.applied))
        .sum()
}

/// The raw leader connection: handshake, `Replicate` requests, and the
/// mixed stream of acks, WAL shipments, and heartbeats coming back.
struct LeaderLink {
    stream: TcpStream,
}

impl LeaderLink {
    fn connect(addr: &str, read_timeout: Duration) -> Result<LeaderLink, ProtoError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(read_timeout))?;
        send_handshake(&mut stream)?;
        expect_handshake(&mut stream)?;
        Ok(LeaderLink { stream })
    }

    fn request(&mut self, session: &str, from_seq: u64, gen: u64) -> Result<(), ProtoError> {
        write_frame(
            &mut self.stream,
            &encode_replicate_payload(session, from_seq, gen),
        )
    }

    fn read_payload(&mut self) -> Result<Vec<u8>, ProtoError> {
        read_frame(&mut self.stream)?.ok_or_else(|| ProtoError::ConnectionLost {
            detail: "leader closed the stream".to_owned(),
        })
    }

    /// A handle [`Replica::promote`] can use to cut a blocked read.
    fn shutdown_handle(&self) -> Option<TcpStream> {
        self.stream.try_clone().ok()
    }
}

/// Why one streaming pass over a leader connection ended.
enum StreamBreak {
    /// Every session reached its sync target (initial sync only).
    Synced,
    /// The link died, timed out, desynchronised, shipped something
    /// unusable, or the leader ended a stream: reconnect and re-request.
    Lost(String),
    /// The leader refused a session — fatal, never retried.
    Refused { session: String, detail: String },
    /// The stop flag was raised (or the local server is shutting down).
    Stopped,
}

/// Run one connection's worth of streaming: request every session,
/// route acks by request order, apply shipments as they arrive, and keep
/// the positions authoritative from the apply reports.  With
/// `until_synced`, returns [`StreamBreak::Synced`] the moment every
/// session has caught up to its ack's position; otherwise runs until the
/// link breaks or `stop` is raised.
fn pump_streams(
    link: &mut LeaderLink,
    positions: &mut BTreeMap<String, Position>,
    mut apply: impl FnMut(&str, ApplyKind) -> Option<ApplyReport>,
    obs: &ReplObs,
    stop: &AtomicBool,
    until_synced: bool,
) -> StreamBreak {
    let mut awaiting_ack: VecDeque<String> = VecDeque::new();
    for (name, pos) in positions.iter_mut() {
        pos.acked = false;
        pos.synced = false;
        let (from_seq, gen) = pos.request();
        if let Err(e) = link.request(name, from_seq, gen) {
            return StreamBreak::Lost(format!("cannot request {name:?}: {e}"));
        }
        awaiting_ack.push_back(name.clone());
    }
    let mut unsynced = positions.len();
    if until_synced && unsynced == 0 {
        return StreamBreak::Synced;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return StreamBreak::Stopped;
        }
        let payload = match link.read_payload() {
            Ok(p) => p,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return StreamBreak::Stopped;
                }
                return StreamBreak::Lost(e.to_string());
            }
        };
        if is_heartbeat_payload(&payload) {
            continue;
        }
        if is_wal_payload(&payload) {
            let frame = match decode_wal_frame_payload(&payload) {
                Ok(f) => f,
                Err(e) => return StreamBreak::Lost(format!("undecodable WAL frame: {e}")),
            };
            let (session, kind, nbytes) = match frame {
                WalFrame::Record { session, bytes, .. } => {
                    let n = bytes.len();
                    (session, ApplyKind::Record(bytes), n)
                }
                WalFrame::Reset {
                    session, record0, ..
                } => {
                    let n = record0.len();
                    (session, ApplyKind::Reset(record0), n)
                }
                WalFrame::End { session, reason } => {
                    return StreamBreak::Lost(format!("leader ended {session:?}: {reason}"));
                }
            };
            obs.lag_bytes.set(nbytes as u64);
            let Some(report) = apply(&session, kind) else {
                return StreamBreak::Stopped;
            };
            obs.lag_bytes.set(0);
            let Some(pos) = positions.get_mut(&session) else {
                // A shipment for a session this replica never asked
                // about: the stream cannot be trusted.
                return StreamBreak::Lost(format!("shipment for unknown session {session:?}"));
            };
            pos.gen = report.gen;
            pos.applied = report.last_seq;
            if let Err(e) = report.outcome {
                // Gap, CRC mismatch, torn or undecodable record: never
                // apply a torn suffix — drop the link and re-request
                // from the durably applied position instead.
                obs.bad_records.inc();
                return StreamBreak::Lost(format!("apply refused for {session:?}: {e}"));
            }
            pos.target = pos.target.max(pos.applied);
            obs.lag_records.set(total_lag(positions));
            let pos = positions.get_mut(&session).expect("position just seen");
            if until_synced && !pos.synced && pos.acked && pos.applied >= pos.target {
                pos.synced = true;
                unsynced -= 1;
                if unsynced == 0 {
                    return StreamBreak::Synced;
                }
            }
        } else if is_replicate_ack_payload(&payload) {
            let ack = match decode_replicate_ack_payload(&payload) {
                Ok(a) => a,
                Err(e) => return StreamBreak::Lost(format!("undecodable ack: {e}")),
            };
            // Acks are solicited: they come back in request order.
            let Some(session) = awaiting_ack.pop_front() else {
                return StreamBreak::Lost("unsolicited replication ack".to_owned());
            };
            match ack {
                ReplicateAck::Refused { detail } => {
                    return StreamBreak::Refused { session, detail };
                }
                ReplicateAck::Streaming { gen, last_seq, .. } => {
                    let pos = positions.get_mut(&session).expect("requested session");
                    pos.acked = true;
                    if gen == pos.gen {
                        pos.target = pos.target.max(last_seq);
                    } else {
                        // The leader is on a different generation: its
                        // sequence numbering restarted at a checkpoint,
                        // so the position carried over from the local
                        // log is meaningless as a target — a stale high
                        // value would keep `applied >= target` forever
                        // false and stall the initial sync.  The ack's
                        // own position is the authoritative goal.
                        pos.target = last_seq;
                    }
                    obs.lag_records.set(total_lag(positions));
                    let pos = positions.get_mut(&session).expect("requested session");
                    // Nothing owed (the logs already match): synced on
                    // the spot.
                    if until_synced && !pos.synced && gen == pos.gen && pos.applied >= pos.target {
                        pos.synced = true;
                        unsynced -= 1;
                        if unsynced == 0 {
                            return StreamBreak::Synced;
                        }
                    }
                }
            }
        } else {
            return StreamBreak::Lost("unexpected frame kind from leader".to_owned());
        }
    }
}

/// Apply one shipment synchronously on an unbound service (initial
/// sync); mirrors what the server's dispatcher does for `Item::Apply`.
fn apply_direct<F: ComponentFamily + Send + Sync>(
    service: &mut Service<F>,
    session: &str,
    kind: ApplyKind,
) -> ApplyReport {
    match service.session_mut(session) {
        None => ApplyReport {
            gen: 0,
            last_seq: 0,
            outcome: Err(ApplyError::BadRecord {
                detail: format!("unknown session {session:?}"),
            }),
        },
        Some(s) => {
            let outcome = match kind {
                ApplyKind::Record(bytes) => s.apply_replicated(&bytes),
                ApplyKind::Reset(bytes) => s.apply_reset(&bytes),
            };
            ApplyReport {
                gen: s.wal_gen(),
                last_seq: s.wal_last_seq(),
                outcome,
            }
        }
    }
}

/// The `attempt`-th reconnect delay: bounded exponential backoff with
/// deterministic ±50% jitter, so a fleet of followers redialing a
/// restarted leader does not arrive in lockstep.
fn backoff(rng: &mut StdRng, attempt: u32, base: Duration, max: Duration) -> Duration {
    let exp = base
        .saturating_mul(2u32.saturating_pow(attempt.min(16)))
        .min(max);
    let ns = exp.as_nanos().min(u128::from(u64::MAX / 2)) as u64;
    if ns == 0 {
        return Duration::ZERO;
    }
    Duration::from_nanos(ns / 2 + rng.random_range(0..ns + 1) / 2)
}

/// Sleep in short slices so a promotion or shutdown is never stuck
/// behind a full backoff window.
fn sleep_with_stop(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while left > Duration::ZERO && !stop.load(Ordering::SeqCst) {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// A running follower: a local read [`Server`] plus the background
/// thread tailing the leader.  See the module docs.
pub struct Replica<F: ComponentFamily + Send + Sync + 'static> {
    server: Arc<Server<F>>,
    stop: Arc<AtomicBool>,
    tail: JoinHandle<()>,
    link: Arc<Mutex<Option<TcpStream>>>,
    fault: Arc<Mutex<Option<String>>>,
    leader: String,
}

impl<F: ComponentFamily + Send + Sync + 'static> Replica<F> {
    /// Sync `service` against the leader at `leader_addr`, then bind
    /// `addr` and serve reads while tailing the leader's live shipments.
    ///
    /// Every durable session already open in `service` is replicated
    /// (sessions without a write-ahead log cannot mirror one and are
    /// served as-is).  The sessions are flipped read-only — durable
    /// writes are refused with `NotLeader { leader_addr }` — until
    /// [`Replica::promote`].
    ///
    /// # Errors
    /// [`ReplicaError::Connect`] when the leader stays unreachable
    /// through [`ReplicaOptions::connect_attempts`];
    /// [`ReplicaError::Refused`] when it refuses a session (split
    /// brain); [`ReplicaError::Bind`] when the local server cannot bind.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        leader_addr: &str,
        mut service: Service<F>,
        options: ReplicaOptions,
    ) -> Result<Replica<F>, ReplicaError> {
        let obs = ReplObs::new(service.registry());
        let names: Vec<String> = service
            .session_names()
            .map(str::to_owned)
            .collect::<Vec<_>>()
            .into_iter()
            .filter(|n| service.session(n).is_some_and(|s| s.is_durable()))
            .collect();
        let mut positions: BTreeMap<String, Position> = names
            .iter()
            .map(|n| {
                let s = service.session(n).expect("durable session");
                (
                    n.clone(),
                    Position {
                        gen: s.wal_gen(),
                        applied: s.wal_last_seq(),
                        target: s.wal_last_seq(),
                        acked: false,
                        synced: false,
                    },
                )
            })
            .collect();

        // Phase A: initial sync, synchronous, before serving anything —
        // a read served by this replica is never older than the leader
        // state at start time.
        let never_stop = AtomicBool::new(false);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut attempt: u32 = 0;
        loop {
            let broke = match LeaderLink::connect(leader_addr, options.read_timeout) {
                Err(e) => StreamBreak::Lost(e.to_string()),
                Ok(mut link) => {
                    obs.connected.set(1);
                    let broke = pump_streams(
                        &mut link,
                        &mut positions,
                        |session, kind| Some(apply_direct(&mut service, session, kind)),
                        &obs,
                        &never_stop,
                        true,
                    );
                    obs.connected.set(0);
                    broke
                }
            };
            match broke {
                StreamBreak::Synced => break,
                StreamBreak::Refused { session, detail } => {
                    return Err(ReplicaError::Refused { session, detail });
                }
                StreamBreak::Lost(detail) => {
                    attempt += 1;
                    if attempt >= options.connect_attempts.max(1) {
                        return Err(ReplicaError::Connect { detail });
                    }
                    obs.reconnects.inc();
                    std::thread::sleep(backoff(
                        &mut rng,
                        attempt - 1,
                        options.retry_base,
                        options.retry_max,
                    ));
                }
                StreamBreak::Stopped => unreachable!("stop is never raised during initial sync"),
            }
        }
        obs.connected.set(1);

        // Phase B: flip read-only, serve, tail.
        for name in &names {
            if let Some(s) = service.session_mut(name) {
                s.set_read_only(Some(leader_addr.to_owned()));
            }
        }
        let server = Arc::new(
            Server::bind_with(addr, service, options.serve.clone()).map_err(|e| {
                ReplicaError::Bind {
                    detail: e.to_string(),
                }
            })?,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let link = Arc::new(Mutex::new(None));
        let fault = Arc::new(Mutex::new(None));
        let tail = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let link = Arc::clone(&link);
            let fault = Arc::clone(&fault);
            let obs = obs.clone();
            let leader = leader_addr.to_owned();
            let options = options.clone();
            std::thread::spawn(move || {
                tail_loop(
                    &server, positions, &leader, &stop, &link, &fault, &obs, &options,
                );
            })
        };
        Ok(Replica {
            server,
            stop,
            tail,
            link,
            fault,
            leader: leader_addr.to_owned(),
        })
    }

    /// The address the follower is serving reads on.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The leader address this replica follows (what `NotLeader`
    /// rejections point writers at).
    pub fn leader_addr(&self) -> &str {
        &self.leader
    }

    /// Why the tail loop stopped for good, if it has (a leader refusal —
    /// split brain — is fatal and never retried).  `None` while healthy
    /// or merely reconnecting.
    pub fn fault(&self) -> Option<String> {
        self.fault.lock().expect("fault").clone()
    }

    /// Stop the tail loop and cut any blocked leader read.
    fn stop_tail(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(s) = self.link.lock().expect("link").take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Promote this follower to a leader: stop tailing (pending applies
    /// land first), fsync every session's log, flip the sessions
    /// writable, and hand back the server — same address, now accepting
    /// durable writes.  Explicit and safe: nothing the old leader acked
    /// and shipped here is lost, and nothing unshipped can be invented.
    ///
    /// # Errors
    /// [`ReplicaError::Promote`] when a log cannot be fsynced.
    pub fn promote(self) -> Result<Server<F>, ReplicaError> {
        self.stop_tail();
        let _ = self.tail.join();
        self.server
            .promote_partitions()
            .map_err(|detail| ReplicaError::Promote { detail })?;
        Arc::try_unwrap(self.server).map_err(|_| ReplicaError::Promote {
            detail: "replica server still shared after tail join".to_owned(),
        })
    }

    /// Stop tailing and shut the read server down, returning the
    /// follower's service (sessions still read-only).
    ///
    /// # Panics
    /// Panics if the inner server is still shared after the tail thread
    /// joined (cannot happen through this API).
    pub fn shutdown(self) -> Service<F> {
        self.stop_tail();
        let _ = self.tail.join();
        match Arc::try_unwrap(self.server) {
            Ok(server) => server.shutdown(),
            Err(_) => panic!("replica server still shared after tail join"),
        }
    }
}

/// The background tail: reconnect-and-stream until stopped or fatally
/// refused.
#[allow(clippy::too_many_arguments)] // internal plumbing for one thread
fn tail_loop<F: ComponentFamily + Send + Sync + 'static>(
    server: &Arc<Server<F>>,
    mut positions: BTreeMap<String, Position>,
    leader: &str,
    stop: &AtomicBool,
    link_slot: &Mutex<Option<TcpStream>>,
    fault: &Mutex<Option<String>>,
    obs: &ReplObs,
    options: &ReplicaOptions,
) {
    if positions.is_empty() {
        return; // nothing to tail
    }
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x7461_696c); // "tail"
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        match LeaderLink::connect(leader, options.read_timeout) {
            Err(_) => {
                obs.reconnects.inc();
            }
            Ok(mut link) => {
                *link_slot.lock().expect("link") = link.shutdown_handle();
                obs.connected.set(1);
                attempt = 0;
                let broke = pump_streams(
                    &mut link,
                    &mut positions,
                    |session, kind| server.enqueue_apply(session, kind).recv().ok(),
                    obs,
                    stop,
                    false,
                );
                obs.connected.set(0);
                *link_slot.lock().expect("link") = None;
                match broke {
                    StreamBreak::Stopped | StreamBreak::Synced => return,
                    StreamBreak::Refused { session, detail } => {
                        *fault.lock().expect("fault") =
                            Some(format!("leader refused {session:?}: {detail}"));
                        return;
                    }
                    StreamBreak::Lost(_) => {
                        obs.reconnects.inc();
                    }
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        sleep_with_stop(
            backoff(&mut rng, attempt, options.retry_base, options.retry_max),
            stop,
        );
        attempt = attempt.saturating_add(1);
    }
}
