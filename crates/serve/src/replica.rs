//! Fault-tolerant read replicas: WAL shipping from a leader
//! [`Server`](crate::Server) to follower processes.
//!
//! A [`Replica`] owns a complete follower: it first **syncs** every
//! durable session against the leader (connecting, sending `Replicate`
//! requests, and applying the shipped catch-up through the same replay
//! path recovery uses), then binds its own server for local reads and
//! keeps **tailing** the leader's live WAL shipments on a background
//! thread.  Followers refuse durable writes with a typed
//! `NotLeader { leader_addr }` rejection; reads, stats, metrics, and
//! subscriptions are served from local state, which is byte-identical to
//! the leader's at every applied sequence number — the shipped frames
//! *are* the leader's WAL bytes, mirrored verbatim into the follower's
//! log before being replayed.
//!
//! # Robustness
//!
//! The tail loop assumes the link will fail and the leader will restart:
//!
//! - Every transport error, read timeout (missed heartbeats), corrupt or
//!   gapped record, and leader-sent `W_END` tears the link down; the
//!   loop reconnects under bounded exponential backoff with
//!   deterministic jitter and re-requests each session from
//!   `last_applied + 1` — the position reported back by the apply path
//!   itself, never the loop's own bookkeeping — so a torn suffix is
//!   never applied and nothing durable is ever skipped.
//! - A follower that lags (or is cut off entirely) keeps serving reads
//!   from its last applied state; `repl.lag_records` / `repl.lag_bytes`
//!   and `repl.reconnects` make the divergence observable.
//! - A leader refusal (split brain: the follower holds records the
//!   leader never wrote) is **fatal**, not retried — it surfaces through
//!   [`Replica::fault`] instead of silently forking history.
//!
//! # Topology
//!
//! Replication composes into a tree.  One leader streams any number of
//! followers concurrently (fan-out), and a follower is itself a valid
//! upstream (chaining): it re-ships the exact bytes it mirrors, so a
//! downstream tailing a mid-chain node converges to the same
//! byte-identical state as one tailing the root.  At connect time a
//! follower exchanges a `Sessions` listing with its upstream, which
//! carries two things: the upstream's own root-leader hint — so
//! `NotLeader` rejections anywhere in the chain name the *root*, not the
//! next hop — and the upstream's durable session names.  With a
//! [`Mirror`] configured ([`Replica::start_with_mirror`]), sessions the
//! follower has never seen — including ones created on the leader
//! *after* the follower started — are opened locally from the mirror
//! spec, adopted into the running server, and tailed like any other; the
//! listing is re-polled on a [`ReplicaOptions::discover_interval`]
//! cadence while streaming.
//!
//! # Failover
//!
//! [`Replica::promote`] is explicit: it stops the tail loop, waits for
//! in-flight applies to land, fsyncs every session's log, flips the
//! sessions writable, clears the root-leader hint, and hands back the
//! inner [`Server`] — now a leader.  Nothing implicit ever promotes a
//! follower.

use crate::proto::{
    decode_replicate_ack_payload, decode_sessions_reply_payload, decode_wal_frame_payload,
    encode_replicate_payload, encode_sessions_payload, expect_handshake, is_heartbeat_payload,
    is_replicate_ack_payload, is_sessions_reply_payload, is_wal_payload, read_frame,
    send_handshake, write_frame, ProtoError, ReplicateAck, SessionsReply, WalFrame,
};
use crate::server::{ApplyKind, ApplyReport, ServeOptions, Server};
use compview_core::ComponentFamily;
use compview_logic::Schema;
use compview_obs::{Counter, Gauge, Registry, TraceCtx};
use compview_relation::{Instance, Tuple};
use compview_session::{
    ApplyError, FsStore, LogStore, Service, Session, SessionConfig, SyncPolicy,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Replica::start`].
#[derive(Clone, Debug)]
pub struct ReplicaOptions {
    /// Options for the follower's own read server.
    pub serve: ServeOptions,
    /// First reconnect delay; doubles per consecutive failure.
    pub retry_base: Duration,
    /// Reconnect delay ceiling (before ±50% jitter).
    pub retry_max: Duration,
    /// How long the leader link may stay silent before it is presumed
    /// dead.  Must comfortably exceed the leader's
    /// [`ServeOptions::heartbeat_interval`], or a healthy idle link will
    /// be torn down and redialed on every timeout.
    pub read_timeout: Duration,
    /// Transport failures tolerated during the initial sync before
    /// [`Replica::start`] gives up with [`ReplicaError::Connect`].
    pub connect_attempts: u32,
    /// Seed for the backoff jitter (all randomness in this workspace is
    /// seeded; same seed, same retry schedule).
    pub seed: u64,
    /// How often the tail loop re-polls the upstream's `Sessions`
    /// listing while streaming, so sessions created on the leader after
    /// this follower started are discovered and mirrored without a
    /// reconnect.  Only meaningful with a [`Mirror`] configured.
    pub discover_interval: Duration,
}

impl Default for ReplicaOptions {
    fn default() -> ReplicaOptions {
        ReplicaOptions {
            serve: ServeOptions::default(),
            retry_base: Duration::from_millis(50),
            retry_max: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            connect_attempts: 10,
            seed: 0,
            discover_interval: Duration::from_millis(500),
        }
    }
}

/// How a follower opens local mirrors for sessions it discovers on its
/// upstream but does not hold itself (see the module docs).
///
/// The [`MirrorSpec`] the factory returns must describe the session *as
/// the leader originally created it* — same family, schema, pools, base,
/// and config.  Durable identity is content-derived, so an identical
/// spec yields an identical generation and the leader answers the first
/// `Replicate` with a pure tail; a differing spec merely costs a full
/// reset shipment, after which the mirrored log is byte-identical either
/// way.
pub struct Mirror<F> {
    /// Directory for the mirrored write-ahead logs (`<name>.wal`).  Must
    /// not be shared with the leader or another follower.
    pub dir: PathBuf,
    /// Sync policy for the mirrored logs.
    pub policy: SyncPolicy,
    /// Per-session spec factory; `None` excludes the session from
    /// mirroring (it keeps being skipped, not an error).
    #[allow(clippy::type_complexity)]
    pub spec: Arc<dyn Fn(&str) -> Option<MirrorSpec<F>> + Send + Sync>,
}

impl<F> Clone for Mirror<F> {
    fn clone(&self) -> Mirror<F> {
        Mirror {
            dir: self.dir.clone(),
            policy: self.policy,
            spec: Arc::clone(&self.spec),
        }
    }
}

/// Everything needed to open one mirrored session — the same arguments
/// the leader's `create_durable_session` took.
pub struct MirrorSpec<F> {
    /// The component family.
    pub family: F,
    /// The schema.
    pub schema: Schema,
    /// The value pools.
    pub pools: BTreeMap<String, Vec<Tuple>>,
    /// The base instance.
    pub base: Instance,
    /// The session config.
    pub config: SessionConfig,
}

/// Open (or re-open) the local mirror for a discovered session: a fresh
/// store goes through the durable-create path (deterministic identity),
/// a non-empty one through recovery — a follower restarting with mirrors
/// on disk resumes from its applied prefix instead of re-shipping
/// everything.
fn open_mirror_session<F: ComponentFamily + Sync>(
    mirror: &Mirror<F>,
    name: &str,
) -> Result<Option<Session<F>>, String> {
    let Some(spec) = (mirror.spec)(name) else {
        return Ok(None);
    };
    let path = mirror.dir.join(format!("{name}.wal"));
    let mut store = FsStore::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let len = store.len().map_err(|e| e.to_string())?;
    let session = if len == 0 {
        Session::open_durable_observed(
            spec.family,
            spec.schema,
            &spec.pools,
            spec.base,
            spec.config,
            Box::new(store),
            mirror.policy,
            &Registry::disabled(),
        )
        .map_err(|e| e.to_string())?
    } else {
        Session::recover_observed(
            spec.family,
            spec.schema,
            Box::new(store),
            mirror.policy,
            &Registry::disabled(),
        )
        .map(|(s, _)| s)
        .map_err(|e| e.to_string())?
    };
    Ok(Some(session))
}

/// Why a [`Replica`] could not start, promote, or keep streaming.
#[derive(Debug)]
pub enum ReplicaError {
    /// The leader stayed unreachable through every allowed attempt.
    Connect {
        /// The last transport failure.
        detail: String,
    },
    /// The leader refused to stream a session (unknown session, no log,
    /// or the follower is ahead — split brain).
    Refused {
        /// The refused session.
        session: String,
        /// The leader's reason.
        detail: String,
    },
    /// The follower's own server could not bind.
    Bind {
        /// The bind failure.
        detail: String,
    },
    /// Promotion failed (a session's log could not be fsynced, or the
    /// server was torn down underneath the replica).
    Promote {
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Connect { detail } => write!(f, "cannot reach leader: {detail}"),
            ReplicaError::Refused { session, detail } => {
                write!(f, "leader refused to replicate {session:?}: {detail}")
            }
            ReplicaError::Bind { detail } => write!(f, "cannot bind replica server: {detail}"),
            ReplicaError::Promote { detail } => write!(f, "promotion failed: {detail}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Follower-side instruments, registered on the service registry before
/// the server takes it over.
#[derive(Clone)]
struct ReplObs {
    /// Known catch-up distance, in records, summed over sessions (from
    /// the leader's ack positions; 0 once caught up — live shipments are
    /// applied as they arrive).
    lag_records: Gauge,
    /// Bytes of the shipment currently received but not yet applied
    /// (pulses per record; a sustained value means the apply path is the
    /// bottleneck).
    lag_bytes: Gauge,
    /// Milliseconds since the last shipment was applied, refreshed on
    /// every upstream frame (heartbeats included).  `repl.lag_records`
    /// answers "how far behind"; this answers "how *stale*" — a link can
    /// be zero records behind and still dead.
    lag_age_ms: Gauge,
    /// Times the leader link was torn down and redialed.
    reconnects: Counter,
    /// 1 while the leader link is up.
    connected: Gauge,
    /// Shipped records refused by the apply path (gap, CRC mismatch,
    /// undecodable payload) — each costs the link and forces a re-sync
    /// from the last durably applied record.
    bad_records: Counter,
    /// Sessions discovered on the upstream and opened locally from the
    /// [`Mirror`] spec.
    mirrored: Counter,
    /// Discovered sessions whose local mirror could not be opened or
    /// adopted (bad spec, unwritable dir, name collision) — skipped, not
    /// fatal, but worth alerting on.
    mirror_failures: Counter,
}

impl ReplObs {
    fn new(registry: &Registry) -> ReplObs {
        ReplObs {
            lag_records: registry.gauge("repl.lag_records"),
            lag_bytes: registry.gauge("repl.lag_bytes"),
            lag_age_ms: registry.gauge("repl.lag_age_ms"),
            reconnects: registry.counter("repl.reconnects"),
            connected: registry.gauge("repl.connected"),
            bad_records: registry.counter("repl.bad_records"),
            mirrored: registry.counter("repl.sessions_mirrored"),
            mirror_failures: registry.counter("repl.mirror_failures"),
        }
    }
}

/// One session's authoritative replication position, as reported by the
/// apply path.
struct Position {
    /// The generation of the local log.
    gen: u64,
    /// The last sequence number durably applied locally.
    applied: u64,
    /// The leader's last known sequence number (from the stream ack).
    target: u64,
    /// Whether this connection's ack has arrived.
    acked: bool,
    /// Whether the initial sync target has been reached.
    synced: bool,
}

impl Position {
    /// What to ask the leader for: the next record after the applied
    /// prefix, or everything (`0, 0`) when there is no usable log.
    fn request(&self) -> (u64, u64) {
        if self.gen == 0 {
            (0, 0)
        } else {
            (self.applied + 1, self.gen)
        }
    }
}

fn total_lag(positions: &BTreeMap<String, Position>) -> u64 {
    positions
        .values()
        .map(|p| p.target.saturating_sub(p.applied))
        .sum()
}

/// The raw leader connection: handshake, `Replicate` requests, and the
/// mixed stream of acks, WAL shipments, and heartbeats coming back.
struct LeaderLink {
    stream: TcpStream,
}

impl LeaderLink {
    fn connect(addr: &str, read_timeout: Duration) -> Result<LeaderLink, ProtoError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(read_timeout))?;
        send_handshake(&mut stream)?;
        expect_handshake(&mut stream)?;
        Ok(LeaderLink { stream })
    }

    fn request(&mut self, session: &str, from_seq: u64, gen: u64) -> Result<(), ProtoError> {
        write_frame(
            &mut self.stream,
            &encode_replicate_payload(session, from_seq, gen),
        )
    }

    fn read_payload(&mut self) -> Result<Vec<u8>, ProtoError> {
        read_frame(&mut self.stream)?.ok_or_else(|| ProtoError::ConnectionLost {
            detail: "leader closed the stream".to_owned(),
        })
    }

    /// Ask for the upstream's `Sessions` listing without waiting for the
    /// reply (it arrives in the mixed stream, routed by payload kind).
    fn request_sessions(&mut self) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, &encode_sessions_payload())
    }

    /// Connect-time `Sessions` exchange: ask and block for the listing.
    /// Valid only before any `Replicate` is outstanding — the listing is
    /// then the first substantive frame back (heartbeats tolerated).
    fn learn_sessions(&mut self) -> Result<SessionsReply, ProtoError> {
        self.request_sessions()?;
        loop {
            let payload = self.read_payload()?;
            if is_heartbeat_payload(&payload) {
                continue;
            }
            if is_sessions_reply_payload(&payload) {
                return decode_sessions_reply_payload(&payload).map_err(|e| {
                    ProtoError::ConnectionLost {
                        detail: format!("undecodable sessions reply: {e}"),
                    }
                });
            }
            return Err(ProtoError::ConnectionLost {
                detail: "unexpected frame before the sessions reply".to_owned(),
            });
        }
    }

    /// A handle [`Replica::promote`] can use to cut a blocked read.
    fn shutdown_handle(&self) -> Option<TcpStream> {
        self.stream.try_clone().ok()
    }
}

/// Why one streaming pass over a leader connection ended.
enum StreamBreak {
    /// Every session reached its sync target (initial sync only).
    Synced,
    /// The link died, timed out, desynchronised, shipped something
    /// unusable, or the leader ended a stream: reconnect and re-request.
    Lost(String),
    /// The leader refused a session — fatal, never retried.
    Refused { session: String, detail: String },
    /// The stop flag was raised (or the local server is shutting down).
    Stopped,
}

/// Mid-stream session discovery for [`pump_streams`]: re-poll the
/// upstream's listing every `interval`, and for each name the positions
/// map has never seen, `adopt` opens + adopts a local mirror and returns
/// its starting [`Position`] (or `None` to skip).  Newly adopted
/// sessions are requested on the same link, joining the live stream.
struct Discover<'a> {
    adopt: &'a mut dyn FnMut(&str) -> Option<Position>,
    interval: Duration,
}

/// Run one connection's worth of streaming: request every session,
/// route acks by request order, apply shipments as they arrive, and keep
/// the positions authoritative from the apply reports.  With
/// `until_synced`, returns [`StreamBreak::Synced`] the moment every
/// session has caught up to its ack's position; otherwise runs until the
/// link breaks or `stop` is raised.  `discover` (tail phase only — never
/// combined with `until_synced`) grows the position map mid-stream.
#[allow(clippy::too_many_arguments)] // internal plumbing for one loop
fn pump_streams(
    link: &mut LeaderLink,
    positions: &mut BTreeMap<String, Position>,
    mut apply: impl FnMut(&str, ApplyKind) -> Option<ApplyReport>,
    mut discover: Option<Discover<'_>>,
    obs: &ReplObs,
    stop: &AtomicBool,
    until_synced: bool,
    // Topology feedback (no-ops during the unbound Phase-A sync): any
    // upstream frame arrived / one session's upstream target advanced.
    mut note_frame: impl FnMut(),
    mut note_link: impl FnMut(&str, u64),
) -> StreamBreak {
    debug_assert!(
        !(until_synced && discover.is_some()),
        "discovery would disturb the sync countdown"
    );
    let mut last_poll = Instant::now();
    let mut awaiting_ack: VecDeque<String> = VecDeque::new();
    for (name, pos) in positions.iter_mut() {
        pos.acked = false;
        pos.synced = false;
        let (from_seq, gen) = pos.request();
        if let Err(e) = link.request(name, from_seq, gen) {
            return StreamBreak::Lost(format!("cannot request {name:?}: {e}"));
        }
        awaiting_ack.push_back(name.clone());
    }
    let mut unsynced = positions.len();
    if until_synced && unsynced == 0 {
        return StreamBreak::Synced;
    }
    // When the last shipment was applied on this link — feeds the
    // `repl.lag_age_ms` gauge, refreshed per frame so a quiet-but-alive
    // link reads as aging, not frozen.
    let mut last_applied_at: Option<Instant> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            return StreamBreak::Stopped;
        }
        if let Some(d) = &discover {
            if last_poll.elapsed() >= d.interval {
                last_poll = Instant::now();
                if let Err(e) = link.request_sessions() {
                    return StreamBreak::Lost(format!("cannot poll sessions: {e}"));
                }
            }
        }
        let payload = match link.read_payload() {
            Ok(p) => p,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return StreamBreak::Stopped;
                }
                return StreamBreak::Lost(e.to_string());
            }
        };
        // Frame freshness is noted before the heartbeat fast-path: a
        // heartbeat IS proof of life, and the `Topology` verb's
        // heartbeat age must reset on it.
        note_frame();
        if let Some(t) = last_applied_at {
            obs.lag_age_ms
                .set(u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX));
        }
        if is_heartbeat_payload(&payload) {
            continue;
        }
        if is_wal_payload(&payload) {
            let frame = match decode_wal_frame_payload(&payload) {
                Ok(f) => f,
                Err(e) => return StreamBreak::Lost(format!("undecodable WAL frame: {e}")),
            };
            let (session, kind, nbytes) = match frame {
                WalFrame::Record {
                    session,
                    bytes,
                    trace,
                    ..
                } => {
                    let n = bytes.len();
                    let ctx = trace.map(|(trace_id, parent_span)| TraceCtx {
                        trace_id,
                        parent_span,
                    });
                    (session, ApplyKind::Record(bytes, ctx), n)
                }
                WalFrame::Reset {
                    session, record0, ..
                } => {
                    let n = record0.len();
                    (session, ApplyKind::Reset(record0), n)
                }
                WalFrame::End { session, reason } => {
                    return StreamBreak::Lost(format!("leader ended {session:?}: {reason}"));
                }
            };
            obs.lag_bytes.set(nbytes as u64);
            let Some(report) = apply(&session, kind) else {
                return StreamBreak::Stopped;
            };
            obs.lag_bytes.set(0);
            let Some(pos) = positions.get_mut(&session) else {
                // A shipment for a session this replica never asked
                // about: the stream cannot be trusted.
                return StreamBreak::Lost(format!("shipment for unknown session {session:?}"));
            };
            pos.gen = report.gen;
            pos.applied = report.last_seq;
            if let Err(e) = report.outcome {
                // Gap, CRC mismatch, torn or undecodable record: never
                // apply a torn suffix — drop the link and re-request
                // from the durably applied position instead.
                obs.bad_records.inc();
                return StreamBreak::Lost(format!("apply refused for {session:?}: {e}"));
            }
            pos.target = pos.target.max(pos.applied);
            last_applied_at = Some(Instant::now());
            obs.lag_age_ms.set(0);
            note_link(&session, pos.target);
            obs.lag_records.set(total_lag(positions));
            let pos = positions.get_mut(&session).expect("position just seen");
            if until_synced && !pos.synced && pos.acked && pos.applied >= pos.target {
                pos.synced = true;
                unsynced -= 1;
                if unsynced == 0 {
                    return StreamBreak::Synced;
                }
            }
        } else if is_replicate_ack_payload(&payload) {
            let ack = match decode_replicate_ack_payload(&payload) {
                Ok(a) => a,
                Err(e) => return StreamBreak::Lost(format!("undecodable ack: {e}")),
            };
            // Acks are solicited: they come back in request order.
            let Some(session) = awaiting_ack.pop_front() else {
                return StreamBreak::Lost("unsolicited replication ack".to_owned());
            };
            match ack {
                ReplicateAck::Refused { detail } => {
                    return StreamBreak::Refused { session, detail };
                }
                ReplicateAck::Streaming { gen, last_seq, .. } => {
                    let pos = positions.get_mut(&session).expect("requested session");
                    pos.acked = true;
                    if gen == pos.gen {
                        pos.target = pos.target.max(last_seq);
                    } else {
                        // The leader is on a different generation: its
                        // sequence numbering restarted at a checkpoint,
                        // so the position carried over from the local
                        // log is meaningless as a target — a stale high
                        // value would keep `applied >= target` forever
                        // false and stall the initial sync.  The ack's
                        // own position is the authoritative goal.
                        pos.target = last_seq;
                    }
                    note_link(&session, pos.target);
                    obs.lag_records.set(total_lag(positions));
                    let pos = positions.get_mut(&session).expect("requested session");
                    // Nothing owed (the logs already match): synced on
                    // the spot.
                    if until_synced && !pos.synced && gen == pos.gen && pos.applied >= pos.target {
                        pos.synced = true;
                        unsynced -= 1;
                        if unsynced == 0 {
                            return StreamBreak::Synced;
                        }
                    }
                }
            }
        } else if is_sessions_reply_payload(&payload) {
            let reply = match decode_sessions_reply_payload(&payload) {
                Ok(r) => r,
                Err(e) => return StreamBreak::Lost(format!("undecodable sessions reply: {e}")),
            };
            if let Some(d) = discover.as_mut() {
                for name in &reply.sessions {
                    if positions.contains_key(name) {
                        continue;
                    }
                    let Some(pos) = (d.adopt)(name) else {
                        continue;
                    };
                    let (from_seq, gen) = pos.request();
                    positions.insert(name.clone(), pos);
                    if let Err(e) = link.request(name, from_seq, gen) {
                        return StreamBreak::Lost(format!("cannot request {name:?}: {e}"));
                    }
                    awaiting_ack.push_back(name.clone());
                }
            }
        } else {
            return StreamBreak::Lost("unexpected frame kind from leader".to_owned());
        }
    }
}

/// Apply one shipment synchronously on an unbound service (initial
/// sync); mirrors what the server's dispatcher does for `Item::Apply`.
fn apply_direct<F: ComponentFamily + Send + Sync>(
    service: &mut Service<F>,
    session: &str,
    kind: ApplyKind,
) -> ApplyReport {
    match service.session_mut(session) {
        None => ApplyReport {
            gen: 0,
            last_seq: 0,
            outcome: Err(ApplyError::BadRecord {
                detail: format!("unknown session {session:?}"),
            }),
        },
        Some(s) => {
            let outcome = match kind {
                ApplyKind::Record(bytes, ctx) => s.apply_replicated_traced(&bytes, ctx),
                ApplyKind::Reset(bytes) => s.apply_reset(&bytes),
            };
            ApplyReport {
                gen: s.wal_gen(),
                last_seq: s.wal_last_seq(),
                outcome,
            }
        }
    }
}

/// Phase-A discovery: open a local mirror for every upstream-listed
/// session the service does not hold, add it to the (still unbound)
/// service, and give it a starting position so the same sync pass
/// catches it up.  Failures skip the session and count on
/// `repl.mirror_failures`.
fn discover_into_service<F: ComponentFamily + Send + Sync>(
    mirror: &Mirror<F>,
    names: &[String],
    service: &mut Service<F>,
    positions: &mut BTreeMap<String, Position>,
    obs: &ReplObs,
) {
    for name in names {
        if positions.contains_key(name) || service.session(name).is_some() {
            continue;
        }
        match open_mirror_session(mirror, name) {
            Ok(None) => {}
            Ok(Some(session)) => {
                let pos = Position {
                    gen: session.wal_gen(),
                    applied: session.wal_last_seq(),
                    target: session.wal_last_seq(),
                    acked: false,
                    synced: false,
                };
                if service.add_session(name.clone(), session).is_ok() {
                    obs.mirrored.inc();
                    positions.insert(name.clone(), pos);
                } else {
                    obs.mirror_failures.inc();
                }
            }
            Err(_) => obs.mirror_failures.inc(),
        }
    }
}

/// The `attempt`-th reconnect delay: bounded exponential backoff with
/// deterministic ±50% jitter, so a fleet of followers redialing a
/// restarted leader does not arrive in lockstep.
fn backoff(rng: &mut StdRng, attempt: u32, base: Duration, max: Duration) -> Duration {
    let exp = base
        .saturating_mul(2u32.saturating_pow(attempt.min(16)))
        .min(max);
    let ns = exp.as_nanos().min(u128::from(u64::MAX / 2)) as u64;
    if ns == 0 {
        return Duration::ZERO;
    }
    // exp/2 plus a uniform draw over a full exp: [exp/2, 3·exp/2], i.e.
    // exp ± 50%.  (Halving the draw instead would squeeze the band to
    // [exp/2, exp] — upward jitter gone, fleet half-synchronised.)
    Duration::from_nanos(ns / 2 + rng.random_range(0..ns + 1))
}

/// Sleep in short slices so a promotion or shutdown is never stuck
/// behind a full backoff window.
fn sleep_with_stop(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while left > Duration::ZERO && !stop.load(Ordering::SeqCst) {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// A running follower: a local read [`Server`] plus the background
/// thread tailing the leader.  See the module docs.
pub struct Replica<F: ComponentFamily + Send + Sync + 'static> {
    server: Arc<Server<F>>,
    stop: Arc<AtomicBool>,
    tail: JoinHandle<()>,
    link: Arc<Mutex<Option<TcpStream>>>,
    fault: Arc<Mutex<Option<String>>>,
    leader: String,
    root: Arc<Mutex<String>>,
}

impl<F: ComponentFamily + Send + Sync + 'static> Replica<F> {
    /// Sync `service` against the leader at `leader_addr`, then bind
    /// `addr` and serve reads while tailing the leader's live shipments.
    ///
    /// Every durable session already open in `service` is replicated
    /// (sessions without a write-ahead log cannot mirror one and are
    /// served as-is).  The sessions are flipped read-only — durable
    /// writes are refused with `NotLeader { leader_addr }` — until
    /// [`Replica::promote`].
    ///
    /// # Errors
    /// [`ReplicaError::Connect`] when the leader stays unreachable
    /// through [`ReplicaOptions::connect_attempts`];
    /// [`ReplicaError::Refused`] when it refuses a session (split
    /// brain); [`ReplicaError::Bind`] when the local server cannot bind.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        leader_addr: &str,
        service: Service<F>,
        options: ReplicaOptions,
    ) -> Result<Replica<F>, ReplicaError> {
        Replica::start_inner(addr, leader_addr, service, options, None)
    }

    /// [`Replica::start`] with a [`Mirror`]: sessions this follower does
    /// not hold — listed by the upstream now or created on the leader
    /// later — are opened locally from the mirror spec, adopted, and
    /// tailed.  See the module docs' *Topology* section.
    ///
    /// # Errors
    /// As [`Replica::start`].
    pub fn start_with_mirror<A: ToSocketAddrs>(
        addr: A,
        leader_addr: &str,
        service: Service<F>,
        options: ReplicaOptions,
        mirror: Mirror<F>,
    ) -> Result<Replica<F>, ReplicaError> {
        Replica::start_inner(addr, leader_addr, service, options, Some(mirror))
    }

    fn start_inner<A: ToSocketAddrs>(
        addr: A,
        leader_addr: &str,
        mut service: Service<F>,
        options: ReplicaOptions,
        mirror: Option<Mirror<F>>,
    ) -> Result<Replica<F>, ReplicaError> {
        let obs = ReplObs::new(service.registry());
        let names: Vec<String> = service
            .session_names()
            .map(str::to_owned)
            .collect::<Vec<_>>()
            .into_iter()
            .filter(|n| service.session(n).is_some_and(|s| s.is_durable()))
            .collect();
        let mut positions: BTreeMap<String, Position> = names
            .iter()
            .map(|n| {
                let s = service.session(n).expect("durable session");
                (
                    n.clone(),
                    Position {
                        gen: s.wal_gen(),
                        applied: s.wal_last_seq(),
                        target: s.wal_last_seq(),
                        acked: false,
                        synced: false,
                    },
                )
            })
            .collect();

        // Phase A: initial sync, synchronous, before serving anything —
        // a read served by this replica is never older than the leader
        // state at start time.
        let never_stop = AtomicBool::new(false);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut attempt: u32 = 0;
        let mut root = leader_addr.to_owned();
        loop {
            let broke = match LeaderLink::connect(leader_addr, options.read_timeout) {
                Err(e) => StreamBreak::Lost(e.to_string()),
                Ok(mut link) => {
                    obs.connected.set(1);
                    let broke = match link.learn_sessions() {
                        Err(e) => StreamBreak::Lost(format!("sessions exchange failed: {e}")),
                        Ok(reply) => {
                            // A chained upstream forwards the *root*
                            // leader's address; an upstream that is
                            // itself the root forwards nothing.
                            root = reply
                                .leader
                                .clone()
                                .unwrap_or_else(|| leader_addr.to_owned());
                            if let Some(m) = &mirror {
                                discover_into_service(
                                    m,
                                    &reply.sessions,
                                    &mut service,
                                    &mut positions,
                                    &obs,
                                );
                            }
                            pump_streams(
                                &mut link,
                                &mut positions,
                                |session, kind| Some(apply_direct(&mut service, session, kind)),
                                None,
                                &obs,
                                &never_stop,
                                true,
                                || {},
                                |_, _| {},
                            )
                        }
                    };
                    obs.connected.set(0);
                    broke
                }
            };
            match broke {
                StreamBreak::Synced => break,
                StreamBreak::Refused { session, detail } => {
                    return Err(ReplicaError::Refused { session, detail });
                }
                StreamBreak::Lost(detail) => {
                    attempt += 1;
                    if attempt >= options.connect_attempts.max(1) {
                        return Err(ReplicaError::Connect { detail });
                    }
                    obs.reconnects.inc();
                    std::thread::sleep(backoff(
                        &mut rng,
                        attempt - 1,
                        options.retry_base,
                        options.retry_max,
                    ));
                }
                StreamBreak::Stopped => unreachable!("stop is never raised during initial sync"),
            }
        }
        obs.connected.set(1);

        // Phase B: flip read-only (pointing writers at the *root*
        // leader, not the next hop), serve, tail.
        let replicated: Vec<String> = positions.keys().cloned().collect();
        for name in &replicated {
            if let Some(s) = service.session_mut(name) {
                s.set_read_only(Some(root.clone()));
            }
        }
        let server = Arc::new(
            Server::bind_with(addr, service, options.serve.clone()).map_err(|e| {
                ReplicaError::Bind {
                    detail: e.to_string(),
                }
            })?,
        );
        server.set_leader_hint(Some(root.clone()));
        server.topo_set_upstream(Some(leader_addr.to_owned()));
        let root = Arc::new(Mutex::new(root));
        let stop = Arc::new(AtomicBool::new(false));
        let link = Arc::new(Mutex::new(None));
        let fault = Arc::new(Mutex::new(None));
        let tail = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let link = Arc::clone(&link);
            let fault = Arc::clone(&fault);
            let root = Arc::clone(&root);
            let obs = obs.clone();
            let leader = leader_addr.to_owned();
            let options = options.clone();
            std::thread::spawn(move || {
                tail_loop(
                    &server, positions, &leader, &stop, &link, &fault, &obs, &options, mirror,
                    &root,
                );
            })
        };
        Ok(Replica {
            server,
            stop,
            tail,
            link,
            fault,
            leader: leader_addr.to_owned(),
            root,
        })
    }

    /// The address the follower is serving reads on.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The upstream address this replica tails — in a chain, the next
    /// hop, not necessarily the root.
    pub fn leader_addr(&self) -> &str {
        &self.leader
    }

    /// The *root* leader's address, as forwarded down the chain by the
    /// upstream's `Sessions` exchange (what `NotLeader` rejections point
    /// writers at).  Equals [`Replica::leader_addr`] when the upstream
    /// is itself the root; re-learned on every tail reconnect.
    pub fn root_addr(&self) -> String {
        self.root.lock().expect("root").clone()
    }

    /// Why the tail loop stopped for good, if it has (a leader refusal —
    /// split brain — is fatal and never retried).  `None` while healthy
    /// or merely reconnecting.
    pub fn fault(&self) -> Option<String> {
        self.fault.lock().expect("fault").clone()
    }

    /// Stop the tail loop and cut any blocked leader read.
    fn stop_tail(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(s) = self.link.lock().expect("link").take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Promote this follower to a leader: stop tailing (pending applies
    /// land first), fsync every session's log, flip the sessions
    /// writable, and hand back the server — same address, now accepting
    /// durable writes.  Explicit and safe: nothing the old leader acked
    /// and shipped here is lost, and nothing unshipped can be invented.
    ///
    /// # Errors
    /// [`ReplicaError::Promote`] when a log cannot be fsynced.
    pub fn promote(self) -> Result<Server<F>, ReplicaError> {
        self.stop_tail();
        let _ = self.tail.join();
        // A leader forwards no hint: its own address is the answer.
        self.server.set_leader_hint(None);
        self.server.topo_set_upstream(None);
        self.server
            .promote_partitions()
            .map_err(|detail| ReplicaError::Promote { detail })?;
        Arc::try_unwrap(self.server).map_err(|_| ReplicaError::Promote {
            detail: "replica server still shared after tail join".to_owned(),
        })
    }

    /// Stop tailing and shut the read server down, returning the
    /// follower's service (sessions still read-only).
    ///
    /// # Panics
    /// Panics if the inner server is still shared after the tail thread
    /// joined (cannot happen through this API).
    pub fn shutdown(self) -> Service<F> {
        self.stop_tail();
        let _ = self.tail.join();
        match Arc::try_unwrap(self.server) {
            Ok(server) => server.shutdown(),
            Err(_) => panic!("replica server still shared after tail join"),
        }
    }
}

/// The background tail: reconnect-and-stream until stopped or fatally
/// refused.  Each connection starts with a `Sessions` exchange — the
/// root-leader hint is re-learned (and propagated to the local sessions
/// and the local server's own hint when it moved), and new upstream
/// sessions are mirrored when a [`Mirror`] is configured; the listing is
/// then re-polled on `discover_interval` while streaming.
#[allow(clippy::too_many_arguments)] // internal plumbing for one thread
fn tail_loop<F: ComponentFamily + Send + Sync + 'static>(
    server: &Arc<Server<F>>,
    mut positions: BTreeMap<String, Position>,
    leader: &str,
    stop: &AtomicBool,
    link_slot: &Mutex<Option<TcpStream>>,
    fault: &Mutex<Option<String>>,
    obs: &ReplObs,
    options: &ReplicaOptions,
    mirror: Option<Mirror<F>>,
    root_slot: &Mutex<String>,
) {
    if positions.is_empty() && mirror.is_none() {
        return; // nothing to tail, nothing to discover
    }
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x7461_696c); // "tail"
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        match LeaderLink::connect(leader, options.read_timeout) {
            Err(_) => {
                obs.reconnects.inc();
            }
            Ok(mut link) => {
                *link_slot.lock().expect("link") = link.shutdown_handle();
                obs.connected.set(1);
                attempt = 0;
                let broke = match link.learn_sessions() {
                    Err(e) => StreamBreak::Lost(format!("sessions exchange failed: {e}")),
                    Ok(reply) => {
                        let new_root = reply.leader.clone().unwrap_or_else(|| leader.to_owned());
                        {
                            let mut cur = root_slot.lock().expect("root");
                            if *cur != new_root {
                                // The root moved (an upstream promoted):
                                // repoint the hint this node forwards and
                                // every local `NotLeader` target.
                                *cur = new_root.clone();
                                server.set_leader_hint(Some(new_root.clone()));
                                server.retarget(new_root.clone());
                            }
                        }
                        let mut adopt = |name: &str| -> Option<Position> {
                            let m = mirror.as_ref()?;
                            match open_mirror_session(m, name) {
                                Ok(None) => None,
                                Ok(Some(mut session)) => {
                                    session.set_read_only(Some(
                                        root_slot.lock().expect("root").clone(),
                                    ));
                                    let pos = Position {
                                        gen: session.wal_gen(),
                                        applied: session.wal_last_seq(),
                                        target: session.wal_last_seq(),
                                        acked: false,
                                        synced: false,
                                    };
                                    match server.adopt_session(name, session) {
                                        Ok(()) => {
                                            obs.mirrored.inc();
                                            Some(pos)
                                        }
                                        Err(_) => {
                                            obs.mirror_failures.inc();
                                            None
                                        }
                                    }
                                }
                                Err(_) => {
                                    obs.mirror_failures.inc();
                                    None
                                }
                            }
                        };
                        for name in &reply.sessions {
                            if !positions.contains_key(name) {
                                if let Some(pos) = adopt(name) {
                                    positions.insert(name.clone(), pos);
                                }
                            }
                        }
                        pump_streams(
                            &mut link,
                            &mut positions,
                            |session, kind| server.enqueue_apply(session, kind).recv().ok(),
                            Some(Discover {
                                adopt: &mut adopt,
                                interval: options.discover_interval,
                            }),
                            obs,
                            stop,
                            false,
                            || server.topo_note_frame(),
                            |session, target| server.topo_note_link(session, target),
                        )
                    }
                };
                obs.connected.set(0);
                *link_slot.lock().expect("link") = None;
                match broke {
                    StreamBreak::Stopped | StreamBreak::Synced => return,
                    StreamBreak::Refused { session, detail } => {
                        *fault.lock().expect("fault") =
                            Some(format!("leader refused {session:?}: {detail}"));
                        return;
                    }
                    StreamBreak::Lost(_) => {
                        obs.reconnects.inc();
                    }
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        sleep_with_stop(
            backoff(&mut rng, attempt, options.retry_base, options.retry_max),
            stop,
        );
        attempt = attempt.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented contract: bounded exponential with ±50% jitter —
    /// every draw lands in [exp/2, 3·exp/2] and, crucially, both halves
    /// of the band are actually reachable (the pre-fix formula never
    /// jittered upward, so a fleet's retries bunched at the low end).
    #[test]
    fn backoff_jitter_spans_plus_minus_half() {
        let base = Duration::from_millis(50);
        let max = Duration::from_secs(2);
        for seed in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for attempt in 0..12u32 {
                let exp = base
                    .saturating_mul(2u32.saturating_pow(attempt.min(16)))
                    .min(max);
                let d = backoff(&mut rng, attempt, base, max);
                assert!(
                    d >= exp / 2 && d <= exp * 3 / 2,
                    "attempt {attempt}: {d:?} outside [{:?}, {:?}]",
                    exp / 2,
                    exp * 3 / 2
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let exp = Duration::from_millis(50);
        let (mut below, mut above) = (false, false);
        for _ in 0..256 {
            let d = backoff(&mut rng, 0, exp, max);
            below |= d < exp;
            above |= d > exp;
        }
        assert!(below && above, "jitter never left one side of the band");
    }

    /// A zero base never divides by zero or sleeps.
    #[test]
    fn backoff_zero_base_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            backoff(&mut rng, 0, Duration::ZERO, Duration::ZERO),
            Duration::ZERO
        );
    }
}
