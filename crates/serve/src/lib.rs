//! Network front end for `compview-session`: a length-prefixed,
//! CRC-checksummed wire protocol ([`proto`]), a threaded TCP server that
//! amortises concurrent requests into deterministic
//! [`Service::dispatch`](compview_session::Service::dispatch) batches
//! ([`server`]), and a blocking, pipelining client ([`client`]).
//!
//! The wire format reuses the session crate's canonical binary codec: a
//! request's bytes on the wire are exactly its bytes in the write-ahead
//! log, and every frame is CRC-gated before interpretation, so the same
//! corruption discipline governs disk and network.  Batching composes
//! with the service's group commit — each dispatched batch costs one
//! fsync per touched session, so N concurrent durable clients pay ~1
//! fsync each per *batch*, not per request.
//!
//! ```no_run
//! use compview_serve::{Client, Server};
//! use compview_session::{Service, SessionRequest};
//! # use compview_core::SubschemaComponents;
//! # fn demo(service: Service<SubschemaComponents>) -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind("127.0.0.1:0", service)?;
//! let mut client = Client::connect(server.local_addr())?;
//! let answer = client.request("alpha", &SessionRequest::Stats)?;
//! let service = server.shutdown(); // take the sessions back
//! # Ok(()) }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod replica;
pub mod server;

pub use client::{Client, ServerMessage, WireResult};
pub use proto::{ProtoError, TopoRole, TopoSession, TopologyReply, HANDSHAKE, MAX_FRAME};
pub use replica::{Mirror, MirrorSpec, Replica, ReplicaError, ReplicaOptions};
pub use server::{ServeOptions, Server};
