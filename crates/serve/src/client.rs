//! A blocking client for the wire protocol.
//!
//! [`Client::request`] is the simple call-and-wait path.  For batching —
//! the whole point of the server's dispatcher — use [`Client::send`] to
//! pipeline many requests and [`Client::recv`] to collect the responses:
//! the server answers one connection's requests strictly in order.

use crate::proto::{
    decode_metrics_response_payload, decode_result_payload, encode_metrics_request_payload,
    encode_request_payload, expect_handshake, read_frame, send_handshake, write_frame, ProtoError,
};
use compview_obs::MetricsSnapshot;
use compview_session::{DispatchError, SessionRequest, SessionResponse};
use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};

/// One outcome off the wire: the service's per-request answer (itself a
/// `Result`, exactly what `Service::dispatch` produced on the far side).
pub type WireResult = Result<SessionResponse, DispatchError>;

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and exchange handshakes.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ProtoError> {
        let mut stream = TcpStream::connect(addr)?;
        // Small request frames must leave as soon as they're written —
        // Nagle + the peer's delayed ACK would add ~40 ms per round trip.
        let _ = stream.set_nodelay(true);
        send_handshake(&mut stream)?;
        expect_handshake(&mut stream)?;
        Ok(Client { stream })
    }

    /// Send one request without waiting for its response (pipelining).
    /// Responses arrive in send order; collect them with
    /// [`Client::recv`].
    pub fn send(&mut self, session: &str, req: &SessionRequest) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, &encode_request_payload(session, req))
    }

    /// Receive the next response.
    ///
    /// # Errors
    /// [`ProtoError::Io`] with [`ErrorKind::UnexpectedEof`] when the
    /// server hung up with responses still owed.
    pub fn recv(&mut self) -> Result<WireResult, ProtoError> {
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ProtoError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection with a response still owed",
            ))
        })?;
        Ok(decode_result_payload(&payload)?)
    }

    /// Send one request and wait for its response.
    pub fn request(
        &mut self,
        session: &str,
        req: &SessionRequest,
    ) -> Result<WireResult, ProtoError> {
        self.send(session, req)?;
        self.recv()
    }

    /// Send a metrics-snapshot request without waiting (pipelining);
    /// collect the answer with [`Client::recv_metrics`].  The response
    /// slots into this connection's FIFO like any other request, so a
    /// probe pipelined behind N requests observes all N.
    pub fn send_metrics(&mut self) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, &encode_metrics_request_payload())
    }

    /// Receive the response to a [`Client::send_metrics`].
    ///
    /// # Errors
    /// As [`Client::recv`], plus [`ProtoError::Metrics`] when the frame
    /// does not hold a valid metrics snapshot (e.g. the next owed
    /// response was for an ordinary request — calls must pair up).
    pub fn recv_metrics(&mut self) -> Result<MetricsSnapshot, ProtoError> {
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ProtoError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection with a metrics response still owed",
            ))
        })?;
        Ok(decode_metrics_response_payload(&payload)?)
    }

    /// Fetch the service-wide metrics snapshot.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ProtoError> {
        self.send_metrics()?;
        self.recv_metrics()
    }
}
