//! A blocking client for the wire protocol.
//!
//! [`Client::request`] is the simple call-and-wait path.  For batching —
//! the whole point of the server's dispatcher — use [`Client::send`] to
//! pipeline many requests and [`Client::recv`] to collect the responses:
//! the server answers one connection's requests strictly in order.
//!
//! # Delta events
//!
//! Once a `Subscribe` request is answered, the server interleaves
//! unsolicited event frames into the stream.  The client sorts arrivals
//! into an inbox: [`Client::recv`] returns the next *response* (parking
//! any events it reads past), [`Client::next_event`] returns the next
//! *event* (parking responses), and [`Client::recv_message`] returns
//! whatever comes next, preserving the server's interleaving.  A client
//! that never subscribes never sees an event and can ignore all of this.

use crate::proto::{
    decode_event_payload, decode_metrics_response_payload, decode_result_payload,
    decode_sessions_reply_payload, decode_topology_reply_payload, decode_trace_response_payload,
    encode_metrics_request_payload, encode_read_at_payload, encode_request_payload,
    encode_sessions_payload, encode_topology_request_payload, encode_trace_request_payload,
    encode_traced_request_payload, expect_handshake, is_event_payload, read_frame, send_handshake,
    write_frame, ProtoError, SessionsReply, TopologyReply,
};
use compview_obs::{MetricsSnapshot, TraceCtx, TraceSnapshot};
use compview_session::{DeltaEvent, DispatchError, SessionRequest, SessionResponse};
use std::collections::VecDeque;
use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};

/// One outcome off the wire: the service's per-request answer (itself a
/// `Result`, exactly what `Service::dispatch` produced on the far side).
pub type WireResult = Result<SessionResponse, DispatchError>;

/// One arrival off the wire, in server order.
#[derive(Debug)]
pub enum ServerMessage {
    /// The answer to the connection's oldest unanswered request.
    Reply(WireResult),
    /// An unsolicited delta event, tagged with its owning session.
    Event {
        /// The session the subscription lives in.
        session: String,
        /// The event itself.
        event: DeltaEvent,
    },
}

/// An inbox entry: events are decoded eagerly (to classify them),
/// solicited payloads lazily (the consumer knows whether it expects a
/// result or a metrics snapshot).
enum Arrival {
    Event(String, DeltaEvent),
    Solicited(Vec<u8>),
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    inbox: VecDeque<Arrival>,
    /// Once the transport has failed: why.  Every later send or receive
    /// returns the same [`ProtoError::ConnectionLost`] instead of a
    /// fresh (and possibly different) I/O error from a dead socket —
    /// callers that keep polling after a loss see one deterministic
    /// answer, never a panic or a shifting errno.  Arrivals parked in
    /// the inbox *before* the loss stay readable.
    lost: Option<String>,
}

impl Client {
    /// Connect and exchange handshakes.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ProtoError> {
        let mut stream = TcpStream::connect(addr)?;
        // Small request frames must leave as soon as they're written —
        // Nagle + the peer's delayed ACK would add ~40 ms per round trip.
        let _ = stream.set_nodelay(true);
        send_handshake(&mut stream)?;
        expect_handshake(&mut stream)?;
        Ok(Client {
            stream,
            inbox: VecDeque::new(),
            lost: None,
        })
    }

    /// The sticky error, if the transport has already failed.
    fn lost_err(&self) -> Option<ProtoError> {
        self.lost.as_ref().map(|detail| ProtoError::ConnectionLost {
            detail: detail.clone(),
        })
    }

    /// Poison the connection (first detail wins) and return the sticky
    /// error.
    fn mark_lost(&mut self, detail: String) -> ProtoError {
        let detail = self.lost.get_or_insert(detail).clone();
        ProtoError::ConnectionLost { detail }
    }

    /// Send one request without waiting for its response (pipelining).
    /// Responses arrive in send order; collect them with
    /// [`Client::recv`].
    ///
    /// # Errors
    /// [`ProtoError::ConnectionLost`] — deterministically, on every call
    /// — once the transport has failed.
    pub fn send(&mut self, session: &str, req: &SessionRequest) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        write_frame(&mut self.stream, &encode_request_payload(session, req)).map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Send one request tagged with a trace context (pipelining, like
    /// [`Client::send`]).  The server parents its own spans under
    /// `ctx.parent_span` when the trace is sampled; an unsampled or
    /// untagged request dispatches byte-identically either way, so old
    /// and new clients interoperate freely.  The client records no span
    /// itself — callers that want a `client.send` root span own a
    /// [`compview_obs::DistTracer`] and pass the span's context here.
    pub fn send_traced(
        &mut self,
        session: &str,
        req: &SessionRequest,
        ctx: TraceCtx,
    ) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        write_frame(
            &mut self.stream,
            &encode_traced_request_payload(session, req, ctx),
        )
        .map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Send one traced request and wait for its response.
    pub fn request_traced(
        &mut self,
        session: &str,
        req: &SessionRequest,
        ctx: TraceCtx,
    ) -> Result<WireResult, ProtoError> {
        self.send_traced(session, req, ctx)?;
        self.recv()
    }

    /// Read one frame off the wire and classify it.
    fn read_arrival(&mut self, owed: &str) -> Result<Arrival, ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        let payload = match read_frame(&mut self.stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                return Err(self.mark_lost(format!(
                    "server closed the connection with {owed} still owed"
                )))
            }
            Err(ProtoError::Io(io)) => return Err(self.mark_lost(format!("receive failed: {io}"))),
            // A framing violation (bad CRC, over-limit length, torn
            // stream): surface it as-is this once, but nothing after it
            // can be trusted — poison the connection.
            Err(other) => {
                self.lost
                    .get_or_insert_with(|| format!("stream desynchronised: {other}"));
                return Err(other);
            }
        };
        if is_event_payload(&payload) {
            let (session, event) = decode_event_payload(&payload)?;
            Ok(Arrival::Event(session, event))
        } else {
            Ok(Arrival::Solicited(payload))
        }
    }

    /// The next solicited payload, parking events read past.
    fn next_solicited(&mut self, owed: &str) -> Result<Vec<u8>, ProtoError> {
        if let Some(at) = self
            .inbox
            .iter()
            .position(|a| matches!(a, Arrival::Solicited(_)))
        {
            let Some(Arrival::Solicited(payload)) = self.inbox.remove(at) else {
                unreachable!("position() found a solicited arrival");
            };
            return Ok(payload);
        }
        loop {
            match self.read_arrival(owed)? {
                Arrival::Solicited(payload) => return Ok(payload),
                event => self.inbox.push_back(event),
            }
        }
    }

    /// Receive the next response, parking any delta events that arrive
    /// first (collect those with [`Client::next_event`]).
    ///
    /// # Errors
    /// [`ProtoError::ConnectionLost`] when the server hung up with
    /// responses still owed — and deterministically on every call after
    /// any transport loss.
    pub fn recv(&mut self) -> Result<WireResult, ProtoError> {
        let payload = self.next_solicited("a response")?;
        Ok(decode_result_payload(&payload)?)
    }

    /// Receive the next delta event, parking any responses that arrive
    /// first.  Blocks until an event arrives — only call this when one
    /// is owed (the stream of a live subscription after a mutation) or
    /// expected eventually.
    pub fn next_event(&mut self) -> Result<(String, DeltaEvent), ProtoError> {
        if let Some(at) = self
            .inbox
            .iter()
            .position(|a| matches!(a, Arrival::Event(_, _)))
        {
            let Some(Arrival::Event(session, event)) = self.inbox.remove(at) else {
                unreachable!("position() found an event arrival");
            };
            return Ok((session, event));
        }
        loop {
            match self.read_arrival("an event")? {
                Arrival::Event(session, event) => return Ok((session, event)),
                solicited => self.inbox.push_back(solicited),
            }
        }
    }

    /// Receive whatever the server sent next — response or event — in
    /// exact server order.  Responses are decoded as dispatch outcomes;
    /// pair metrics probes with [`Client::recv_metrics`] instead of
    /// interleaving them through this call.
    pub fn recv_message(&mut self) -> Result<ServerMessage, ProtoError> {
        let arrival = match self.inbox.pop_front() {
            Some(a) => a,
            None => self.read_arrival("a frame")?,
        };
        Ok(match arrival {
            Arrival::Event(session, event) => ServerMessage::Event { session, event },
            Arrival::Solicited(payload) => ServerMessage::Reply(decode_result_payload(&payload)?),
        })
    }

    /// Send one request and wait for its response.
    pub fn request(
        &mut self,
        session: &str,
        req: &SessionRequest,
    ) -> Result<WireResult, ProtoError> {
        self.send(session, req)?;
        self.recv()
    }

    /// Send a metrics-snapshot request without waiting (pipelining);
    /// collect the answer with [`Client::recv_metrics`].  The response
    /// slots into this connection's FIFO like any other request, so a
    /// probe pipelined behind N requests observes all N.
    pub fn send_metrics(&mut self) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        write_frame(&mut self.stream, &encode_metrics_request_payload()).map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Receive the response to a [`Client::send_metrics`], parking delta
    /// events read past.
    ///
    /// # Errors
    /// As [`Client::recv`], plus [`ProtoError::Metrics`] when the frame
    /// does not hold a valid metrics snapshot (e.g. the next owed
    /// response was for an ordinary request — calls must pair up).
    pub fn recv_metrics(&mut self) -> Result<MetricsSnapshot, ProtoError> {
        let payload = self.next_solicited("a metrics response")?;
        Ok(decode_metrics_response_payload(&payload)?)
    }

    /// Fetch the service-wide metrics snapshot.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ProtoError> {
        self.send_metrics()?;
        self.recv_metrics()
    }

    /// Send a `Sessions` listing request without waiting (pipelining);
    /// collect the answer with [`Client::recv_sessions`].
    pub fn send_sessions(&mut self) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        write_frame(&mut self.stream, &encode_sessions_payload()).map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Receive the response to a [`Client::send_sessions`], parking
    /// delta events read past.
    ///
    /// # Errors
    /// As [`Client::recv`], plus [`ProtoError::Decode`] when the next
    /// owed response is not a sessions reply (calls must pair up).
    pub fn recv_sessions(&mut self) -> Result<SessionsReply, ProtoError> {
        let payload = self.next_solicited("a sessions reply")?;
        Ok(decode_sessions_reply_payload(&payload)?)
    }

    /// Fetch the server's durable session names and its root-leader
    /// hint: `leader` is `None` when the server *is* the leader, and the
    /// root's address when it is a follower (possibly chained).
    pub fn sessions(&mut self) -> Result<SessionsReply, ProtoError> {
        self.send_sessions()?;
        self.recv_sessions()
    }

    /// Send a `Trace` drain request without waiting (pipelining);
    /// collect the answer with [`Client::recv_trace`].  Draining is
    /// destructive: the server hands over its buffered spans and starts
    /// afresh, so one collector per node sees every sampled span exactly
    /// once.
    pub fn send_trace(&mut self) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        write_frame(&mut self.stream, &encode_trace_request_payload()).map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Receive the response to a [`Client::send_trace`], parking delta
    /// events read past.
    ///
    /// # Errors
    /// As [`Client::recv`], plus [`ProtoError::Trace`] when the next
    /// owed response is not a trace snapshot (calls must pair up).
    pub fn recv_trace(&mut self) -> Result<TraceSnapshot, ProtoError> {
        let payload = self.next_solicited("a trace snapshot")?;
        Ok(decode_trace_response_payload(&payload)?)
    }

    /// Drain the server's span buffer: every span it recorded since the
    /// last drain, across all dispatcher shards, merged in causal-friendly
    /// `(trace_id, start, span)` order.
    pub fn trace(&mut self) -> Result<TraceSnapshot, ProtoError> {
        self.send_trace()?;
        self.recv_trace()
    }

    /// Send a `Topology` request without waiting (pipelining); collect
    /// the answer with [`Client::recv_topology`].
    pub fn send_topology(&mut self) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        write_frame(&mut self.stream, &encode_topology_request_payload()).map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Receive the response to a [`Client::send_topology`], parking
    /// delta events read past.
    ///
    /// # Errors
    /// As [`Client::recv`], plus [`ProtoError::Decode`] when the next
    /// owed response is not a topology reply (calls must pair up).
    pub fn recv_topology(&mut self) -> Result<TopologyReply, ProtoError> {
        let payload = self.next_solicited("a topology reply")?;
        Ok(decode_topology_reply_payload(&payload)?)
    }

    /// Fetch this node's replication-topology self-report: role,
    /// upstream, per-session apply positions and lag ages, downstream
    /// stream and subscriber counts, heartbeat freshness.
    pub fn topology(&mut self) -> Result<TopologyReply, ProtoError> {
        self.send_topology()?;
        self.recv_topology()
    }

    /// Walk the replication chain from `addr` toward the root: connect
    /// to each node in turn, fetch its [`TopologyReply`], and follow the
    /// `upstream` pointer until a node reports none (the root) or a hop
    /// is unreachable (the walk stops with what it has).  Returns
    /// `(addr, reply)` pairs ordered from the starting node up; a cycle
    /// (possible transiently while a promotion propagates) terminates
    /// the walk rather than looping.
    pub fn topology_chain(addr: &str) -> Result<Vec<(String, TopologyReply)>, ProtoError> {
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut next = Some(addr.to_owned());
        while let Some(hop) = next.take() {
            if !seen.insert(hop.clone()) {
                break;
            }
            let reply = match Client::connect(&hop).and_then(|mut c| c.topology()) {
                Ok(r) => r,
                // The first hop must answer; later hops are best-effort
                // (an upstream may be mid-restart).
                Err(e) if out.is_empty() => return Err(e),
                Err(_) => break,
            };
            next = reply.upstream.clone();
            out.push((hop, reply));
        }
        Ok(out)
    }

    /// Send a read-your-writes `ReadAt` without waiting (pipelining):
    /// the server answers `Read { view }` on `session` once its WAL
    /// position reaches `(gen, min_seq)` — the position a leader's write
    /// response or `Stats` reported — or refuses with a typed
    /// `DispatchError::Lagging` after `wait` elapses.  Collect the
    /// answer with [`Client::recv`]; it slots into the connection's FIFO
    /// like any other request.
    pub fn send_read_at(
        &mut self,
        session: &str,
        view: &str,
        gen: u64,
        min_seq: u64,
        wait: std::time::Duration,
    ) -> Result<(), ProtoError> {
        if let Some(e) = self.lost_err() {
            return Err(e);
        }
        let wait_ms = u64::try_from(wait.as_millis()).unwrap_or(u64::MAX);
        write_frame(
            &mut self.stream,
            &encode_read_at_payload(session, view, gen, min_seq, wait_ms),
        )
        .map_err(|e| match e {
            ProtoError::Io(io) => self.mark_lost(format!("send failed: {io}")),
            other => other,
        })
    }

    /// Send one read-your-writes read and wait for its answer (see
    /// [`Client::send_read_at`]).
    pub fn read_at(
        &mut self,
        session: &str,
        view: &str,
        gen: u64,
        min_seq: u64,
        wait: std::time::Duration,
    ) -> Result<WireResult, ProtoError> {
        self.send_read_at(session, view, gen, min_seq, wait)?;
        self.recv()
    }

    /// Open a subscription on `session`/`view`: sends the `Subscribe`
    /// request and waits for the `Subscribed` response, returning the
    /// subscription id and the full image at sequence 0.  Delta events
    /// then arrive via [`Client::next_event`].
    pub fn subscribe(
        &mut self,
        session: &str,
        view: &str,
    ) -> Result<Result<(u64, compview_relation::Instance), DispatchError>, ProtoError> {
        let outcome = self.request(
            session,
            &SessionRequest::Subscribe {
                view: view.to_string(),
            },
        )?;
        Ok(match outcome {
            Ok(SessionResponse::Subscribed { sub, image, .. }) => Ok((sub, image)),
            Ok(other) => {
                return Err(ProtoError::Io(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("expected a Subscribed response, got {other:?}"),
                )))
            }
            Err(e) => Err(e),
        })
    }
}
