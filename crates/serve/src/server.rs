//! The threaded TCP front end: concurrent connections, one deterministic
//! batch dispatcher.
//!
//! # Architecture
//!
//! ```text
//! conn 1 ──reader──┐                       ┌──► responses, conn 1
//! conn 2 ──reader──┼──► queue ──dispatcher─┼──► responses, conn 2
//! conn 3 ──reader──┘    (mutex+condvar)    └──► responses, conn 3
//! ```
//!
//! One reader thread per connection decodes frames and pushes
//! `(conn, session, request)` onto a shared queue.  A single dispatcher
//! thread owns the [`Service`]; each time it wakes it drains the *whole*
//! queue as one batch, runs [`Service::dispatch`] (which fans sessions
//! out across the worker pool and group-commits each touched log with a
//! single fsync), and writes the responses back — so concurrently
//! arriving requests are amortised into batches exactly as large as the
//! server is busy.
//!
//! # Ordering
//!
//! Within one connection, responses come back in request order: the
//! reader pushes in arrival order, the queue preserves it, and the
//! dispatcher answers each batch in batch order.  Across connections no
//! order is promised (none exists to preserve).  Because
//! `Service::dispatch` serves each session's queue sequentially and
//! deterministically, how arrivals happen to split into batches can
//! never change any response — only how many fsyncs amortise.

use crate::proto::{
    decode_wire_request, encode_metrics_response_payload, encode_result_payload, expect_handshake,
    read_frame, send_handshake, write_frame, WireRequest,
};
use compview_core::ComponentFamily;
use compview_obs::{Counter, Gauge, Registry};
use compview_session::{Service, SessionRequest};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued request: which connection sent it, and what it asked.
type QueuedRequest = (u64, WireRequest);

/// Server-side instruments, registered on the service's [`Registry`] at
/// bind time so they land in the same snapshot as the session and WAL
/// metrics.
#[derive(Clone, Default)]
struct ServeObs {
    /// Connections accepted (post-handshake).
    connections: Counter,
    /// Request frames decoded off the wire.
    frames_in: Counter,
    /// Response frames written to the wire.
    frames_out: Counter,
    /// Frames (or CRC-valid payloads) refused: bad CRC, over-limit
    /// length, torn stream, undecodable payload.  Each costs its
    /// connection.
    malformed_frames: Counter,
    /// High-water mark of the dispatcher queue depth.
    queue_depth_hwm: Gauge,
}

impl ServeObs {
    fn new(registry: &Registry) -> ServeObs {
        ServeObs {
            connections: registry.counter("serve.connections"),
            frames_in: registry.counter("serve.frames_in"),
            frames_out: registry.counter("serve.frames_out"),
            malformed_frames: registry.counter("serve.malformed_frames"),
            queue_depth_hwm: registry.gauge("serve.queue_depth_hwm"),
        }
    }
}

/// State shared between the accept loop, the readers, and the
/// dispatcher.
struct Shared {
    queue: Mutex<VecDeque<QueuedRequest>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Write halves, keyed by connection id.  Only the dispatcher writes
    /// frames; the accept loop inserts, and whoever sees a dead
    /// connection removes.
    writers: Mutex<BTreeMap<u64, TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    obs: ServeObs,
}

/// A running server: call [`Server::shutdown`] to stop it and take the
/// [`Service`] (with every session's final state) back.
pub struct Server<F: ComponentFamily + Send + Sync + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<Service<F>>,
}

impl<F: ComponentFamily + Send + Sync + 'static> Server<F> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service`.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Service<F>) -> io::Result<Server<F>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            writers: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            obs: ServeObs::new(service.registry()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatch_loop(service, &shared))
        };
        Ok(Server {
            addr,
            shared,
            accept,
            dispatcher,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, drain the queue, and
    /// return the service with every session's final state.
    pub fn shutdown(self) -> Service<F> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Close the sockets out from under the readers…
        for stream in self.shared.writers.lock().expect("writers").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // …poke the accept loop awake (it checks `stop` per accept)…
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers"));
        for r in readers {
            let _ = r.join();
        }
        // …and let the dispatcher drain what is left, then exit.
        self.shared.wake.notify_all();
        self.dispatcher.join().expect("dispatcher thread")
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Responses are small frames written exactly when they're ready:
        // leaving Nagle on stalls every ping-pong client on the
        // delayed-ACK timer (~40 ms per round trip).
        let _ = stream.set_nodelay(true);
        // Handshake both ways before the connection exists at all.
        if send_handshake(&mut stream).is_err() || expect_handshake(&mut stream).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(writer) = stream.try_clone() else {
            continue;
        };
        let conn = next_conn;
        next_conn += 1;
        shared.obs.connections.inc();
        shared.writers.lock().expect("writers").insert(conn, writer);
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || read_loop(conn, stream, &shared))
        };
        shared.readers.lock().expect("readers").push(reader);
    }
}

fn read_loop(conn: u64, mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(payload)) => match decode_wire_request(&payload) {
                Ok(req) => {
                    shared.obs.frames_in.inc();
                    let mut q = shared.queue.lock().expect("queue");
                    q.push_back((conn, req));
                    shared.obs.queue_depth_hwm.raise(q.len() as u64);
                    drop(q);
                    shared.wake.notify_one();
                }
                // A CRC-valid frame that does not decode is a protocol
                // violation, not line noise: drop the connection.
                Err(_) => {
                    shared.obs.malformed_frames.inc();
                    drop_connection(conn, shared);
                    return;
                }
            },
            // Clean hangup between frames.
            Ok(None) => return,
            // Torn frame, bad CRC, over-limit length, transport failure:
            // nothing after this point can be trusted.
            Err(e) => {
                if !shared.stop.load(Ordering::SeqCst) && !is_disconnect(&e) {
                    shared.obs.malformed_frames.inc();
                }
                drop_connection(conn, shared);
                return;
            }
        }
    }
}

/// Whether a read error is an ordinary transport drop (peer vanished,
/// socket shut down) rather than bytes that were wrong.
fn is_disconnect(e: &crate::proto::ProtoError) -> bool {
    matches!(e, crate::proto::ProtoError::Io(_))
}

fn drop_connection(conn: u64, shared: &Shared) {
    if let Some(stream) = shared.writers.lock().expect("writers").remove(&conn) {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

fn dispatch_loop<F: ComponentFamily + Send + Sync>(
    mut service: Service<F>,
    shared: &Shared,
) -> Service<F> {
    loop {
        let drained: Vec<QueuedRequest> = {
            let mut q = shared.queue.lock().expect("queue");
            while q.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                q = shared.wake.wait(q).expect("queue");
            }
            if q.is_empty() {
                // Only reachable with `stop` set: drained and done.
                return service;
            }
            q.drain(..).collect()
        };
        // Split the drain into the dispatchable batch and the metrics
        // probes, remembering where each answer goes.
        let mut batch: Vec<(String, SessionRequest)> = Vec::new();
        let mut slots: Vec<(u64, Option<usize>)> = Vec::with_capacity(drained.len());
        for (conn, wire) in drained {
            match wire {
                WireRequest::Dispatch(session, req) => {
                    slots.push((conn, Some(batch.len())));
                    batch.push((session, req));
                }
                WireRequest::Metrics => slots.push((conn, None)),
            }
        }
        let results = service.dispatch(batch);
        // One snapshot answers every metrics probe of the batch, taken
        // after the batch applied — a probe pipelined behind N requests
        // on one connection observes all N (FIFO makes that a guarantee
        // worth having).
        let metrics = slots
            .iter()
            .any(|(_, s)| s.is_none())
            .then(|| encode_metrics_response_payload(&service.registry().snapshot()));
        // Batch order within one connection IS its request order, so
        // writing in batch order preserves per-connection FIFO.
        let mut writers = shared.writers.lock().expect("writers");
        for (conn, slot) in slots {
            let payload = match slot {
                Some(i) => encode_result_payload(&results[i]),
                None => metrics.clone().expect("snapshot taken above"),
            };
            if let Some(stream) = writers.get_mut(&conn) {
                if write_frame(stream, &payload).is_err() {
                    let _ = stream.shutdown(Shutdown::Both);
                    writers.remove(&conn);
                } else {
                    shared.obs.frames_out.inc();
                }
            }
        }
    }
}
