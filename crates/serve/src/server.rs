//! The threaded TCP front end: concurrent connections, a sharded pool of
//! deterministic batch dispatchers, and a push path for delta
//! subscriptions.
//!
//! # Architecture
//!
//! ```text
//! conn 1 ──reader──┐   ┌─► shard queue 0 ──dispatcher 0─► Service part 0 ─┐
//! conn 2 ──reader──┼──►┤                                                  ├─► per-conn
//! conn 3 ──reader──┘   └─► shard queue 1 ──dispatcher 1─► Service part 1 ─┘   writer
//! ```
//!
//! One reader thread per connection decodes frames and pushes each
//! request onto the queue of the shard that owns its session —
//! `shard_of(session) % N`, the stable hash partition from
//! `compview-session`.  Each of the N dispatcher threads owns one
//! [`Service`] partition; each time it wakes it drains *its whole queue*
//! as one batch, runs [`Service::dispatch`] (which fans that shard's
//! sessions across the worker pool and group-commits each touched log
//! with a single fsync), drains the delta events the batch committed,
//! and hands both to the per-connection **writer**.  Sessions never move
//! between shards, so per-session WAL bytes and responses are
//! byte-identical to a single-dispatcher server — only the parallelism
//! changes.
//!
//! # Ordering
//!
//! Within one connection, responses go out in request order even though
//! different requests may be answered by different shards: the reader
//! stamps every request with a per-connection sequence number, and the
//! writer's reorder buffer holds each finished response until all
//! lower-numbered ones have been queued.  Across connections no order is
//! promised (none exists to preserve).
//!
//! Delta-event frames are unsolicited and carry no sequence number;
//! their ordering contract is per subscription: every event goes out
//! **after** the `Subscribed` response that opened the stream, in
//! session-commit order with consecutive event sequences, and **never
//! after** the `Unsubscribed` response or a terminal event.  Two rules
//! enforce this.  First, a dispatcher delivers a batch's events *before*
//! the batch's responses — any event it drained was committed by a
//! request dispatched no later than an `Unsubscribe` answered in the
//! same batch.  Second, events for a subscription whose `Subscribed`
//! response is still waiting in the reorder buffer are **parked**, and
//! released the moment that response is queued to the wire — so a
//! subscribe pipelined with the updates that follow it still yields a
//! well-formed stream.
//!
//! # Slow consumers
//!
//! Each connection has one writer thread; a peer that stops reading
//! blocks its writer on the socket, never a dispatcher.  Undelivered
//! event frames queue per subscription up to
//! [`ServeOptions::event_outbox_cap`]; one past the cap, the server ends
//! the stream — the overflowing event is replaced by a cap-exempt
//! `Terminated(SlowConsumer)` event queued behind the frames already
//! owed, so the delivered prefix stays gapless — and the subscription is
//! removed from the session (`serve.sub.slow_drops` counts these).  Responses are never dropped — a client that pipelines
//! requests and reads nothing owes the transport that memory; the cap
//! bounds only the unsolicited stream.
//!
//! # Metrics across shards
//!
//! A `Metrics` probe is a **barrier**: the reader enqueues it on every
//! shard, each dispatcher passes it only after applying the requests it
//! drained alongside it, and the last dispatcher through takes one
//! snapshot per shard registry — each under that shard's snapshot gate,
//! so it always lands on a batch boundary, never mid-batch — and merges
//! them ([`MetricsSnapshot::merged`]).  A probe pipelined behind N
//! requests on one connection therefore observes all N, and every
//! snapshot it returns is post-batch consistent per shard.

use crate::proto::{
    decode_wire_request, encode_event_payload, encode_heartbeat_payload,
    encode_metrics_response_payload, encode_replicate_ack_payload, encode_result_payload,
    encode_sessions_reply_payload, encode_topology_reply_payload, encode_trace_response_payload,
    encode_wal_frame_payload, expect_handshake, read_frame, send_handshake, write_frame,
    ReplicateAck, SessionsReply, TopoRole, TopoSession, TopologyReply, WalFrame, WireRequest,
};
use compview_core::ComponentFamily;
use compview_obs::{Counter, Gauge, MetricsSnapshot, Registry, TraceCtx, TraceSnapshot};
use compview_session::{
    shard_of, ApplyError, CatchupPlan, DeltaEvent, DeltaKind, DispatchError, Service, Session,
    SessionRequest, SessionResponse, TerminateReason, WalShipment,
};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind_with`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Dispatcher shard count (0 is treated as 1); see
    /// [`Server::bind_sharded`].
    pub shards: usize,
    /// Undelivered delta-event frames one subscription may queue before
    /// the server declares its consumer slow and drops the subscription
    /// with a terminal `SlowConsumer` event.
    pub event_outbox_cap: usize,
    /// Undelivered WAL-shipment frames one replication stream may queue
    /// before the leader ends the stream with a `W_END` frame (the
    /// follower re-requests and catches up from its log instead).
    /// Catch-up tails queue here too, so this should comfortably exceed
    /// the longest expected log tail.
    pub repl_outbox_cap: usize,
    /// Drop a connection whose socket has been idle (no complete frame)
    /// for this long — half-open peers stop pinning reader threads.
    /// Connections with an active replication stream are exempt: a
    /// follower legitimately sends nothing for hours.  `None` (the
    /// default) waits forever.
    pub read_timeout: Option<Duration>,
    /// How often the writer of a connection with active replication
    /// streams emits a heartbeat frame when it has nothing else to send,
    /// so the follower's read timeout can tell an idle leader from a
    /// dead link.  Never sent on ordinary connections.  `None` disables
    /// heartbeats.
    pub heartbeat_interval: Option<Duration>,
    /// Distributed-tracing head-sampling rate: record the spans of a
    /// traced request iff `trace_id % trace_sample == 0`, with `0` = off
    /// (the default — traced requests dispatch identically, nothing is
    /// recorded) and `1` = always.  Every node in a replication tree
    /// should share one rate so a sampled trace is sampled at every hop.
    pub trace_sample: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            shards: 1,
            event_outbox_cap: 1024,
            repl_outbox_cap: 1 << 16,
            read_timeout: None,
            heartbeat_interval: Some(Duration::from_millis(500)),
            trace_sample: 0,
        }
    }
}

/// One outbound stream's server-side identity on a connection.
///
/// Two namespaces share the writer's parking/budget machinery:
/// subscription event streams (keyed by session + session-scoped
/// subscription id) and replication WAL streams (keyed by session + the
/// connection-local sequence number of the `Replicate` request that
/// opened them).  A session-scoped sub id and a connection-scoped
/// request seq could collide as bare numbers, so the key carries which
/// kind it is.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum StreamKey {
    /// A delta-subscription stream.
    Sub(String, u64),
    /// A replication WAL stream.
    Repl(String, u64),
}

/// What a follower asks its dispatcher to apply (see [`Item::Apply`]).
pub(crate) enum ApplyKind {
    /// One raw framed WAL record, with the distributed-trace context the
    /// leader's shipment carried (if the producing write was sampled).
    Record(Vec<u8>, Option<TraceCtx>),
    /// A raw framed record-0 checkpoint image.
    Reset(Vec<u8>),
}

/// What came of one [`Item::Apply`]: the session's authoritative
/// position after the attempt, success or not — the replica's tail loop
/// resumes from *this*, never from its own bookkeeping.
pub(crate) struct ApplyReport {
    /// The session's WAL generation after the attempt.
    pub gen: u64,
    /// The session's last WAL sequence number after the attempt.
    pub last_seq: u64,
    /// The applied sequence number, or why the record was refused.
    pub outcome: Result<u64, ApplyError>,
}

/// A parked `Sessions` listing mid-fan-out: the requesting connection
/// and seq, the countdown across shards, and the accumulated names.
type ListingSlot = (u64, u64, Arc<AtomicUsize>, Arc<Mutex<Vec<String>>>);

/// A parked `Topology` probe mid-fan-out: like [`ListingSlot`], but each
/// shard contributes `(session, gen, applied_seq)` rows.
type TopoSlot = (
    u64,
    u64,
    Arc<AtomicUsize>,
    Arc<Mutex<Vec<(String, u64, u64)>>>,
);

/// A parked session adoption: the name, the boxed `Session<F>` in
/// transit to its shard, and the channel the outcome is acked on.
type AdoptSlot = (
    String,
    Box<dyn Any + Send>,
    mpsc::Sender<Result<(), String>>,
);

/// One item on a shard's queue.
enum Item {
    /// A request bound for this shard's service partition.  `trace` is
    /// the wire trace context plus the enqueue instant, carried only by
    /// [`WireRequest::DispatchTraced`] — the dispatcher turns the queue
    /// wait into a "shard.queue" span and threads the child context into
    /// the session.
    Dispatch {
        conn: u64,
        seq: u64,
        session: String,
        req: SessionRequest,
        trace: Option<(TraceCtx, Instant)>,
    },
    /// A metrics probe (enqueued on *every* shard); `left` counts the
    /// shards that have not yet passed it.  Whoever decrements it to
    /// zero answers.
    Probe {
        conn: u64,
        seq: u64,
        left: Arc<AtomicUsize>,
    },
    /// A connection died (enqueued on *every* shard): drop its
    /// subscriptions from the sessions so they stop publishing.
    Cancel { conn: u64 },
    /// A follower asks to tail `session`'s WAL: answer with an ack, ship
    /// the catch-up, keep shipping live writes until the stream dies.
    Replicate {
        conn: u64,
        seq: u64,
        session: String,
        from_seq: u64,
        gen: u64,
    },
    /// (Follower side) apply one leader shipment to the local session;
    /// the report goes back to the replica's tail loop.
    Apply {
        session: String,
        kind: ApplyKind,
        done: mpsc::Sender<ApplyReport>,
    },
    /// (Follower side) promotion barrier, enqueued on *every* shard
    /// after the tail loop has stopped: fsync every session of this
    /// shard's partition and flip it writable.  Queue order guarantees
    /// pending `Apply` items land first.
    Promote {
        done: mpsc::Sender<Result<(), String>>,
    },
    /// A session-listing barrier (enqueued on *every* shard, like
    /// [`Item::Probe`]): each dispatcher appends its partition's durable
    /// session names to `acc`; whoever decrements `left` to zero answers
    /// with the merged, sorted list plus the root-leader hint.
    Sessions {
        conn: u64,
        seq: u64,
        left: Arc<AtomicUsize>,
        acc: Arc<Mutex<Vec<String>>>,
    },
    /// Adopt a freshly opened session into this shard's running service
    /// partition (`Server::adopt_session`).  The box holds a
    /// `Session<F>`, type-erased so this queue stays monomorphic.
    Adopt {
        name: String,
        session: Box<dyn Any + Send>,
        done: mpsc::Sender<Result<(), String>>,
    },
    /// A read-your-writes read: answer `Read { view }` on `session` once
    /// its WAL position reaches `(gen, min_seq)`, or refuse with a typed
    /// `Lagging` error when `deadline` passes first.  Waiting happens in
    /// dispatcher-local state — the queue is never blocked.
    ReadAt {
        conn: u64,
        seq: u64,
        session: String,
        view: String,
        gen: u64,
        min_seq: u64,
        deadline: Instant,
    },
    /// (Follower side) repoint this shard's read-only sessions'
    /// `NotLeader { leader_addr }` target at a new root leader (enqueued
    /// on *every* shard when a chained upstream learns its root moved).
    /// Writable sessions are untouched.
    Retarget { leader: String },
    /// A trace-drain barrier (enqueued on *every* shard, like
    /// [`Item::Probe`]): whoever decrements `left` to zero drains every
    /// shard registry's span buffer and answers with the merge.
    Trace {
        conn: u64,
        seq: u64,
        left: Arc<AtomicUsize>,
    },
    /// A topology barrier (enqueued on *every* shard): each dispatcher
    /// appends its partition's `(session, gen, applied)` rows to `acc`;
    /// whoever decrements `left` to zero folds in the shared link state
    /// and answers with a [`TopologyReply`].
    Topology {
        conn: u64,
        seq: u64,
        left: Arc<AtomicUsize>,
        acc: Arc<Mutex<Vec<(String, u64, u64)>>>,
    },
}

/// Server-side instruments, registered on shard 0's [`Registry`] (the
/// original service registry) at bind time so they land in the same
/// snapshot as the session and WAL metrics.
#[derive(Clone, Default)]
struct ServeObs {
    /// Connections accepted (post-handshake).
    connections: Counter,
    /// Request frames decoded off the wire.
    frames_in: Counter,
    /// Frames written to the wire (responses and events alike).
    frames_out: Counter,
    /// Delta-event frames accepted into a connection's outbox.
    events_out: Counter,
    /// Subscriptions dropped for falling behind
    /// ([`ServeOptions::event_outbox_cap`]).
    slow_drops: Counter,
    /// Frames (or CRC-valid payloads) refused: bad CRC, over-limit
    /// length, torn stream, undecodable payload.  Each costs its
    /// connection.
    malformed_frames: Counter,
    /// High-water mark of any one shard queue's depth.
    queue_depth_hwm: Gauge,
    /// Connections dropped for sitting idle past
    /// [`ServeOptions::read_timeout`].
    idle_disconnects: Counter,
    /// Replication streams opened / closed (for any reason) — the
    /// difference is the live count.
    repl_streams_opened: Counter,
    /// See [`ServeObs::repl_streams_opened`].
    repl_streams_closed: Counter,
    /// WAL frames (records, resets, catch-up included) accepted into
    /// connection outboxes for followers.
    repl_records_out: Counter,
    /// Payload bytes of those frames — the node's replication egress,
    /// the quantity chaining exists to take off the root leader.
    repl_bytes_out: Counter,
}

impl ServeObs {
    fn new(registry: &Registry) -> ServeObs {
        ServeObs {
            connections: registry.counter("serve.connections"),
            frames_in: registry.counter("serve.frames_in"),
            frames_out: registry.counter("serve.frames_out"),
            events_out: registry.counter("serve.events_out"),
            slow_drops: registry.counter("serve.sub.slow_drops"),
            malformed_frames: registry.counter("serve.malformed_frames"),
            queue_depth_hwm: registry.gauge("serve.queue_depth_hwm"),
            idle_disconnects: registry.counter("serve.idle_disconnects"),
            repl_streams_opened: registry.counter("serve.repl.streams_opened"),
            repl_streams_closed: registry.counter("serve.repl.streams_closed"),
            repl_records_out: registry.counter("serve.repl.records_out"),
            repl_bytes_out: registry.counter("serve.repl.bytes_out"),
        }
    }
}

/// One shard's request queue.
struct ShardQueue {
    queue: Mutex<VecDeque<Item>>,
    wake: Condvar,
}

/// A side effect a response frame carries into the writer: applied at
/// the moment the frame leaves the reorder buffer, so route state
/// changes exactly where the frame lands in the wire order.
enum RouteChange {
    /// A `Subscribed` response (or a streaming `Replicate` ack): start
    /// the stream — release any parked frames right behind this one.
    Activate(StreamKey),
    /// An `Unsubscribed` response: the stream is over.
    Deactivate(StreamKey),
}

/// The outbound half of one connection, owned by its writer thread and
/// fed by dispatchers.
struct OutState {
    /// The sequence number the wire expects next.
    next_seq: u64,
    /// Finished responses waiting for their turn, keyed by sequence.
    pending: BTreeMap<u64, (Vec<u8>, Option<RouteChange>)>,
    /// Frames in final wire order, waiting for the writer thread.  The
    /// tag is the stream whose outbox budget the frame occupies
    /// (unsolicited event / WAL frames only).
    ready: VecDeque<(Vec<u8>, Option<StreamKey>)>,
    /// Streams whose opening response has been queued; their frames go
    /// straight to `ready`.
    active: BTreeSet<StreamKey>,
    /// Unsolicited frames awaiting their opening response, per stream,
    /// with their budget flag.
    parked: BTreeMap<StreamKey, Vec<(Vec<u8>, bool)>>,
    /// Streams already ended by a parked terminal frame: discard
    /// anything further, clean up at activation.
    dead: BTreeSet<StreamKey>,
    /// Undelivered frames per stream (parked + ready), the count the
    /// outbox caps bound ([`ServeOptions::event_outbox_cap`] for
    /// subscriptions, [`ServeOptions::repl_outbox_cap`] for replication).
    queued: BTreeMap<StreamKey, usize>,
    /// Set on connection death and server shutdown; the writer exits,
    /// producers stop queueing.
    closed: bool,
}

/// A connection's outbound mailbox plus the handle other threads use to
/// tear the socket down (the writer thread writes through its own
/// clone).
struct ConnSlot {
    state: Mutex<OutState>,
    wake: Condvar,
    stream: TcpStream,
}

impl ConnSlot {
    /// Mark the connection closed and release its writer.
    fn close(&self) {
        let mut st = self.state.lock().expect("out state");
        st.closed = true;
        st.ready.clear();
        drop(st);
        self.wake.notify_all();
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// State shared between the accept loop, the readers, the writers, and
/// the dispatchers.
struct Shared {
    shards: Vec<ShardQueue>,
    /// Per-shard snapshot gates: held by a dispatcher around
    /// [`Service::dispatch`] (and the event drain that follows it),
    /// taken by a metrics probe around that shard's registry snapshot —
    /// so a probe snapshot always lands on a batch boundary (and the
    /// lock handoff makes the shard's relaxed counter writes visible to
    /// the prober).
    snap_gates: Vec<Mutex<()>>,
    /// Per-shard registries, shard 0's being the original service
    /// registry.  Clones of the live registries — valid even after a
    /// dispatcher thread has exited with its service.
    registries: Vec<Registry>,
    stop: AtomicBool,
    /// Connection outbound slots, keyed by connection id.  The accept
    /// loop inserts; whoever sees a dead connection removes.
    conns: Mutex<BTreeMap<u64, Arc<ConnSlot>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    event_outbox_cap: usize,
    repl_outbox_cap: usize,
    read_timeout: Option<Duration>,
    heartbeat_interval: Option<Duration>,
    /// Connections with live replication streams (refcounted per
    /// stream): exempt from the idle read timeout, since a streaming
    /// follower legitimately sends nothing for hours.
    repl_conns: Mutex<BTreeMap<u64, usize>>,
    /// The *root* leader's address when this node is a follower (set by
    /// the replica's tail machinery, cleared on promote) — what a
    /// `Sessions` reply forwards so chained followers can name where
    /// writes actually go.  `None` on a writable node.
    leader_hint: Mutex<Option<String>>,
    /// Replication-tree facts the replica layer maintains for the
    /// `Topology` verb (default — a plain root — on a leader).
    topo: Mutex<TopoState>,
    obs: ServeObs,
}

/// What the replica layer tells the server about its place in the
/// replication tree (see [`Item::Topology`]).
#[derive(Default)]
struct TopoState {
    /// The upstream this node tails (`None` on a root, cleared on
    /// promote).
    upstream: Option<String>,
    /// Whether this node was promoted out of followership.
    promoted: bool,
    /// When the last upstream frame — shipment *or* heartbeat — arrived.
    /// Recorded by the replica's pump thread as the frame comes off the
    /// socket, so a silently dead link (frames swallowed, no FIN) shows
    /// up as a growing age even while the read timeout has not fired.
    last_frame: Option<Instant>,
    /// Per-session upstream position: the leader's last known sequence
    /// number and when this node last applied a shipment for it.
    links: BTreeMap<String, (u64, Instant)>,
}

/// Milliseconds from `earlier` to `now`, saturating.
fn ms_since(now: Instant, earlier: Instant) -> u64 {
    u64::try_from(now.saturating_duration_since(earlier).as_millis()).unwrap_or(u64::MAX)
}

/// Wall-clock nanoseconds since the Unix epoch (span timestamps).
fn wall_clock_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// Count one more live replication stream against `conn`.
fn repl_conn_add(shared: &Shared, conn: u64) {
    *shared
        .repl_conns
        .lock()
        .expect("repl conns")
        .entry(conn)
        .or_insert(0) += 1;
}

/// Release one replication stream's claim on `conn`.
fn repl_conn_remove(shared: &Shared, conn: u64) {
    let mut conns = shared.repl_conns.lock().expect("repl conns");
    if let Some(n) = conns.get_mut(&conn) {
        *n -= 1;
        if *n == 0 {
            conns.remove(&conn);
        }
    }
}

/// A running server: call [`Server::shutdown`] to stop it and take the
/// [`Service`] (with every session's final state) back.
pub struct Server<F: ComponentFamily + Send + Sync + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatchers: Vec<JoinHandle<Service<F>>>,
}

impl<F: ComponentFamily + Send + Sync + 'static> Server<F> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` with a single dispatcher.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Service<F>) -> io::Result<Server<F>> {
        Server::bind_with(addr, service, ServeOptions::default())
    }

    /// [`Server::bind`] with dispatch sharded across `shards` dispatcher
    /// threads, sessions hash-partitioned by name (see the module docs).
    /// `shards == 0` is treated as 1.  Group commit, per-session
    /// ordering, and response bytes are identical at every shard count;
    /// the shard count only sets how many cores may dispatch at once.
    pub fn bind_sharded<A: ToSocketAddrs>(
        addr: A,
        service: Service<F>,
        shards: usize,
    ) -> io::Result<Server<F>> {
        Server::bind_with(
            addr,
            service,
            ServeOptions {
                shards,
                ..ServeOptions::default()
            },
        )
    }

    /// [`Server::bind`] with every knob explicit.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        service: Service<F>,
        options: ServeOptions,
    ) -> io::Result<Server<F>> {
        let shards = options.shards.max(1);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let parts = service.split(shards);
        // Every shard partition got its own registry (and so its own
        // span buffer) from `split`; name them all after the serving
        // address so a `Trace` drain reports one coherent node.
        let node = addr.to_string();
        for part in &parts {
            part.registry()
                .dtracer()
                .configure(&node, options.trace_sample);
        }
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| ShardQueue {
                    queue: Mutex::new(VecDeque::new()),
                    wake: Condvar::new(),
                })
                .collect(),
            snap_gates: (0..shards).map(|_| Mutex::new(())).collect(),
            registries: parts.iter().map(|p| p.registry().clone()).collect(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            writers: Mutex::new(Vec::new()),
            event_outbox_cap: options.event_outbox_cap.max(1),
            repl_outbox_cap: options.repl_outbox_cap.max(1),
            read_timeout: options.read_timeout,
            heartbeat_interval: options.heartbeat_interval,
            repl_conns: Mutex::new(BTreeMap::new()),
            leader_hint: Mutex::new(None),
            topo: Mutex::new(TopoState::default()),
            obs: ServeObs::new(parts[0].registry()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let dispatchers = parts
            .into_iter()
            .enumerate()
            .map(|(shard, part)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || dispatch_loop(shard, part, &shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept,
            dispatchers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// (Replica plumbing) hand one leader shipment to the owning shard's
    /// dispatcher; the report arrives on the returned channel once the
    /// apply has run.
    pub(crate) fn enqueue_apply(
        &self,
        session: &str,
        kind: ApplyKind,
    ) -> mpsc::Receiver<ApplyReport> {
        let (tx, rx) = mpsc::channel();
        let shard = shard_of(session, self.shared.shards.len());
        let sq = &self.shared.shards[shard];
        let mut q = sq.queue.lock().expect("queue");
        q.push_back(Item::Apply {
            session: session.to_string(),
            kind,
            done: tx,
        });
        self.shared.obs.queue_depth_hwm.raise(q.len() as u64);
        drop(q);
        sq.wake.notify_one();
        rx
    }

    /// (Replica plumbing) promotion barrier: enqueue a `Promote` on
    /// every shard — behind any pending applies — and wait for each to
    /// fsync its partition and flip its sessions writable.
    pub(crate) fn promote_partitions(&self) -> Result<(), String> {
        let (tx, rx) = mpsc::channel();
        for sq in &self.shared.shards {
            let mut q = sq.queue.lock().expect("queue");
            q.push_back(Item::Promote { done: tx.clone() });
            drop(q);
            sq.wake.notify_one();
        }
        drop(tx);
        let mut result = Ok(());
        for r in rx {
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// (Replica plumbing) repoint every read-only session's `NotLeader`
    /// target at a new root leader address: enqueued on every shard,
    /// fire-and-forget — queue order puts it ahead of any write that
    /// would be rejected with the stale address.
    pub(crate) fn retarget(&self, leader: String) {
        for sq in &self.shared.shards {
            let mut q = sq.queue.lock().expect("queue");
            q.push_back(Item::Retarget {
                leader: leader.clone(),
            });
            drop(q);
            sq.wake.notify_one();
        }
    }

    /// Number of dispatcher shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// (Replica plumbing) set or clear the root-leader address the
    /// `Sessions` verb forwards — see [`Shared::leader_hint`].
    pub(crate) fn set_leader_hint(&self, addr: Option<String>) {
        *self.shared.leader_hint.lock().expect("leader hint") = addr;
    }

    /// (Replica plumbing) set or clear the upstream address the
    /// `Topology` verb reports.  Clearing (promotion) also flips the
    /// reported role to `Promoted` and forgets link freshness.
    pub(crate) fn topo_set_upstream(&self, upstream: Option<String>) {
        let mut topo = self.shared.topo.lock().expect("topo");
        if upstream.is_none() && topo.upstream.is_some() {
            topo.promoted = true;
            topo.last_frame = None;
            topo.links.clear();
        }
        topo.upstream = upstream;
    }

    /// (Replica plumbing) note that a frame — shipment or heartbeat —
    /// just arrived from the upstream: the heartbeat-freshness clock the
    /// `Topology` verb reports restarts from now.
    pub(crate) fn topo_note_frame(&self) {
        self.shared.topo.lock().expect("topo").last_frame = Some(Instant::now());
    }

    /// (Replica plumbing) note one session's upstream position: the
    /// leader's last known sequence number, stamped now (a shipment for
    /// it was just applied, or its stream just acked).
    pub(crate) fn topo_note_link(&self, session: &str, target: u64) {
        self.shared
            .topo
            .lock()
            .expect("topo")
            .links
            .insert(session.to_owned(), (target, Instant::now()));
    }

    /// Adopt a freshly opened session into the running server under
    /// `name`, routed to the shard that owns the name.  The session joins
    /// the dispatcher's partition exactly like one opened at bind time:
    /// it is registry-rebound, serveable, and replicable the moment this
    /// returns.
    ///
    /// # Errors
    /// The name being taken, or the server shutting down before the
    /// owning dispatcher processed the adoption.
    pub fn adopt_session(&self, name: &str, session: Session<F>) -> Result<(), String> {
        let (tx, rx) = mpsc::channel();
        let shard = shard_of(name, self.shared.shards.len());
        let sq = &self.shared.shards[shard];
        let mut q = sq.queue.lock().expect("queue");
        q.push_back(Item::Adopt {
            name: name.to_owned(),
            session: Box::new(session),
            done: tx,
        });
        self.shared.obs.queue_depth_hwm.raise(q.len() as u64);
        drop(q);
        sq.wake.notify_one();
        rx.recv()
            .map_err(|_| "server stopped before the adoption ran".to_owned())?
    }

    /// Stop accepting, close every connection, drain the shard queues,
    /// and return the service — shard partitions folded back into one
    /// ([`Service::merge`]) — with every session's final state.
    pub fn shutdown(self) -> Service<F> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Close the sockets out from under the readers and writers…
        for slot in self.shared.conns.lock().expect("conns").values() {
            slot.close();
        }
        // …poke the accept loop awake (it checks `stop` per accept)…
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers"));
        for r in readers {
            let _ = r.join();
        }
        let writers = std::mem::take(&mut *self.shared.writers.lock().expect("writers"));
        for w in writers {
            let _ = w.join();
        }
        // …and let every dispatcher drain what is left, then exit.
        for sq in &self.shared.shards {
            sq.wake.notify_all();
        }
        let parts: Vec<Service<F>> = self
            .dispatchers
            .into_iter()
            .map(|d| d.join().expect("dispatcher thread"))
            .collect();
        Service::merge(parts)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Responses are small frames written exactly when they're ready:
        // leaving Nagle on stalls every ping-pong client on the
        // delayed-ACK timer (~40 ms per round trip).
        let _ = stream.set_nodelay(true);
        // Idle-connection hygiene: a peer that goes silent past the
        // timeout is dropped instead of pinning a reader thread forever
        // (replication streams are exempted in `read_loop`).
        let _ = stream.set_read_timeout(shared.read_timeout);
        // Handshake both ways before the connection exists at all.
        if send_handshake(&mut stream).is_err() || expect_handshake(&mut stream).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let (Ok(write_stream), Ok(control)) = (stream.try_clone(), stream.try_clone()) else {
            continue;
        };
        let conn = next_conn;
        next_conn += 1;
        shared.obs.connections.inc();
        let slot = Arc::new(ConnSlot {
            state: Mutex::new(OutState {
                next_seq: 0,
                pending: BTreeMap::new(),
                ready: VecDeque::new(),
                active: BTreeSet::new(),
                parked: BTreeMap::new(),
                dead: BTreeSet::new(),
                queued: BTreeMap::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            stream: control,
        });
        shared
            .conns
            .lock()
            .expect("conns")
            .insert(conn, Arc::clone(&slot));
        let writer = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || write_loop(conn, write_stream, &slot, &shared))
        };
        shared.writers.lock().expect("writers").push(writer);
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || read_loop(conn, stream, &shared))
        };
        shared.readers.lock().expect("readers").push(reader);
    }
}

fn read_loop(conn: u64, mut stream: TcpStream, shared: &Arc<Shared>) {
    let n_shards = shared.shards.len();
    let mut seq: u64 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(payload)) => match decode_wire_request(&payload) {
                Ok(wire) => {
                    shared.obs.frames_in.inc();
                    match wire {
                        WireRequest::Dispatch(session, req) => {
                            let shard = shard_of(&session, n_shards);
                            let sq = &shared.shards[shard];
                            let mut q = sq.queue.lock().expect("queue");
                            q.push_back(Item::Dispatch {
                                conn,
                                seq,
                                session,
                                req,
                                trace: None,
                            });
                            shared.obs.queue_depth_hwm.raise(q.len() as u64);
                            drop(q);
                            sq.wake.notify_one();
                        }
                        WireRequest::DispatchTraced { session, req, ctx } => {
                            let shard = shard_of(&session, n_shards);
                            let sq = &shared.shards[shard];
                            let mut q = sq.queue.lock().expect("queue");
                            q.push_back(Item::Dispatch {
                                conn,
                                seq,
                                session,
                                req,
                                trace: Some((ctx, Instant::now())),
                            });
                            shared.obs.queue_depth_hwm.raise(q.len() as u64);
                            drop(q);
                            sq.wake.notify_one();
                        }
                        WireRequest::Replicate {
                            session,
                            from_seq,
                            gen,
                        } => {
                            let shard = shard_of(&session, n_shards);
                            let sq = &shared.shards[shard];
                            let mut q = sq.queue.lock().expect("queue");
                            q.push_back(Item::Replicate {
                                conn,
                                seq,
                                session,
                                from_seq,
                                gen,
                            });
                            shared.obs.queue_depth_hwm.raise(q.len() as u64);
                            drop(q);
                            sq.wake.notify_one();
                        }
                        WireRequest::ReadAt {
                            session,
                            view,
                            gen,
                            min_seq,
                            wait_ms,
                        } => {
                            let shard = shard_of(&session, n_shards);
                            let sq = &shared.shards[shard];
                            let mut q = sq.queue.lock().expect("queue");
                            q.push_back(Item::ReadAt {
                                conn,
                                seq,
                                session,
                                view,
                                gen,
                                min_seq,
                                // Clamped so a hostile wait cannot
                                // overflow `Instant` arithmetic.
                                deadline: Instant::now()
                                    + Duration::from_millis(wait_ms.min(86_400_000)),
                            });
                            shared.obs.queue_depth_hwm.raise(q.len() as u64);
                            drop(q);
                            sq.wake.notify_one();
                        }
                        // A metrics probe fans out to every shard as a
                        // barrier; the countdown picks the answerer.
                        WireRequest::Metrics => {
                            let left = Arc::new(AtomicUsize::new(n_shards));
                            for sq in &shared.shards {
                                let mut q = sq.queue.lock().expect("queue");
                                q.push_back(Item::Probe {
                                    conn,
                                    seq,
                                    left: Arc::clone(&left),
                                });
                                shared.obs.queue_depth_hwm.raise(q.len() as u64);
                                drop(q);
                                sq.wake.notify_one();
                            }
                        }
                        // A session listing is a barrier too: every
                        // shard contributes its partition's names.
                        WireRequest::Sessions => {
                            let left = Arc::new(AtomicUsize::new(n_shards));
                            let acc = Arc::new(Mutex::new(Vec::new()));
                            for sq in &shared.shards {
                                let mut q = sq.queue.lock().expect("queue");
                                q.push_back(Item::Sessions {
                                    conn,
                                    seq,
                                    left: Arc::clone(&left),
                                    acc: Arc::clone(&acc),
                                });
                                shared.obs.queue_depth_hwm.raise(q.len() as u64);
                                drop(q);
                                sq.wake.notify_one();
                            }
                        }
                        // A trace drain is a barrier like a metrics
                        // probe: pipelined traced writes land first.
                        WireRequest::Trace => {
                            let left = Arc::new(AtomicUsize::new(n_shards));
                            for sq in &shared.shards {
                                let mut q = sq.queue.lock().expect("queue");
                                q.push_back(Item::Trace {
                                    conn,
                                    seq,
                                    left: Arc::clone(&left),
                                });
                                shared.obs.queue_depth_hwm.raise(q.len() as u64);
                                drop(q);
                                sq.wake.notify_one();
                            }
                        }
                        // Topology: every shard contributes its
                        // partition's replication positions.
                        WireRequest::Topology => {
                            let left = Arc::new(AtomicUsize::new(n_shards));
                            let acc = Arc::new(Mutex::new(Vec::new()));
                            for sq in &shared.shards {
                                let mut q = sq.queue.lock().expect("queue");
                                q.push_back(Item::Topology {
                                    conn,
                                    seq,
                                    left: Arc::clone(&left),
                                    acc: Arc::clone(&acc),
                                });
                                shared.obs.queue_depth_hwm.raise(q.len() as u64);
                                drop(q);
                                sq.wake.notify_one();
                            }
                        }
                    }
                    seq += 1;
                }
                // A CRC-valid frame that does not decode is a protocol
                // violation, not line noise: drop the connection.
                Err(_) => {
                    shared.obs.malformed_frames.inc();
                    drop_connection(conn, shared);
                    return;
                }
            },
            // Clean hangup between frames.
            Ok(None) => {
                drop_connection(conn, shared);
                return;
            }
            // Torn frame, bad CRC, over-limit length, transport failure:
            // nothing after this point can be trusted.
            Err(e) => {
                if is_idle_timeout(&e) {
                    // A follower legitimately goes quiet once its
                    // streams are up; everyone else idle past the
                    // timeout is dropped.  (A *partial* frame followed
                    // by a stall still lands in the torn-stream arm: a
                    // timeout mid-`read_exact` surfaces as a plain read
                    // error only between frames.)
                    if shared
                        .repl_conns
                        .lock()
                        .expect("repl conns")
                        .contains_key(&conn)
                    {
                        continue;
                    }
                    shared.obs.idle_disconnects.inc();
                    drop_connection(conn, shared);
                    return;
                }
                if !shared.stop.load(Ordering::SeqCst) && !is_disconnect(&e) {
                    shared.obs.malformed_frames.inc();
                }
                drop_connection(conn, shared);
                return;
            }
        }
    }
}

/// Whether a read error is an ordinary transport drop (peer vanished,
/// socket shut down) rather than bytes that were wrong.
fn is_disconnect(e: &crate::proto::ProtoError) -> bool {
    matches!(
        e,
        crate::proto::ProtoError::Io(_) | crate::proto::ProtoError::ConnectionLost { .. }
    )
}

/// Whether a read error is the socket's idle timer expiring
/// ([`ServeOptions::read_timeout`]) rather than data or a drop.
fn is_idle_timeout(e: &crate::proto::ProtoError) -> bool {
    matches!(e, crate::proto::ProtoError::Io(io)
        if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
}

fn drop_connection(conn: u64, shared: &Shared) {
    if let Some(slot) = shared.conns.lock().expect("conns").remove(&conn) {
        slot.close();
    }
    if shared.stop.load(Ordering::SeqCst) {
        return; // dispatchers are exiting; shutdown merges state anyway
    }
    // Tell every shard to drop the connection's subscriptions, so the
    // sessions stop deriving deltas nobody will receive.
    for sq in &shared.shards {
        let mut q = sq.queue.lock().expect("queue");
        q.push_back(Item::Cancel { conn });
        drop(q);
        sq.wake.notify_one();
    }
}

/// The per-connection writer: pops wire-ordered frames and writes them.
/// Socket back-pressure blocks this thread only — dispatchers and
/// readers never wait on a peer.
fn write_loop(conn: u64, mut stream: TcpStream, slot: &Arc<ConnSlot>, shared: &Arc<Shared>) {
    loop {
        let (payload, budget) = {
            let mut st = slot.state.lock().expect("out state");
            loop {
                if let Some(frame) = st.ready.pop_front() {
                    break frame;
                }
                if st.closed {
                    return;
                }
                // On a connection streaming replication, an idle writer
                // wakes on a timer and emits a heartbeat so the
                // follower's read timeout can tell an idle leader from a
                // dead link.  Ordinary connections never see one — a
                // client would misroute an unsolicited frame it is not
                // expecting.
                let hb = shared
                    .heartbeat_interval
                    .filter(|_| st.active.iter().any(|k| matches!(k, StreamKey::Repl(..))));
                match hb {
                    Some(iv) => {
                        let (guard, res) = slot.wake.wait_timeout(st, iv).expect("out state");
                        st = guard;
                        if res.timed_out() && st.ready.is_empty() && !st.closed {
                            break (encode_heartbeat_payload(), None);
                        }
                    }
                    None => st = slot.wake.wait(st).expect("out state"),
                }
            }
        };
        let ok = write_frame(&mut stream, &payload).is_ok();
        let mut st = slot.state.lock().expect("out state");
        if let Some(key) = budget {
            if let Some(n) = st.queued.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    st.queued.remove(&key);
                }
            }
        }
        if ok {
            shared.obs.frames_out.inc();
        } else {
            st.closed = true;
            st.ready.clear();
            drop(st);
            drop_connection(conn, shared);
            return;
        }
    }
}

/// Hand a finished response to the connection's writer: park it under
/// its sequence number and queue the run of consecutive responses
/// starting at `next_seq`, applying each one's route change where it
/// lands.  Any dispatcher may call this for any connection; the
/// per-connection mutex serialises the queueing and the sequence numbers
/// restore request order.
fn deliver_response(
    shared: &Shared,
    conn: u64,
    seq: u64,
    payload: Vec<u8>,
    change: Option<RouteChange>,
) {
    let Some(slot) = shared
        .conns
        .lock()
        .expect("conns")
        .get(&conn)
        .map(Arc::clone)
    else {
        return; // connection already gone; drop the response
    };
    let mut st = slot.state.lock().expect("out state");
    if st.closed {
        return;
    }
    st.pending.insert(seq, (payload, change));
    let mut queued_any = false;
    loop {
        let next = st.next_seq;
        let Some((payload, change)) = st.pending.remove(&next) else {
            break;
        };
        st.next_seq += 1;
        st.ready.push_back((payload, None));
        queued_any = true;
        match change {
            // The `Subscribed` response just landed in wire order:
            // release the events parked behind it, oldest first.
            Some(RouteChange::Activate(key)) => {
                if let Some(frames) = st.parked.remove(&key) {
                    for (frame, counted) in frames {
                        let budget = counted.then(|| key.clone());
                        st.ready.push_back((frame, budget));
                    }
                }
                // A parked terminal frame means the stream already ended
                // (slow consumer before activation): flush it, forget
                // the key.
                if st.dead.remove(&key) {
                    st.queued.remove(&key);
                } else {
                    st.active.insert(key);
                }
            }
            Some(RouteChange::Deactivate(key)) => {
                st.active.remove(&key);
                st.parked.remove(&key);
                st.dead.remove(&key);
                st.queued.remove(&key);
            }
            None => {}
        }
    }
    drop(st);
    if queued_any {
        slot.wake.notify_one();
    }
}

/// What became of one event handed to a connection.
enum EventOutcome {
    /// Queued (or parked) for delivery — or discarded because the stream
    /// already ended with a queued terminal frame.
    Delivered,
    /// The connection is gone; the subscription has no consumer.
    Gone,
    /// The stream blew its outbox cap: a cap-exempt terminal frame was
    /// queued *behind* everything already owed, so the delivered prefix
    /// stays gapless and the terminal is the last frame the stream ever
    /// carries.  The caller must drop the stream from its session.
    Overflow,
}

/// Queue one delta event on `conn`'s writer, parking it if the
/// subscription's `Subscribed` response has not reached the wire order
/// yet, and enforcing the per-subscription outbox cap.
fn deliver_event(shared: &Shared, conn: u64, session: &str, event: &DeltaEvent) -> EventOutcome {
    let Some(slot) = shared
        .conns
        .lock()
        .expect("conns")
        .get(&conn)
        .map(Arc::clone)
    else {
        return EventOutcome::Gone;
    };
    let mut st = slot.state.lock().expect("out state");
    if st.closed {
        return EventOutcome::Gone;
    }
    let key = StreamKey::Sub(session.to_string(), event.sub);
    if st.dead.contains(&key) {
        return EventOutcome::Delivered; // stream already ended; discard
    }
    let terminal = matches!(event.kind, DeltaKind::Terminated { .. });
    if !terminal && st.queued.get(&key).copied().unwrap_or(0) >= shared.event_outbox_cap {
        // Cap blown: the overflowing event is replaced by a terminal
        // frame carrying its sequence, behind the events already queued
        // — the stream stays gapless and the client sees exactly where
        // it was cut.
        let notice = DeltaEvent {
            sub: event.sub,
            view: event.view.clone(),
            seq: event.seq,
            kind: DeltaKind::Terminated {
                reason: TerminateReason::SlowConsumer,
            },
        };
        let frame = encode_event_payload(session, &notice);
        st.dead.insert(key.clone());
        if st.active.remove(&key) {
            st.ready.push_back((frame, None));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.parked.entry(key).or_default().push((frame, false));
        }
        shared.obs.slow_drops.inc();
        return EventOutcome::Overflow;
    }
    let frame = encode_event_payload(session, event);
    shared.obs.events_out.inc();
    if terminal {
        // Session-side termination (e.g. the view stopped being a
        // component): cap-exempt, ends the stream.
        if st.active.remove(&key) {
            st.ready.push_back((frame, None));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.dead.insert(key.clone());
            st.parked.entry(key).or_default().push((frame, false));
        }
    } else {
        *st.queued.entry(key.clone()).or_insert(0) += 1;
        if st.active.contains(&key) {
            st.ready.push_back((frame, Some(key)));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.parked.entry(key).or_default().push((frame, true));
        }
    }
    EventOutcome::Delivered
}

/// Queue one WAL shipment frame on `conn`'s writer for the replication
/// stream `key`, parking it if the stream's ack has not reached the wire
/// order yet, and enforcing [`ServeOptions::repl_outbox_cap`].  On
/// overflow the overflowing frame is dropped and a terminal `W_END` is
/// queued *behind* everything already owed (parked or ready), so the
/// follower receives a gapless prefix ending in the `End` — it treats
/// that as a lost link and re-requests from its own log, so nothing is
/// lost, only re-shipped.
fn deliver_repl_frame(
    shared: &Shared,
    conn: u64,
    session: &str,
    key: &StreamKey,
    frame: Vec<u8>,
) -> EventOutcome {
    let Some(slot) = shared
        .conns
        .lock()
        .expect("conns")
        .get(&conn)
        .map(Arc::clone)
    else {
        return EventOutcome::Gone;
    };
    let mut st = slot.state.lock().expect("out state");
    if st.closed {
        return EventOutcome::Gone;
    }
    if st.dead.contains(key) {
        return EventOutcome::Delivered; // stream already ended; discard
    }
    if st.queued.get(key).copied().unwrap_or(0) >= shared.repl_outbox_cap {
        let end = encode_wal_frame_payload(&WalFrame::End {
            session: session.to_string(),
            reason: "replication outbox overflow (follower too far behind)".to_owned(),
        });
        st.dead.insert(key.clone());
        if st.active.remove(key) {
            st.ready.push_back((end, None));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.parked.entry(key.clone()).or_default().push((end, false));
        }
        return EventOutcome::Overflow;
    }
    shared.obs.repl_records_out.inc();
    shared.obs.repl_bytes_out.add(frame.len() as u64);
    *st.queued.entry(key.clone()).or_insert(0) += 1;
    if st.active.contains(key) {
        st.ready.push_back((frame, Some(key.clone())));
        drop(st);
        slot.wake.notify_one();
    } else {
        st.parked
            .entry(key.clone())
            .or_default()
            .push((frame, true));
    }
    EventOutcome::Delivered
}

/// Forget one replication stream target: release its idle-timeout
/// exemption, and turn the session's shipment tap off when nobody is
/// listening any more.
fn remove_repl_target<F: ComponentFamily + Send + Sync>(
    repl_routes: &mut BTreeMap<String, Vec<(u64, StreamKey)>>,
    service: &mut Service<F>,
    shared: &Shared,
    session: &str,
    conn: u64,
    key: &StreamKey,
) {
    let Some(targets) = repl_routes.get_mut(session) else {
        return;
    };
    let before = targets.len();
    targets.retain(|(c, k)| !(*c == conn && k == key));
    if targets.len() < before {
        repl_conn_remove(shared, conn);
        shared.obs.repl_streams_closed.inc();
    }
    if targets.is_empty() {
        repl_routes.remove(session);
        if let Some(s) = service.session_mut(session) {
            s.set_repl_tap(false);
        }
    }
}

/// One read-your-writes wait parked at a dispatcher (see
/// [`Item::ReadAt`]): re-evaluated after every drain, expired by a timed
/// queue wait when the shard goes idle.
struct WaitingRead {
    conn: u64,
    seq: u64,
    session: String,
    view: String,
    gen: u64,
    min_seq: u64,
    deadline: Instant,
}

fn dispatch_loop<F: ComponentFamily + Send + Sync + 'static>(
    shard: usize,
    mut service: Service<F>,
    shared: &Shared,
) -> Service<F> {
    let n_shards = shared.shards.len();
    // This shard's distributed-span sink (configured with the serving
    // address at bind); requests without a sampled trace context cost
    // one `None` check here and nothing else.
    let dtracer = shared.registries[shard].dtracer();
    // Where each live subscription's events go.  Complete for this
    // shard: a session lives on exactly one shard, so its `Subscribe`s
    // were all answered here.
    let mut routes: BTreeMap<StreamKey, u64> = BTreeMap::new();
    // Live replication streams per session of this shard's partition:
    // which connections tail it, under which stream key.  A session's
    // shipment tap is on exactly while it has an entry here.
    let mut repl_routes: BTreeMap<String, Vec<(u64, StreamKey)>> = BTreeMap::new();
    // Read-your-writes waits parked at this shard.
    let mut waiting_reads: Vec<WaitingRead> = Vec::new();
    loop {
        let drained: Vec<Item> = {
            let sq = &shared.shards[shard];
            let mut q = sq.queue.lock().expect("queue");
            while q.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                // With read-your-writes waits parked here, sleep only
                // until the nearest deadline so an idle shard still
                // turns expiry into a typed `Lagging` answer.
                let Some(next) = waiting_reads.iter().map(|w| w.deadline).min() else {
                    q = sq.wake.wait(q).expect("queue");
                    continue;
                };
                let dur = next.saturating_duration_since(Instant::now());
                if dur.is_zero() {
                    break;
                }
                q = sq.wake.wait_timeout(q, dur).expect("queue").0;
            }
            if q.is_empty() && shared.stop.load(Ordering::SeqCst) {
                // Drained and done.
                return service;
            }
            q.drain(..).collect()
        };
        // Split the drain into the dispatchable batch, the metrics
        // probes, and connection cancellations, remembering where each
        // answer goes.
        let mut batch: Vec<(String, SessionRequest, Option<TraceCtx>)> = Vec::new();
        let mut slots: Vec<(u64, u64, usize)> = Vec::new();
        let mut probes: Vec<(u64, u64, Arc<AtomicUsize>)> = Vec::new();
        let mut cancels: Vec<u64> = Vec::new();
        let mut replicates: Vec<(u64, u64, String, u64, u64)> = Vec::new();
        let mut applies: Vec<(String, ApplyKind, mpsc::Sender<ApplyReport>)> = Vec::new();
        let mut promotes: Vec<mpsc::Sender<Result<(), String>>> = Vec::new();
        let mut listings: Vec<ListingSlot> = Vec::new();
        let mut adopts: Vec<AdoptSlot> = Vec::new();
        let mut retargets: Vec<String> = Vec::new();
        let mut traces: Vec<(u64, u64, Arc<AtomicUsize>)> = Vec::new();
        let mut topos: Vec<TopoSlot> = Vec::new();
        for item in drained {
            match item {
                Item::Dispatch {
                    conn,
                    seq,
                    session,
                    req,
                    trace,
                } => {
                    // The queue wait just ended: record it as a span
                    // parented under the client's send span, and thread
                    // the child context so the session's spans parent
                    // under the wait.  An unsampled context records
                    // nothing and dispatches exactly like `None`.
                    let ctx = trace.and_then(|(ctx, at)| {
                        let dur = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        let start = wall_clock_ns().saturating_sub(dur);
                        match dtracer.record(ctx, "shard.queue", start, dur) {
                            0 => None,
                            span => Some(TraceCtx {
                                trace_id: ctx.trace_id,
                                parent_span: span,
                            }),
                        }
                    });
                    slots.push((conn, seq, batch.len()));
                    batch.push((session, req, ctx));
                }
                Item::Probe { conn, seq, left } => probes.push((conn, seq, left)),
                Item::Cancel { conn } => cancels.push(conn),
                Item::Replicate {
                    conn,
                    seq,
                    session,
                    from_seq,
                    gen,
                } => replicates.push((conn, seq, session, from_seq, gen)),
                Item::Apply {
                    session,
                    kind,
                    done,
                } => applies.push((session, kind, done)),
                Item::Promote { done } => promotes.push(done),
                Item::Sessions {
                    conn,
                    seq,
                    left,
                    acc,
                } => listings.push((conn, seq, left, acc)),
                Item::Adopt {
                    name,
                    session,
                    done,
                } => adopts.push((name, session, done)),
                Item::ReadAt {
                    conn,
                    seq,
                    session,
                    view,
                    gen,
                    min_seq,
                    deadline,
                } => waiting_reads.push(WaitingRead {
                    conn,
                    seq,
                    session,
                    view,
                    gen,
                    min_seq,
                    deadline,
                }),
                Item::Retarget { leader } => retargets.push(leader),
                Item::Trace { conn, seq, left } => traces.push((conn, seq, left)),
                Item::Topology {
                    conn,
                    seq,
                    left,
                    acc,
                } => topos.push((conn, seq, left, acc)),
            }
        }
        // Adoptions land before anything else in this drain that might
        // name the new session (a `Replicate`, a dispatch, a listing).
        for (name, session, done) in adopts {
            let result = match session.downcast::<Session<F>>() {
                Ok(s) => service.add_session(name, *s).map_err(|e| e.to_string()),
                Err(_) => Err("adopted session is not this service's family type".to_owned()),
            };
            let _ = done.send(result);
        }
        // Retargets repoint read-only sessions at the new root leader
        // before this drain's dispatches run, so a `NotLeader` rejection
        // never names an address already known to be stale.
        for leader in retargets {
            let names: Vec<String> = service.session_names().map(str::to_owned).collect();
            for name in names {
                if let Some(s) = service.session_mut(&name) {
                    if s.leader_addr().is_some() {
                        s.set_read_only(Some(leader.clone()));
                    }
                }
            }
        }
        // A dead connection's subscriptions stop publishing before the
        // batch runs — nobody is listening.
        for conn in cancels {
            let gone: Vec<StreamKey> = routes
                .iter()
                .filter(|&(_, c)| *c == conn)
                .map(|(k, _)| k.clone())
                .collect();
            for key in gone {
                routes.remove(&key);
                if let StreamKey::Sub(session, sub) = &key {
                    if let Some(session) = service.session_mut(session) {
                        session.drop_subscription(*sub);
                    }
                }
            }
            // …and its replication streams stop shipping.
            let tailed: Vec<(String, StreamKey)> = repl_routes
                .iter()
                .flat_map(|(session, targets)| {
                    targets
                        .iter()
                        .filter(|(c, _)| *c == conn)
                        .map(|(_, k)| (session.clone(), k.clone()))
                })
                .collect();
            for (session, key) in tailed {
                remove_repl_target(&mut repl_routes, &mut service, shared, &session, conn, &key);
            }
        }
        // Open replication streams before running the batch: the
        // catch-up covers the log as it stands, and the tap (enabled
        // here, under the single-owner dispatcher) captures everything
        // the batch appends — no gap, no overlap.
        for (conn, seq, session, from_seq, follower_gen) in replicates {
            let plan = match service.session_mut(&session) {
                None => Err(format!("unknown session {session:?}")),
                Some(s) if !s.is_durable() => {
                    Err(format!("session {session:?} keeps no write-ahead log"))
                }
                Some(s) => {
                    s.set_repl_tap(true);
                    s.replication_catchup(from_seq, follower_gen)
                        .map_err(|e| e.to_string())
                }
            };
            let (gen, record0, frames, start_seq) = match plan {
                Err(detail) | Ok(CatchupPlan::Refused { detail }) => {
                    if !repl_routes.contains_key(&session) {
                        if let Some(s) = service.session_mut(&session) {
                            s.set_repl_tap(false);
                        }
                    }
                    let ack = ReplicateAck::Refused { detail };
                    deliver_response(shared, conn, seq, encode_replicate_ack_payload(&ack), None);
                    continue;
                }
                Ok(CatchupPlan::Tail { gen, frames }) => (gen, None, frames, from_seq),
                Ok(CatchupPlan::Reset {
                    gen,
                    record0,
                    frames,
                }) => (gen, Some(record0), frames, 0),
            };
            let last_seq = service
                .session_mut(&session)
                .map_or(0, |s| s.wal_last_seq());
            let key = StreamKey::Repl(session.clone(), seq);
            repl_routes
                .entry(session.clone())
                .or_default()
                .push((conn, key.clone()));
            repl_conn_add(shared, conn);
            shared.obs.repl_streams_opened.inc();
            let ack = ReplicateAck::Streaming {
                gen,
                start_seq,
                last_seq,
            };
            deliver_response(
                shared,
                conn,
                seq,
                encode_replicate_ack_payload(&ack),
                Some(RouteChange::Activate(key.clone())),
            );
            // Catch-up frames park behind the ack and flush with it.
            let mut alive = true;
            if let Some(record0) = record0 {
                let frame = encode_wal_frame_payload(&WalFrame::Reset {
                    session: session.clone(),
                    gen,
                    record0,
                });
                alive = matches!(
                    deliver_repl_frame(shared, conn, &session, &key, frame),
                    EventOutcome::Delivered
                );
            }
            for bytes in frames {
                if !alive {
                    break;
                }
                let frame = encode_wal_frame_payload(&WalFrame::Record {
                    session: session.clone(),
                    gen,
                    bytes,
                    trace: None,
                });
                alive = matches!(
                    deliver_repl_frame(shared, conn, &session, &key, frame),
                    EventOutcome::Delivered
                );
            }
            if !alive {
                remove_repl_target(&mut repl_routes, &mut service, shared, &session, conn, &key);
            }
        }
        if !batch.is_empty() || !applies.is_empty() {
            let sessions: Vec<String> = batch.iter().map(|(s, _, _)| s.clone()).collect();
            // The snapshot gate brackets the batch and its event drain:
            // a concurrent metrics probe snapshots this shard either
            // before or after it, never mid-flight.
            let (results, events) = {
                let _gate = shared.snap_gates[shard].lock().expect("snap gate");
                // (Follower side) leader shipments land first, in the
                // tail loop's queue order — the leader's commit order.
                // The report goes straight back so the tail loop can
                // resume from the session's authoritative position.
                for (session, kind, done) in applies {
                    let report = match service.session_mut(&session) {
                        None => ApplyReport {
                            gen: 0,
                            last_seq: 0,
                            outcome: Err(ApplyError::BadRecord {
                                detail: format!("unknown session {session:?}"),
                            }),
                        },
                        Some(s) => {
                            let outcome = match kind {
                                ApplyKind::Record(bytes, ctx) => {
                                    s.apply_replicated_traced(&bytes, ctx)
                                }
                                ApplyKind::Reset(bytes) => s.apply_reset(&bytes),
                            };
                            ApplyReport {
                                gen: s.wal_gen(),
                                last_seq: s.wal_last_seq(),
                                outcome,
                            }
                        }
                    };
                    let _ = done.send(report);
                }
                let results = if batch.is_empty() {
                    Vec::new()
                } else {
                    service.dispatch_traced(batch)
                };
                let events = service.drain_events();
                (results, events)
            };
            // Learn this batch's route *insertions* before touching any
            // event, so events for just-opened subscriptions find their
            // connection.  Removals wait until the events are out: an
            // `Unsubscribe` in this batch closed its subscription at the
            // session, so every drained event for it was committed by an
            // *earlier* request — unlearning first would misroute those
            // events into the void.
            let mut changes: Vec<Option<RouteChange>> = Vec::with_capacity(slots.len());
            let mut unlearned: Vec<StreamKey> = Vec::new();
            for &(conn, _seq, i) in &slots {
                changes.push(match &results[i] {
                    Ok(SessionResponse::Subscribed { sub, .. }) => {
                        let key = StreamKey::Sub(sessions[i].clone(), *sub);
                        routes.insert(key.clone(), conn);
                        Some(RouteChange::Activate(key))
                    }
                    Ok(SessionResponse::Unsubscribed { sub }) => {
                        let key = StreamKey::Sub(sessions[i].clone(), *sub);
                        unlearned.push(key.clone());
                        Some(RouteChange::Deactivate(key))
                    }
                    _ => None,
                });
            }
            // Events go out before responses: every event here was
            // committed by a request in this batch, so it precedes — in
            // stream terms — any `Unsubscribed` answered below, and the
            // writer's parking keeps it behind its own `Subscribed`.
            for (session, event) in events {
                let key = StreamKey::Sub(session.clone(), event.sub);
                let terminal = matches!(event.kind, DeltaKind::Terminated { .. });
                let Some(&conn) = routes.get(&key) else {
                    // No consumer (its connection died, or it was
                    // slow-dropped moments ago): end the stream at the
                    // session too.
                    if let Some(s) = service.session_mut(&session) {
                        s.drop_subscription(event.sub);
                    }
                    continue;
                };
                match deliver_event(shared, conn, &session, &event) {
                    EventOutcome::Delivered => {
                        if terminal {
                            routes.remove(&key);
                        }
                    }
                    EventOutcome::Gone | EventOutcome::Overflow => {
                        routes.remove(&key);
                        if let Some(s) = service.session_mut(&session) {
                            s.drop_subscription(event.sub);
                        }
                    }
                }
            }
            for key in unlearned {
                routes.remove(&key);
            }
            for (slot_i, (conn, seq, i)) in slots.into_iter().enumerate() {
                let change = changes[slot_i].take();
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_result_payload(&results[i]),
                    change,
                );
            }
        }
        // Ship what the batch appended (records, plus any checkpoint's
        // reset image) to every live replication stream.  The tap only
        // runs while `repl_routes` has the session, so this drain sees
        // exactly the records committed since the stream's catch-up.
        if !repl_routes.is_empty() {
            let tapped: Vec<String> = repl_routes.keys().cloned().collect();
            for session in tapped {
                let Some(s) = service.session_mut(&session) else {
                    continue;
                };
                let shipments = s.take_wal_shipments();
                if shipments.is_empty() {
                    continue;
                }
                let frames: Vec<Vec<u8>> = shipments
                    .into_iter()
                    .map(|sh| match sh {
                        WalShipment::Record { gen, bytes, trace } => {
                            // A traced shipment gets a "repl.ship"
                            // instant under the producing append span,
                            // and the shipped context re-parents the
                            // follower's apply span under the shipment
                            // (one instant per record, shared by every
                            // downstream target).
                            let trace = trace.map(|(trace_id, parent)| {
                                let ctx = TraceCtx {
                                    trace_id,
                                    parent_span: parent,
                                };
                                match dtracer.instant(ctx, "repl.ship") {
                                    0 => (trace_id, parent),
                                    ship => (trace_id, ship),
                                }
                            });
                            encode_wal_frame_payload(&WalFrame::Record {
                                session: session.clone(),
                                gen,
                                bytes,
                                trace,
                            })
                        }
                        WalShipment::Reset { gen, record0 } => {
                            encode_wal_frame_payload(&WalFrame::Reset {
                                session: session.clone(),
                                gen,
                                record0,
                            })
                        }
                    })
                    .collect();
                let targets: Vec<(u64, StreamKey)> =
                    repl_routes.get(&session).cloned().unwrap_or_default();
                for (conn, key) in targets {
                    let mut alive = true;
                    for frame in &frames {
                        if !alive {
                            break;
                        }
                        alive = matches!(
                            deliver_repl_frame(shared, conn, &session, &key, frame.clone()),
                            EventOutcome::Delivered
                        );
                    }
                    if !alive {
                        remove_repl_target(
                            &mut repl_routes,
                            &mut service,
                            shared,
                            &session,
                            conn,
                            &key,
                        );
                    }
                }
            }
        }
        // Re-evaluate read-your-writes waits against the positions this
        // drain's applies and batch just advanced; answer what is
        // satisfied, refuse (typed) what expired, keep the rest parked.
        if !waiting_reads.is_empty() {
            let now = Instant::now();
            let mut parked = Vec::new();
            for w in waiting_reads.drain(..) {
                let Some(pos) = service
                    .session(&w.session)
                    .map(|s| (s.wal_gen(), s.wal_last_seq()))
                else {
                    let err: Result<SessionResponse, DispatchError> =
                        Err(DispatchError::UnknownSession(w.session.clone()));
                    deliver_response(shared, w.conn, w.seq, encode_result_payload(&err), None);
                    continue;
                };
                if pos.0 == w.gen && pos.1 >= w.min_seq {
                    // Caught up: answer exactly as a plain `Read` would,
                    // under the snapshot gate like any batch.
                    let results = {
                        let _gate = shared.snap_gates[shard].lock().expect("snap gate");
                        service.dispatch(vec![(
                            w.session.clone(),
                            SessionRequest::Read { view: w.view },
                        )])
                    };
                    deliver_response(
                        shared,
                        w.conn,
                        w.seq,
                        encode_result_payload(&results[0]),
                        None,
                    );
                } else if now >= w.deadline {
                    let err: Result<SessionResponse, DispatchError> = Err(DispatchError::Lagging {
                        want_gen: w.gen,
                        want_seq: w.min_seq,
                        gen: pos.0,
                        seq: pos.1,
                    });
                    deliver_response(shared, w.conn, w.seq, encode_result_payload(&err), None);
                } else {
                    parked.push(w);
                }
            }
            waiting_reads = parked;
        }
        // Session listings pass with the same barrier discipline as
        // probes: each shard contributes after applying its share of the
        // drain, the last one through answers.
        for (conn, seq, left, acc) in listings {
            {
                let names: Vec<String> = service.session_names().map(str::to_owned).collect();
                let mut acc = acc.lock().expect("sessions acc");
                for name in names {
                    if service.session(&name).is_some_and(|s| s.is_durable()) {
                        acc.push(name);
                    }
                }
            }
            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut sessions = std::mem::take(&mut *acc.lock().expect("sessions acc"));
                sessions.sort();
                let reply = SessionsReply {
                    leader: shared.leader_hint.lock().expect("leader hint").clone(),
                    sessions,
                };
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_sessions_reply_payload(&reply),
                    None,
                );
            }
        }
        // Probes pass only after the batch drained alongside them has
        // been applied — so by the time the countdown hits zero, every
        // shard has applied everything enqueued before the probe.
        for (conn, seq, left) in probes {
            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                let parts: Vec<MetricsSnapshot> = (0..n_shards)
                    .map(|j| {
                        let _gate = shared.snap_gates[j].lock().expect("snap gate");
                        shared.registries[j].snapshot()
                    })
                    .collect();
                let merged = MetricsSnapshot::merged(parts.iter());
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_metrics_response_payload(&merged),
                    None,
                );
            }
        }
        // A trace drain passes with the same barrier discipline, so a
        // drain pipelined behind a traced write observes its spans.
        for (conn, seq, left) in traces {
            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                let parts: Vec<TraceSnapshot> = (0..n_shards)
                    .map(|j| shared.registries[j].dtracer().drain())
                    .collect();
                let merged = TraceSnapshot::merged(parts.iter());
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_trace_response_payload(&merged),
                    None,
                );
            }
        }
        // Topology: contribute this partition's positions; the last
        // shard through folds in the link state and answers.
        for (conn, seq, left, acc) in topos {
            {
                let names: Vec<String> = service.session_names().map(str::to_owned).collect();
                let mut acc = acc.lock().expect("topology acc");
                for name in names {
                    if let Some(s) = service.session(&name).filter(|s| s.is_durable()) {
                        acc.push((name, s.wal_gen(), s.wal_last_seq()));
                    }
                }
            }
            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut rows = std::mem::take(&mut *acc.lock().expect("topology acc"));
                rows.sort();
                let reply = assemble_topology(shared, rows);
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_topology_reply_payload(&reply),
                    None,
                );
            }
        }
        // (Follower side) promotion barrier, dead last: every `Apply`
        // drained alongside it has already landed, so fsync this
        // partition's logs and flip its sessions writable.
        for done in promotes {
            let mut result: Result<(), String> = Ok(());
            let names: Vec<String> = service.session_names().map(str::to_owned).collect();
            for name in names {
                let Some(s) = service.session_mut(&name) else {
                    continue;
                };
                if let Err(e) = s.sync_wal() {
                    result = Err(format!("{name}: {e}"));
                    break;
                }
                s.set_read_only(None);
            }
            let _ = done.send(result);
        }
    }
}

/// Fold the per-shard `(session, gen, applied)` rows and the shared link
/// state into one [`TopologyReply`] — the `Topology` verb's answer.
fn assemble_topology(shared: &Shared, rows: Vec<(String, u64, u64)>) -> TopologyReply {
    let now = Instant::now();
    let topo = shared.topo.lock().expect("topo");
    let role = if topo.upstream.is_some() {
        TopoRole::Follower
    } else if topo.promoted {
        TopoRole::Promoted
    } else {
        TopoRole::Root
    };
    let heartbeat_age_ms = topo
        .upstream
        .as_ref()
        .and(topo.last_frame)
        .map(|t| ms_since(now, t));
    let root = shared.leader_hint.lock().expect("leader hint").clone();
    let repl_streams = shared
        .repl_conns
        .lock()
        .expect("repl conns")
        .values()
        .map(|&n| n as u64)
        .sum();
    let subscribers = shared
        .conns
        .lock()
        .expect("conns")
        .values()
        .map(|slot| {
            let st = slot.state.lock().expect("out state");
            st.active
                .iter()
                .filter(|k| matches!(k, StreamKey::Sub(..)))
                .count() as u64
        })
        .sum();
    let sessions = rows
        .into_iter()
        .map(|(name, gen, applied)| {
            let (target, lag_age_ms) = match topo.links.get(&name) {
                // The upstream may have advanced past what we applied;
                // never report a target *behind* the local position.
                Some(&(target, at)) => (target.max(applied), ms_since(now, at)),
                // No link: a root session is its own target and has no
                // shipment age.
                None => (applied, u64::MAX),
            };
            TopoSession {
                name,
                gen,
                applied,
                target,
                lag_age_ms,
            }
        })
        .collect();
    TopologyReply {
        role,
        upstream: topo.upstream.clone(),
        root,
        heartbeat_age_ms,
        repl_streams,
        subscribers,
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::decode_wal_frame_payload;

    /// A `Shared` with no shards and no threads: just enough for the
    /// writer-side delivery functions under test.
    fn test_shared(repl_outbox_cap: usize) -> Arc<Shared> {
        let registry = Registry::new();
        Arc::new(Shared {
            shards: Vec::new(),
            snap_gates: Vec::new(),
            registries: Vec::new(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            writers: Mutex::new(Vec::new()),
            event_outbox_cap: 1,
            repl_outbox_cap,
            read_timeout: None,
            heartbeat_interval: None,
            repl_conns: Mutex::new(BTreeMap::new()),
            leader_hint: Mutex::new(None),
            topo: Mutex::new(TopoState::default()),
            obs: ServeObs::new(&registry),
        })
    }

    /// A conn slot over a real loopback socket pair (no writer thread, so
    /// queued frames stay inspectable in `ready`).  Returns the slot and
    /// the far end (kept alive so the socket stays up).
    fn test_conn(shared: &Shared, conn: u64) -> (Arc<ConnSlot>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let far = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (near, _) = listener.accept().expect("accept");
        let slot = Arc::new(ConnSlot {
            state: Mutex::new(OutState {
                next_seq: 0,
                pending: BTreeMap::new(),
                ready: VecDeque::new(),
                active: BTreeSet::new(),
                parked: BTreeMap::new(),
                dead: BTreeSet::new(),
                queued: BTreeMap::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            stream: near,
        });
        shared
            .conns
            .lock()
            .expect("conns")
            .insert(conn, Arc::clone(&slot));
        (slot, far)
    }

    fn record_frame(session: &str, seq: u64) -> Vec<u8> {
        encode_wal_frame_payload(&WalFrame::Record {
            session: session.to_owned(),
            gen: 1,
            bytes: vec![seq as u8; 4],
            trace: None,
        })
    }

    /// Overflow while the stream is still parked (its ack not yet in
    /// wire order): the terminal `End` queues BEHIND the parked catch-up
    /// frames, and activation flushes the owed frames first, `End` last —
    /// a gapless prefix, exactly what the delivery contract promises.
    #[test]
    fn repl_overflow_while_parked_flushes_owed_frames_then_end() {
        let shared = test_shared(2);
        let (slot, _far) = test_conn(&shared, 7);
        let key = StreamKey::Repl("s".to_owned(), 0);

        for seq in 0..2 {
            let out = deliver_repl_frame(&shared, 7, "s", &key, record_frame("s", seq));
            assert!(matches!(out, EventOutcome::Delivered));
        }
        // One past the cap: refused, stream marked dead.
        let out = deliver_repl_frame(&shared, 7, "s", &key, record_frame("s", 2));
        assert!(matches!(out, EventOutcome::Overflow));
        // Anything further is discarded without growing the backlog.
        let out = deliver_repl_frame(&shared, 7, "s", &key, record_frame("s", 3));
        assert!(matches!(out, EventOutcome::Delivered));
        assert_eq!(
            slot.state.lock().expect("state").parked[&key].len(),
            3,
            "two owed records plus the terminal End"
        );

        // The ack lands in wire order: owed frames flush oldest-first,
        // End last, and the dead stream is forgotten.
        deliver_response(
            &shared,
            7,
            0,
            vec![0xAA],
            Some(RouteChange::Activate(key.clone())),
        );
        let st = slot.state.lock().expect("state");
        let frames: Vec<&Vec<u8>> = st.ready.iter().map(|(f, _)| f).collect();
        assert_eq!(frames.len(), 4, "ack + 2 records + End");
        assert_eq!(frames[0], &vec![0xAA]);
        for (i, frame) in frames[1..3].iter().enumerate() {
            match decode_wal_frame_payload(frame).expect("wal frame") {
                WalFrame::Record { bytes, .. } => assert_eq!(bytes, vec![i as u8; 4]),
                other => panic!("expected Record, got {other:?}"),
            }
        }
        match decode_wal_frame_payload(frames[3]).expect("wal frame") {
            WalFrame::End { .. } => {}
            other => panic!("expected End last, got {other:?}"),
        }
        assert!(!st.dead.contains(&key), "activation reaps the dead key");
        assert!(!st.active.contains(&key), "an ended stream never activates");
        assert!(!st.queued.contains_key(&key), "budget forgotten");
    }

    /// Overflow on an already-active stream: the `End` goes to the wire
    /// queue behind the frames already owed there.
    #[test]
    fn repl_overflow_while_active_queues_end_behind_owed_frames() {
        let shared = test_shared(2);
        let (slot, _far) = test_conn(&shared, 3);
        let key = StreamKey::Repl("s".to_owned(), 0);
        deliver_response(
            &shared,
            3,
            0,
            vec![0xAA],
            Some(RouteChange::Activate(key.clone())),
        );
        for seq in 0..2 {
            let out = deliver_repl_frame(&shared, 3, "s", &key, record_frame("s", seq));
            assert!(matches!(out, EventOutcome::Delivered));
        }
        let out = deliver_repl_frame(&shared, 3, "s", &key, record_frame("s", 2));
        assert!(matches!(out, EventOutcome::Overflow));
        let st = slot.state.lock().expect("state");
        let frames: Vec<&Vec<u8>> = st.ready.iter().map(|(f, _)| f).collect();
        assert_eq!(frames.len(), 4, "ack + 2 records + End");
        match decode_wal_frame_payload(frames[3]).expect("wal frame") {
            WalFrame::End { .. } => {}
            other => panic!("expected End last, got {other:?}"),
        }
        assert!(st.dead.contains(&key));
        assert!(!st.active.contains(&key));
    }
}
