//! The threaded TCP front end: concurrent connections, a sharded pool of
//! deterministic batch dispatchers.
//!
//! # Architecture
//!
//! ```text
//! conn 1 ──reader──┐   ┌─► shard queue 0 ──dispatcher 0─► Service part 0 ─┐
//! conn 2 ──reader──┼──►┤                                                  ├─► per-conn
//! conn 3 ──reader──┘   └─► shard queue 1 ──dispatcher 1─► Service part 1 ─┘   sequencer
//! ```
//!
//! One reader thread per connection decodes frames and pushes each
//! request onto the queue of the shard that owns its session —
//! `shard_of(session) % N`, the stable hash partition from
//! `compview-session`.  Each of the N dispatcher threads owns one
//! [`Service`] partition; each time it wakes it drains *its whole queue*
//! as one batch, runs [`Service::dispatch`] (which fans that shard's
//! sessions across the worker pool and group-commits each touched log
//! with a single fsync), and hands the responses to the **response
//! sequencer**.  Sessions never move between shards, so per-session WAL
//! bytes and responses are byte-identical to a single-dispatcher server
//! — only the parallelism changes.
//!
//! # Ordering
//!
//! Within one connection, responses go out in request order even though
//! different requests may be answered by different shards: the reader
//! stamps every request with a per-connection sequence number, and the
//! sequencer holds each finished response until all lower-numbered ones
//! have been written.  Across connections no order is promised (none
//! exists to preserve).  Because `Service::dispatch` serves each
//! session's queue sequentially and deterministically, how arrivals
//! split into batches — or across shards — can never change any
//! response, only how many fsyncs amortise.
//!
//! # Metrics across shards
//!
//! A `Metrics` probe is a **barrier**: the reader enqueues it on every
//! shard, each dispatcher passes it only after applying the requests it
//! drained alongside it, and the last dispatcher through takes one
//! snapshot per shard registry — each under that shard's snapshot gate,
//! so it always lands on a batch boundary, never mid-batch — and merges
//! them ([`MetricsSnapshot::merged`]).  A probe pipelined behind N
//! requests on one connection therefore observes all N, and every
//! snapshot it returns is post-batch consistent per shard.

use crate::proto::{
    decode_wire_request, encode_metrics_response_payload, encode_result_payload, expect_handshake,
    read_frame, send_handshake, write_frame, WireRequest,
};
use compview_core::ComponentFamily;
use compview_obs::{Counter, Gauge, MetricsSnapshot, Registry};
use compview_session::{shard_of, Service, SessionRequest};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One item on a shard's queue.
enum Item {
    /// A request bound for this shard's service partition.
    Dispatch {
        conn: u64,
        seq: u64,
        session: String,
        req: SessionRequest,
    },
    /// A metrics probe (enqueued on *every* shard); `left` counts the
    /// shards that have not yet passed it.  Whoever decrements it to
    /// zero answers.
    Probe {
        conn: u64,
        seq: u64,
        left: Arc<AtomicUsize>,
    },
}

/// Server-side instruments, registered on shard 0's [`Registry`] (the
/// original service registry) at bind time so they land in the same
/// snapshot as the session and WAL metrics.
#[derive(Clone, Default)]
struct ServeObs {
    /// Connections accepted (post-handshake).
    connections: Counter,
    /// Request frames decoded off the wire.
    frames_in: Counter,
    /// Response frames written to the wire.
    frames_out: Counter,
    /// Frames (or CRC-valid payloads) refused: bad CRC, over-limit
    /// length, torn stream, undecodable payload.  Each costs its
    /// connection.
    malformed_frames: Counter,
    /// High-water mark of any one shard queue's depth.
    queue_depth_hwm: Gauge,
}

impl ServeObs {
    fn new(registry: &Registry) -> ServeObs {
        ServeObs {
            connections: registry.counter("serve.connections"),
            frames_in: registry.counter("serve.frames_in"),
            frames_out: registry.counter("serve.frames_out"),
            malformed_frames: registry.counter("serve.malformed_frames"),
            queue_depth_hwm: registry.gauge("serve.queue_depth_hwm"),
        }
    }
}

/// One shard's request queue.
struct ShardQueue {
    queue: Mutex<VecDeque<Item>>,
    wake: Condvar,
}

/// The write half of a connection plus its reorder buffer: responses
/// finish on whichever dispatcher owned their session, and go out in
/// request order.
struct ConnOut {
    stream: TcpStream,
    /// The sequence number the wire expects next.
    next_seq: u64,
    /// Finished responses waiting for their turn, keyed by sequence.
    pending: BTreeMap<u64, Vec<u8>>,
}

/// State shared between the accept loop, the readers, and the
/// dispatchers.
struct Shared {
    shards: Vec<ShardQueue>,
    /// Per-shard snapshot gates: held by a dispatcher around
    /// [`Service::dispatch`], taken by a metrics probe around that
    /// shard's registry snapshot — so a probe snapshot always lands on a
    /// batch boundary (and the lock handoff makes the shard's relaxed
    /// counter writes visible to the prober).
    snap_gates: Vec<Mutex<()>>,
    /// Per-shard registries, shard 0's being the original service
    /// registry.  Clones of the live registries — valid even after a
    /// dispatcher thread has exited with its service.
    registries: Vec<Registry>,
    stop: AtomicBool,
    /// Connection write halves + reorder buffers, keyed by connection
    /// id.  The accept loop inserts; whoever sees a dead connection
    /// removes.
    conns: Mutex<BTreeMap<u64, Arc<Mutex<ConnOut>>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    obs: ServeObs,
}

/// A running server: call [`Server::shutdown`] to stop it and take the
/// [`Service`] (with every session's final state) back.
pub struct Server<F: ComponentFamily + Send + Sync + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatchers: Vec<JoinHandle<Service<F>>>,
}

impl<F: ComponentFamily + Send + Sync + 'static> Server<F> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` with a single dispatcher.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Service<F>) -> io::Result<Server<F>> {
        Server::bind_sharded(addr, service, 1)
    }

    /// [`Server::bind`] with dispatch sharded across `shards` dispatcher
    /// threads, sessions hash-partitioned by name (see the module docs).
    /// `shards == 0` is treated as 1.  Group commit, per-session
    /// ordering, and response bytes are identical at every shard count;
    /// the shard count only sets how many cores may dispatch at once.
    pub fn bind_sharded<A: ToSocketAddrs>(
        addr: A,
        service: Service<F>,
        shards: usize,
    ) -> io::Result<Server<F>> {
        let shards = shards.max(1);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let parts = service.split(shards);
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| ShardQueue {
                    queue: Mutex::new(VecDeque::new()),
                    wake: Condvar::new(),
                })
                .collect(),
            snap_gates: (0..shards).map(|_| Mutex::new(())).collect(),
            registries: parts.iter().map(|p| p.registry().clone()).collect(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            obs: ServeObs::new(parts[0].registry()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let dispatchers = parts
            .into_iter()
            .enumerate()
            .map(|(shard, part)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || dispatch_loop(shard, part, &shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept,
            dispatchers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of dispatcher shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Stop accepting, close every connection, drain the shard queues,
    /// and return the service — shard partitions folded back into one
    /// ([`Service::merge`]) — with every session's final state.
    pub fn shutdown(self) -> Service<F> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Close the sockets out from under the readers…
        for slot in self.shared.conns.lock().expect("conns").values() {
            let _ = slot
                .lock()
                .expect("conn out")
                .stream
                .shutdown(Shutdown::Both);
        }
        // …poke the accept loop awake (it checks `stop` per accept)…
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers"));
        for r in readers {
            let _ = r.join();
        }
        // …and let every dispatcher drain what is left, then exit.
        for sq in &self.shared.shards {
            sq.wake.notify_all();
        }
        let parts: Vec<Service<F>> = self
            .dispatchers
            .into_iter()
            .map(|d| d.join().expect("dispatcher thread"))
            .collect();
        Service::merge(parts)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Responses are small frames written exactly when they're ready:
        // leaving Nagle on stalls every ping-pong client on the
        // delayed-ACK timer (~40 ms per round trip).
        let _ = stream.set_nodelay(true);
        // Handshake both ways before the connection exists at all.
        if send_handshake(&mut stream).is_err() || expect_handshake(&mut stream).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(writer) = stream.try_clone() else {
            continue;
        };
        let conn = next_conn;
        next_conn += 1;
        shared.obs.connections.inc();
        shared.conns.lock().expect("conns").insert(
            conn,
            Arc::new(Mutex::new(ConnOut {
                stream: writer,
                next_seq: 0,
                pending: BTreeMap::new(),
            })),
        );
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || read_loop(conn, stream, &shared))
        };
        shared.readers.lock().expect("readers").push(reader);
    }
}

fn read_loop(conn: u64, mut stream: TcpStream, shared: &Arc<Shared>) {
    let n_shards = shared.shards.len();
    let mut seq: u64 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(payload)) => match decode_wire_request(&payload) {
                Ok(wire) => {
                    shared.obs.frames_in.inc();
                    match wire {
                        WireRequest::Dispatch(session, req) => {
                            let shard = shard_of(&session, n_shards);
                            let sq = &shared.shards[shard];
                            let mut q = sq.queue.lock().expect("queue");
                            q.push_back(Item::Dispatch {
                                conn,
                                seq,
                                session,
                                req,
                            });
                            shared.obs.queue_depth_hwm.raise(q.len() as u64);
                            drop(q);
                            sq.wake.notify_one();
                        }
                        // A metrics probe fans out to every shard as a
                        // barrier; the countdown picks the answerer.
                        WireRequest::Metrics => {
                            let left = Arc::new(AtomicUsize::new(n_shards));
                            for sq in &shared.shards {
                                let mut q = sq.queue.lock().expect("queue");
                                q.push_back(Item::Probe {
                                    conn,
                                    seq,
                                    left: Arc::clone(&left),
                                });
                                shared.obs.queue_depth_hwm.raise(q.len() as u64);
                                drop(q);
                                sq.wake.notify_one();
                            }
                        }
                    }
                    seq += 1;
                }
                // A CRC-valid frame that does not decode is a protocol
                // violation, not line noise: drop the connection.
                Err(_) => {
                    shared.obs.malformed_frames.inc();
                    drop_connection(conn, shared);
                    return;
                }
            },
            // Clean hangup between frames.
            Ok(None) => return,
            // Torn frame, bad CRC, over-limit length, transport failure:
            // nothing after this point can be trusted.
            Err(e) => {
                if !shared.stop.load(Ordering::SeqCst) && !is_disconnect(&e) {
                    shared.obs.malformed_frames.inc();
                }
                drop_connection(conn, shared);
                return;
            }
        }
    }
}

/// Whether a read error is an ordinary transport drop (peer vanished,
/// socket shut down) rather than bytes that were wrong.
fn is_disconnect(e: &crate::proto::ProtoError) -> bool {
    matches!(e, crate::proto::ProtoError::Io(_))
}

fn drop_connection(conn: u64, shared: &Shared) {
    if let Some(slot) = shared.conns.lock().expect("conns").remove(&conn) {
        let _ = slot
            .lock()
            .expect("conn out")
            .stream
            .shutdown(Shutdown::Both);
    }
}

/// Hand a finished response to the connection's sequencer: park it under
/// its sequence number and flush the run of consecutive responses
/// starting at `next_seq`.  Any dispatcher may call this for any
/// connection; the per-connection mutex serialises the writes and the
/// sequence numbers restore request order.
fn deliver(shared: &Shared, conn: u64, seq: u64, payload: Vec<u8>) {
    let Some(slot) = shared
        .conns
        .lock()
        .expect("conns")
        .get(&conn)
        .map(Arc::clone)
    else {
        return; // connection already gone; drop the response
    };
    let mut out = slot.lock().expect("conn out");
    out.pending.insert(seq, payload);
    let mut dead = false;
    loop {
        let next = out.next_seq;
        let Some(payload) = out.pending.remove(&next) else {
            break;
        };
        out.next_seq += 1;
        if write_frame(&mut out.stream, &payload).is_err() {
            dead = true;
            break;
        }
        shared.obs.frames_out.inc();
    }
    if dead {
        let _ = out.stream.shutdown(Shutdown::Both);
        drop(out);
        shared.conns.lock().expect("conns").remove(&conn);
    }
}

fn dispatch_loop<F: ComponentFamily + Send + Sync>(
    shard: usize,
    mut service: Service<F>,
    shared: &Shared,
) -> Service<F> {
    let n_shards = shared.shards.len();
    loop {
        let drained: Vec<Item> = {
            let sq = &shared.shards[shard];
            let mut q = sq.queue.lock().expect("queue");
            while q.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                q = sq.wake.wait(q).expect("queue");
            }
            if q.is_empty() {
                // Only reachable with `stop` set: drained and done.
                return service;
            }
            q.drain(..).collect()
        };
        // Split the drain into the dispatchable batch and the metrics
        // probes, remembering where each answer goes.
        let mut batch: Vec<(String, SessionRequest)> = Vec::new();
        let mut slots: Vec<(u64, u64, usize)> = Vec::new();
        let mut probes: Vec<(u64, u64, Arc<AtomicUsize>)> = Vec::new();
        for item in drained {
            match item {
                Item::Dispatch {
                    conn,
                    seq,
                    session,
                    req,
                } => {
                    slots.push((conn, seq, batch.len()));
                    batch.push((session, req));
                }
                Item::Probe { conn, seq, left } => probes.push((conn, seq, left)),
            }
        }
        if !batch.is_empty() {
            // The snapshot gate brackets the batch: a concurrent metrics
            // probe snapshots this shard either before or after it,
            // never mid-flight.
            let results = {
                let _gate = shared.snap_gates[shard].lock().expect("snap gate");
                service.dispatch(batch)
            };
            for (conn, seq, i) in slots {
                deliver(shared, conn, seq, encode_result_payload(&results[i]));
            }
        }
        // Probes pass only after the batch drained alongside them has
        // been applied — so by the time the countdown hits zero, every
        // shard has applied everything enqueued before the probe.
        for (conn, seq, left) in probes {
            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                let parts: Vec<MetricsSnapshot> = (0..n_shards)
                    .map(|j| {
                        let _gate = shared.snap_gates[j].lock().expect("snap gate");
                        shared.registries[j].snapshot()
                    })
                    .collect();
                let merged = MetricsSnapshot::merged(parts.iter());
                deliver(shared, conn, seq, encode_metrics_response_payload(&merged));
            }
        }
    }
}
