//! The threaded TCP front end: concurrent connections, a sharded pool of
//! deterministic batch dispatchers, and a push path for delta
//! subscriptions.
//!
//! # Architecture
//!
//! ```text
//! conn 1 ──reader──┐   ┌─► shard queue 0 ──dispatcher 0─► Service part 0 ─┐
//! conn 2 ──reader──┼──►┤                                                  ├─► per-conn
//! conn 3 ──reader──┘   └─► shard queue 1 ──dispatcher 1─► Service part 1 ─┘   writer
//! ```
//!
//! One reader thread per connection decodes frames and pushes each
//! request onto the queue of the shard that owns its session —
//! `shard_of(session) % N`, the stable hash partition from
//! `compview-session`.  Each of the N dispatcher threads owns one
//! [`Service`] partition; each time it wakes it drains *its whole queue*
//! as one batch, runs [`Service::dispatch`] (which fans that shard's
//! sessions across the worker pool and group-commits each touched log
//! with a single fsync), drains the delta events the batch committed,
//! and hands both to the per-connection **writer**.  Sessions never move
//! between shards, so per-session WAL bytes and responses are
//! byte-identical to a single-dispatcher server — only the parallelism
//! changes.
//!
//! # Ordering
//!
//! Within one connection, responses go out in request order even though
//! different requests may be answered by different shards: the reader
//! stamps every request with a per-connection sequence number, and the
//! writer's reorder buffer holds each finished response until all
//! lower-numbered ones have been queued.  Across connections no order is
//! promised (none exists to preserve).
//!
//! Delta-event frames are unsolicited and carry no sequence number;
//! their ordering contract is per subscription: every event goes out
//! **after** the `Subscribed` response that opened the stream, in
//! session-commit order with consecutive event sequences, and **never
//! after** the `Unsubscribed` response or a terminal event.  Two rules
//! enforce this.  First, a dispatcher delivers a batch's events *before*
//! the batch's responses — any event it drained was committed by a
//! request dispatched no later than an `Unsubscribe` answered in the
//! same batch.  Second, events for a subscription whose `Subscribed`
//! response is still waiting in the reorder buffer are **parked**, and
//! released the moment that response is queued to the wire — so a
//! subscribe pipelined with the updates that follow it still yields a
//! well-formed stream.
//!
//! # Slow consumers
//!
//! Each connection has one writer thread; a peer that stops reading
//! blocks its writer on the socket, never a dispatcher.  Undelivered
//! event frames queue per subscription up to
//! [`ServeOptions::event_outbox_cap`]; one past the cap, the server ends
//! the stream — the overflowing event is replaced by a cap-exempt
//! `Terminated(SlowConsumer)` event queued behind the frames already
//! owed, so the delivered prefix stays gapless — and the subscription is
//! removed from the session (`serve.sub.slow_drops` counts these).  Responses are never dropped — a client that pipelines
//! requests and reads nothing owes the transport that memory; the cap
//! bounds only the unsolicited stream.
//!
//! # Metrics across shards
//!
//! A `Metrics` probe is a **barrier**: the reader enqueues it on every
//! shard, each dispatcher passes it only after applying the requests it
//! drained alongside it, and the last dispatcher through takes one
//! snapshot per shard registry — each under that shard's snapshot gate,
//! so it always lands on a batch boundary, never mid-batch — and merges
//! them ([`MetricsSnapshot::merged`]).  A probe pipelined behind N
//! requests on one connection therefore observes all N, and every
//! snapshot it returns is post-batch consistent per shard.

use crate::proto::{
    decode_wire_request, encode_event_payload, encode_metrics_response_payload,
    encode_result_payload, expect_handshake, read_frame, send_handshake, write_frame, WireRequest,
};
use compview_core::ComponentFamily;
use compview_obs::{Counter, Gauge, MetricsSnapshot, Registry};
use compview_session::{
    shard_of, DeltaEvent, DeltaKind, Service, SessionRequest, SessionResponse, TerminateReason,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for [`Server::bind_with`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Dispatcher shard count (0 is treated as 1); see
    /// [`Server::bind_sharded`].
    pub shards: usize,
    /// Undelivered delta-event frames one subscription may queue before
    /// the server declares its consumer slow and drops the subscription
    /// with a terminal `SlowConsumer` event.
    pub event_outbox_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            shards: 1,
            event_outbox_cap: 1024,
        }
    }
}

/// A subscription's server-side identity: owning session plus the
/// session-scoped subscription id (ids are never reused within a
/// session, so a key never aliases a dead stream).
type SubKey = (String, u64);

/// One item on a shard's queue.
enum Item {
    /// A request bound for this shard's service partition.
    Dispatch {
        conn: u64,
        seq: u64,
        session: String,
        req: SessionRequest,
    },
    /// A metrics probe (enqueued on *every* shard); `left` counts the
    /// shards that have not yet passed it.  Whoever decrements it to
    /// zero answers.
    Probe {
        conn: u64,
        seq: u64,
        left: Arc<AtomicUsize>,
    },
    /// A connection died (enqueued on *every* shard): drop its
    /// subscriptions from the sessions so they stop publishing.
    Cancel { conn: u64 },
}

/// Server-side instruments, registered on shard 0's [`Registry`] (the
/// original service registry) at bind time so they land in the same
/// snapshot as the session and WAL metrics.
#[derive(Clone, Default)]
struct ServeObs {
    /// Connections accepted (post-handshake).
    connections: Counter,
    /// Request frames decoded off the wire.
    frames_in: Counter,
    /// Frames written to the wire (responses and events alike).
    frames_out: Counter,
    /// Delta-event frames accepted into a connection's outbox.
    events_out: Counter,
    /// Subscriptions dropped for falling behind
    /// ([`ServeOptions::event_outbox_cap`]).
    slow_drops: Counter,
    /// Frames (or CRC-valid payloads) refused: bad CRC, over-limit
    /// length, torn stream, undecodable payload.  Each costs its
    /// connection.
    malformed_frames: Counter,
    /// High-water mark of any one shard queue's depth.
    queue_depth_hwm: Gauge,
}

impl ServeObs {
    fn new(registry: &Registry) -> ServeObs {
        ServeObs {
            connections: registry.counter("serve.connections"),
            frames_in: registry.counter("serve.frames_in"),
            frames_out: registry.counter("serve.frames_out"),
            events_out: registry.counter("serve.events_out"),
            slow_drops: registry.counter("serve.sub.slow_drops"),
            malformed_frames: registry.counter("serve.malformed_frames"),
            queue_depth_hwm: registry.gauge("serve.queue_depth_hwm"),
        }
    }
}

/// One shard's request queue.
struct ShardQueue {
    queue: Mutex<VecDeque<Item>>,
    wake: Condvar,
}

/// A side effect a response frame carries into the writer: applied at
/// the moment the frame leaves the reorder buffer, so route state
/// changes exactly where the frame lands in the wire order.
enum RouteChange {
    /// A `Subscribed` response: start the stream — release any parked
    /// events right behind this frame.
    Activate(SubKey),
    /// An `Unsubscribed` response: the stream is over.
    Deactivate(SubKey),
}

/// The outbound half of one connection, owned by its writer thread and
/// fed by dispatchers.
struct OutState {
    /// The sequence number the wire expects next.
    next_seq: u64,
    /// Finished responses waiting for their turn, keyed by sequence.
    pending: BTreeMap<u64, (Vec<u8>, Option<RouteChange>)>,
    /// Frames in final wire order, waiting for the writer thread.  The
    /// tag is the subscription whose outbox budget the frame occupies
    /// (event frames only).
    ready: VecDeque<(Vec<u8>, Option<SubKey>)>,
    /// Subscriptions whose `Subscribed` response has been queued; their
    /// events go straight to `ready`.
    active: BTreeSet<SubKey>,
    /// Event frames awaiting their `Subscribed` response, per
    /// subscription, with their budget flag.
    parked: BTreeMap<SubKey, Vec<(Vec<u8>, bool)>>,
    /// Subscriptions already ended by a parked terminal frame: discard
    /// anything further, clean up at activation.
    dead: BTreeSet<SubKey>,
    /// Undelivered event frames per subscription (parked + ready), the
    /// count [`ServeOptions::event_outbox_cap`] bounds.
    queued: BTreeMap<SubKey, usize>,
    /// Set on connection death and server shutdown; the writer exits,
    /// producers stop queueing.
    closed: bool,
}

/// A connection's outbound mailbox plus the handle other threads use to
/// tear the socket down (the writer thread writes through its own
/// clone).
struct ConnSlot {
    state: Mutex<OutState>,
    wake: Condvar,
    stream: TcpStream,
}

impl ConnSlot {
    /// Mark the connection closed and release its writer.
    fn close(&self) {
        let mut st = self.state.lock().expect("out state");
        st.closed = true;
        st.ready.clear();
        drop(st);
        self.wake.notify_all();
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// State shared between the accept loop, the readers, the writers, and
/// the dispatchers.
struct Shared {
    shards: Vec<ShardQueue>,
    /// Per-shard snapshot gates: held by a dispatcher around
    /// [`Service::dispatch`] (and the event drain that follows it),
    /// taken by a metrics probe around that shard's registry snapshot —
    /// so a probe snapshot always lands on a batch boundary (and the
    /// lock handoff makes the shard's relaxed counter writes visible to
    /// the prober).
    snap_gates: Vec<Mutex<()>>,
    /// Per-shard registries, shard 0's being the original service
    /// registry.  Clones of the live registries — valid even after a
    /// dispatcher thread has exited with its service.
    registries: Vec<Registry>,
    stop: AtomicBool,
    /// Connection outbound slots, keyed by connection id.  The accept
    /// loop inserts; whoever sees a dead connection removes.
    conns: Mutex<BTreeMap<u64, Arc<ConnSlot>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    event_outbox_cap: usize,
    obs: ServeObs,
}

/// A running server: call [`Server::shutdown`] to stop it and take the
/// [`Service`] (with every session's final state) back.
pub struct Server<F: ComponentFamily + Send + Sync + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatchers: Vec<JoinHandle<Service<F>>>,
}

impl<F: ComponentFamily + Send + Sync + 'static> Server<F> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` with a single dispatcher.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Service<F>) -> io::Result<Server<F>> {
        Server::bind_with(addr, service, ServeOptions::default())
    }

    /// [`Server::bind`] with dispatch sharded across `shards` dispatcher
    /// threads, sessions hash-partitioned by name (see the module docs).
    /// `shards == 0` is treated as 1.  Group commit, per-session
    /// ordering, and response bytes are identical at every shard count;
    /// the shard count only sets how many cores may dispatch at once.
    pub fn bind_sharded<A: ToSocketAddrs>(
        addr: A,
        service: Service<F>,
        shards: usize,
    ) -> io::Result<Server<F>> {
        Server::bind_with(
            addr,
            service,
            ServeOptions {
                shards,
                ..ServeOptions::default()
            },
        )
    }

    /// [`Server::bind`] with every knob explicit.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        service: Service<F>,
        options: ServeOptions,
    ) -> io::Result<Server<F>> {
        let shards = options.shards.max(1);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let parts = service.split(shards);
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| ShardQueue {
                    queue: Mutex::new(VecDeque::new()),
                    wake: Condvar::new(),
                })
                .collect(),
            snap_gates: (0..shards).map(|_| Mutex::new(())).collect(),
            registries: parts.iter().map(|p| p.registry().clone()).collect(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            readers: Mutex::new(Vec::new()),
            writers: Mutex::new(Vec::new()),
            event_outbox_cap: options.event_outbox_cap.max(1),
            obs: ServeObs::new(parts[0].registry()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let dispatchers = parts
            .into_iter()
            .enumerate()
            .map(|(shard, part)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || dispatch_loop(shard, part, &shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept,
            dispatchers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of dispatcher shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Stop accepting, close every connection, drain the shard queues,
    /// and return the service — shard partitions folded back into one
    /// ([`Service::merge`]) — with every session's final state.
    pub fn shutdown(self) -> Service<F> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Close the sockets out from under the readers and writers…
        for slot in self.shared.conns.lock().expect("conns").values() {
            slot.close();
        }
        // …poke the accept loop awake (it checks `stop` per accept)…
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers"));
        for r in readers {
            let _ = r.join();
        }
        let writers = std::mem::take(&mut *self.shared.writers.lock().expect("writers"));
        for w in writers {
            let _ = w.join();
        }
        // …and let every dispatcher drain what is left, then exit.
        for sq in &self.shared.shards {
            sq.wake.notify_all();
        }
        let parts: Vec<Service<F>> = self
            .dispatchers
            .into_iter()
            .map(|d| d.join().expect("dispatcher thread"))
            .collect();
        Service::merge(parts)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Responses are small frames written exactly when they're ready:
        // leaving Nagle on stalls every ping-pong client on the
        // delayed-ACK timer (~40 ms per round trip).
        let _ = stream.set_nodelay(true);
        // Handshake both ways before the connection exists at all.
        if send_handshake(&mut stream).is_err() || expect_handshake(&mut stream).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let (Ok(write_stream), Ok(control)) = (stream.try_clone(), stream.try_clone()) else {
            continue;
        };
        let conn = next_conn;
        next_conn += 1;
        shared.obs.connections.inc();
        let slot = Arc::new(ConnSlot {
            state: Mutex::new(OutState {
                next_seq: 0,
                pending: BTreeMap::new(),
                ready: VecDeque::new(),
                active: BTreeSet::new(),
                parked: BTreeMap::new(),
                dead: BTreeSet::new(),
                queued: BTreeMap::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            stream: control,
        });
        shared
            .conns
            .lock()
            .expect("conns")
            .insert(conn, Arc::clone(&slot));
        let writer = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || write_loop(conn, write_stream, &slot, &shared))
        };
        shared.writers.lock().expect("writers").push(writer);
        let reader = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || read_loop(conn, stream, &shared))
        };
        shared.readers.lock().expect("readers").push(reader);
    }
}

fn read_loop(conn: u64, mut stream: TcpStream, shared: &Arc<Shared>) {
    let n_shards = shared.shards.len();
    let mut seq: u64 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(Some(payload)) => match decode_wire_request(&payload) {
                Ok(wire) => {
                    shared.obs.frames_in.inc();
                    match wire {
                        WireRequest::Dispatch(session, req) => {
                            let shard = shard_of(&session, n_shards);
                            let sq = &shared.shards[shard];
                            let mut q = sq.queue.lock().expect("queue");
                            q.push_back(Item::Dispatch {
                                conn,
                                seq,
                                session,
                                req,
                            });
                            shared.obs.queue_depth_hwm.raise(q.len() as u64);
                            drop(q);
                            sq.wake.notify_one();
                        }
                        // A metrics probe fans out to every shard as a
                        // barrier; the countdown picks the answerer.
                        WireRequest::Metrics => {
                            let left = Arc::new(AtomicUsize::new(n_shards));
                            for sq in &shared.shards {
                                let mut q = sq.queue.lock().expect("queue");
                                q.push_back(Item::Probe {
                                    conn,
                                    seq,
                                    left: Arc::clone(&left),
                                });
                                shared.obs.queue_depth_hwm.raise(q.len() as u64);
                                drop(q);
                                sq.wake.notify_one();
                            }
                        }
                    }
                    seq += 1;
                }
                // A CRC-valid frame that does not decode is a protocol
                // violation, not line noise: drop the connection.
                Err(_) => {
                    shared.obs.malformed_frames.inc();
                    drop_connection(conn, shared);
                    return;
                }
            },
            // Clean hangup between frames.
            Ok(None) => {
                drop_connection(conn, shared);
                return;
            }
            // Torn frame, bad CRC, over-limit length, transport failure:
            // nothing after this point can be trusted.
            Err(e) => {
                if !shared.stop.load(Ordering::SeqCst) && !is_disconnect(&e) {
                    shared.obs.malformed_frames.inc();
                }
                drop_connection(conn, shared);
                return;
            }
        }
    }
}

/// Whether a read error is an ordinary transport drop (peer vanished,
/// socket shut down) rather than bytes that were wrong.
fn is_disconnect(e: &crate::proto::ProtoError) -> bool {
    matches!(e, crate::proto::ProtoError::Io(_))
}

fn drop_connection(conn: u64, shared: &Shared) {
    if let Some(slot) = shared.conns.lock().expect("conns").remove(&conn) {
        slot.close();
    }
    if shared.stop.load(Ordering::SeqCst) {
        return; // dispatchers are exiting; shutdown merges state anyway
    }
    // Tell every shard to drop the connection's subscriptions, so the
    // sessions stop deriving deltas nobody will receive.
    for sq in &shared.shards {
        let mut q = sq.queue.lock().expect("queue");
        q.push_back(Item::Cancel { conn });
        drop(q);
        sq.wake.notify_one();
    }
}

/// The per-connection writer: pops wire-ordered frames and writes them.
/// Socket back-pressure blocks this thread only — dispatchers and
/// readers never wait on a peer.
fn write_loop(conn: u64, mut stream: TcpStream, slot: &Arc<ConnSlot>, shared: &Arc<Shared>) {
    loop {
        let (payload, budget) = {
            let mut st = slot.state.lock().expect("out state");
            loop {
                if let Some(frame) = st.ready.pop_front() {
                    break frame;
                }
                if st.closed {
                    return;
                }
                st = slot.wake.wait(st).expect("out state");
            }
        };
        let ok = write_frame(&mut stream, &payload).is_ok();
        let mut st = slot.state.lock().expect("out state");
        if let Some(key) = budget {
            if let Some(n) = st.queued.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    st.queued.remove(&key);
                }
            }
        }
        if ok {
            shared.obs.frames_out.inc();
        } else {
            st.closed = true;
            st.ready.clear();
            drop(st);
            drop_connection(conn, shared);
            return;
        }
    }
}

/// Hand a finished response to the connection's writer: park it under
/// its sequence number and queue the run of consecutive responses
/// starting at `next_seq`, applying each one's route change where it
/// lands.  Any dispatcher may call this for any connection; the
/// per-connection mutex serialises the queueing and the sequence numbers
/// restore request order.
fn deliver_response(
    shared: &Shared,
    conn: u64,
    seq: u64,
    payload: Vec<u8>,
    change: Option<RouteChange>,
) {
    let Some(slot) = shared
        .conns
        .lock()
        .expect("conns")
        .get(&conn)
        .map(Arc::clone)
    else {
        return; // connection already gone; drop the response
    };
    let mut st = slot.state.lock().expect("out state");
    if st.closed {
        return;
    }
    st.pending.insert(seq, (payload, change));
    let mut queued_any = false;
    loop {
        let next = st.next_seq;
        let Some((payload, change)) = st.pending.remove(&next) else {
            break;
        };
        st.next_seq += 1;
        st.ready.push_back((payload, None));
        queued_any = true;
        match change {
            // The `Subscribed` response just landed in wire order:
            // release the events parked behind it, oldest first.
            Some(RouteChange::Activate(key)) => {
                if let Some(frames) = st.parked.remove(&key) {
                    for (frame, counted) in frames {
                        let budget = counted.then(|| key.clone());
                        st.ready.push_back((frame, budget));
                    }
                }
                // A parked terminal frame means the stream already ended
                // (slow consumer before activation): flush it, forget
                // the key.
                if st.dead.remove(&key) {
                    st.queued.remove(&key);
                } else {
                    st.active.insert(key);
                }
            }
            Some(RouteChange::Deactivate(key)) => {
                st.active.remove(&key);
                st.parked.remove(&key);
                st.dead.remove(&key);
                st.queued.remove(&key);
            }
            None => {}
        }
    }
    drop(st);
    if queued_any {
        slot.wake.notify_one();
    }
}

/// What became of one event handed to a connection.
enum EventOutcome {
    /// Queued (or parked) for delivery — or discarded because the stream
    /// already ended with a queued terminal frame.
    Delivered,
    /// The connection is gone; the subscription has no consumer.
    Gone,
    /// The subscription blew its outbox cap: a terminal `SlowConsumer`
    /// frame replaced everything owed.  The caller must drop the
    /// subscription from its session.
    Overflow,
}

/// Queue one delta event on `conn`'s writer, parking it if the
/// subscription's `Subscribed` response has not reached the wire order
/// yet, and enforcing the per-subscription outbox cap.
fn deliver_event(shared: &Shared, conn: u64, session: &str, event: &DeltaEvent) -> EventOutcome {
    let Some(slot) = shared
        .conns
        .lock()
        .expect("conns")
        .get(&conn)
        .map(Arc::clone)
    else {
        return EventOutcome::Gone;
    };
    let mut st = slot.state.lock().expect("out state");
    if st.closed {
        return EventOutcome::Gone;
    }
    let key = (session.to_string(), event.sub);
    if st.dead.contains(&key) {
        return EventOutcome::Delivered; // stream already ended; discard
    }
    let terminal = matches!(event.kind, DeltaKind::Terminated { .. });
    if !terminal && st.queued.get(&key).copied().unwrap_or(0) >= shared.event_outbox_cap {
        // Cap blown: the overflowing event is replaced by a terminal
        // frame carrying its sequence, behind the events already queued
        // — the stream stays gapless and the client sees exactly where
        // it was cut.
        let notice = DeltaEvent {
            sub: event.sub,
            view: event.view.clone(),
            seq: event.seq,
            kind: DeltaKind::Terminated {
                reason: TerminateReason::SlowConsumer,
            },
        };
        let frame = encode_event_payload(session, &notice);
        st.dead.insert(key.clone());
        if st.active.remove(&key) {
            st.ready.push_back((frame, None));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.parked.entry(key).or_default().push((frame, false));
        }
        shared.obs.slow_drops.inc();
        return EventOutcome::Overflow;
    }
    let frame = encode_event_payload(session, event);
    shared.obs.events_out.inc();
    if terminal {
        // Session-side termination (e.g. the view stopped being a
        // component): cap-exempt, ends the stream.
        if st.active.remove(&key) {
            st.ready.push_back((frame, None));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.dead.insert(key.clone());
            st.parked.entry(key).or_default().push((frame, false));
        }
    } else {
        *st.queued.entry(key.clone()).or_insert(0) += 1;
        if st.active.contains(&key) {
            st.ready.push_back((frame, Some(key)));
            drop(st);
            slot.wake.notify_one();
        } else {
            st.parked.entry(key).or_default().push((frame, true));
        }
    }
    EventOutcome::Delivered
}

fn dispatch_loop<F: ComponentFamily + Send + Sync>(
    shard: usize,
    mut service: Service<F>,
    shared: &Shared,
) -> Service<F> {
    let n_shards = shared.shards.len();
    // Where each live subscription's events go.  Complete for this
    // shard: a session lives on exactly one shard, so its `Subscribe`s
    // were all answered here.
    let mut routes: BTreeMap<SubKey, u64> = BTreeMap::new();
    loop {
        let drained: Vec<Item> = {
            let sq = &shared.shards[shard];
            let mut q = sq.queue.lock().expect("queue");
            while q.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                q = sq.wake.wait(q).expect("queue");
            }
            if q.is_empty() {
                // Only reachable with `stop` set: drained and done.
                return service;
            }
            q.drain(..).collect()
        };
        // Split the drain into the dispatchable batch, the metrics
        // probes, and connection cancellations, remembering where each
        // answer goes.
        let mut batch: Vec<(String, SessionRequest)> = Vec::new();
        let mut slots: Vec<(u64, u64, usize)> = Vec::new();
        let mut probes: Vec<(u64, u64, Arc<AtomicUsize>)> = Vec::new();
        let mut cancels: Vec<u64> = Vec::new();
        for item in drained {
            match item {
                Item::Dispatch {
                    conn,
                    seq,
                    session,
                    req,
                } => {
                    slots.push((conn, seq, batch.len()));
                    batch.push((session, req));
                }
                Item::Probe { conn, seq, left } => probes.push((conn, seq, left)),
                Item::Cancel { conn } => cancels.push(conn),
            }
        }
        // A dead connection's subscriptions stop publishing before the
        // batch runs — nobody is listening.
        for conn in cancels {
            let gone: Vec<SubKey> = routes
                .iter()
                .filter(|&(_, c)| *c == conn)
                .map(|(k, _)| k.clone())
                .collect();
            for key in gone {
                routes.remove(&key);
                if let Some(session) = service.session_mut(&key.0) {
                    session.drop_subscription(key.1);
                }
            }
        }
        if !batch.is_empty() {
            let sessions: Vec<String> = batch.iter().map(|(s, _)| s.clone()).collect();
            // The snapshot gate brackets the batch and its event drain:
            // a concurrent metrics probe snapshots this shard either
            // before or after it, never mid-flight.
            let (results, events) = {
                let _gate = shared.snap_gates[shard].lock().expect("snap gate");
                let results = service.dispatch(batch);
                let events = service.drain_events();
                (results, events)
            };
            // Learn this batch's route *insertions* before touching any
            // event, so events for just-opened subscriptions find their
            // connection.  Removals wait until the events are out: an
            // `Unsubscribe` in this batch closed its subscription at the
            // session, so every drained event for it was committed by an
            // *earlier* request — unlearning first would misroute those
            // events into the void.
            let mut changes: Vec<Option<RouteChange>> = Vec::with_capacity(slots.len());
            let mut unlearned: Vec<SubKey> = Vec::new();
            for &(conn, _seq, i) in &slots {
                changes.push(match &results[i] {
                    Ok(SessionResponse::Subscribed { sub, .. }) => {
                        let key = (sessions[i].clone(), *sub);
                        routes.insert(key.clone(), conn);
                        Some(RouteChange::Activate(key))
                    }
                    Ok(SessionResponse::Unsubscribed { sub }) => {
                        let key = (sessions[i].clone(), *sub);
                        unlearned.push(key.clone());
                        Some(RouteChange::Deactivate(key))
                    }
                    _ => None,
                });
            }
            // Events go out before responses: every event here was
            // committed by a request in this batch, so it precedes — in
            // stream terms — any `Unsubscribed` answered below, and the
            // writer's parking keeps it behind its own `Subscribed`.
            for (session, event) in events {
                let key = (session.clone(), event.sub);
                let terminal = matches!(event.kind, DeltaKind::Terminated { .. });
                let Some(&conn) = routes.get(&key) else {
                    // No consumer (its connection died, or it was
                    // slow-dropped moments ago): end the stream at the
                    // session too.
                    if let Some(s) = service.session_mut(&session) {
                        s.drop_subscription(event.sub);
                    }
                    continue;
                };
                match deliver_event(shared, conn, &session, &event) {
                    EventOutcome::Delivered => {
                        if terminal {
                            routes.remove(&key);
                        }
                    }
                    EventOutcome::Gone | EventOutcome::Overflow => {
                        routes.remove(&key);
                        if let Some(s) = service.session_mut(&session) {
                            s.drop_subscription(event.sub);
                        }
                    }
                }
            }
            for key in unlearned {
                routes.remove(&key);
            }
            for (slot_i, (conn, seq, i)) in slots.into_iter().enumerate() {
                let change = changes[slot_i].take();
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_result_payload(&results[i]),
                    change,
                );
            }
        }
        // Probes pass only after the batch drained alongside them has
        // been applied — so by the time the countdown hits zero, every
        // shard has applied everything enqueued before the probe.
        for (conn, seq, left) in probes {
            if left.fetch_sub(1, Ordering::AcqRel) == 1 {
                let parts: Vec<MetricsSnapshot> = (0..n_shards)
                    .map(|j| {
                        let _gate = shared.snap_gates[j].lock().expect("snap gate");
                        shared.registries[j].snapshot()
                    })
                    .collect();
                let merged = MetricsSnapshot::merged(parts.iter());
                deliver_response(
                    shared,
                    conn,
                    seq,
                    encode_metrics_response_payload(&merged),
                    None,
                );
            }
        }
    }
}
