//! Wire-format contract tests: every request/response variant round-trips
//! through the codec, and malformed frames — bad checksums, truncated or
//! over-limit lengths, arbitrary bit flips — are refused with typed
//! errors, never obeyed and never a panic.  Mirrors the recovery suite's
//! treatment of on-disk corruption.

use compview_core::{CatalogError, EditError, EditReport, UpdateReport};
use compview_obs::{DistTracer, TraceCtx};
use compview_relation::{v, Instance, Relation, Tuple};
use compview_serve::proto::{
    decode_event_payload, decode_metrics_response_payload, decode_request_payload,
    decode_result_payload, decode_sessions_reply_payload, decode_topology_reply_payload,
    decode_trace_response_payload, decode_wal_frame_payload, decode_wire_request,
    encode_event_payload, encode_metrics_request_payload, encode_metrics_response_payload,
    encode_read_at_payload, encode_request_payload, encode_result_payload, encode_sessions_payload,
    encode_sessions_reply_payload, encode_topology_reply_payload, encode_topology_request_payload,
    encode_trace_request_payload, encode_trace_response_payload, encode_traced_request_payload,
    encode_wal_frame_payload, is_event_payload, is_sessions_reply_payload,
    is_topology_reply_payload, is_trace_reply_payload, read_frame, write_frame, SessionsReply,
    TopoRole, TopoSession, TopologyReply, WalFrame, WireRequest, FRAME_HEADER, MAX_FRAME,
};
use compview_serve::ProtoError;
use compview_session::{
    DeltaEvent, DeltaKind, DispatchError, SessionError, SessionRequest, SessionResponse,
    SessionStats, StatsSnapshot, TerminateReason,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::io::Cursor;

fn rand_name(rng: &mut StdRng) -> String {
    let n = rng.random_range(0..12usize);
    (0..n)
        .map(|_| (b'a' + rng.random_range(0..26u32) as u8) as char)
        .collect()
}

fn rand_tuple(rng: &mut StdRng, arity: usize) -> Tuple {
    Tuple::new((0..arity).map(|_| v(&rand_name(rng))))
}

fn rand_instance(rng: &mut StdRng) -> Instance {
    let mut inst = Instance::new();
    for _ in 0..rng.random_range(0..3u32) {
        let arity = rng.random_range(1..3u32) as usize;
        let rows = (0..rng.random_range(0..4u32))
            .map(|_| rand_tuple(rng, arity))
            .collect::<Vec<_>>();
        inst = inst.with(rand_name(rng), Relation::from_tuples(arity, rows));
    }
    inst
}

/// One of each [`SessionRequest`] variant, contents randomised by `rng`.
fn every_request(rng: &mut StdRng) -> Vec<SessionRequest> {
    vec![
        SessionRequest::RegisterView {
            name: rand_name(rng),
            mask: rng.random_range(0..1u64 << 32) as u32,
        },
        SessionRequest::Update {
            view: rand_name(rng),
            new_state: rand_instance(rng),
        },
        {
            let arity = rng.random_range(1..4u32) as usize;
            SessionRequest::InsertPoolTuple {
                relation: rand_name(rng),
                tuple: rand_tuple(rng, arity),
            }
        },
        {
            let arity = rng.random_range(1..4u32) as usize;
            SessionRequest::RemovePoolTuple {
                relation: rand_name(rng),
                tuple: rand_tuple(rng, arity),
            }
        },
        SessionRequest::Undo,
        SessionRequest::Read {
            view: rand_name(rng),
        },
        SessionRequest::Stats,
        SessionRequest::Subscribe {
            view: rand_name(rng),
        },
        SessionRequest::Unsubscribe {
            sub: rng.next_u64(),
        },
    ]
}

fn rand_stats(rng: &mut StdRng) -> StatsSnapshot {
    let mut counters = SessionStats {
        requests: rng.next_u64(),
        accepted: rng.next_u64(),
        rejected: rng.next_u64(),
        cache_hits: rng.next_u64(),
        cache_misses: rng.next_u64(),
        cache_remaps: rng.next_u64(),
        incremental_edits: rng.next_u64(),
        full_rebuilds: rng.next_u64(),
        ..SessionStats::default()
    };
    for _ in 0..rng.random_range(0..4u32) {
        let key = rand_name(rng);
        counters.rejected_by_variant.insert(key, rng.next_u64());
    }
    StatsSnapshot {
        counters,
        states: rng.random_range(0..1 << 20) as usize,
        views: rng.random_range(0..64u32) as usize,
        undoable: rng.random_range(0..64u32) as usize,
        cached_masks: rng.random_range(0..64u32) as usize,
        session_id: rng.next_u64(),
        wal_gen: rng.next_u64(),
        wal_seq: rng.next_u64(),
        log_bytes: rng.next_u64(),
        active_subs: rng.random_range(0..64u32) as usize,
    }
}

/// One of each [`SessionResponse`] variant and one of each error shape a
/// dispatch can answer with — every [`DispatchError`], [`SessionError`],
/// [`CatalogError`], and [`EditError`] variant appears.
fn every_result(rng: &mut StdRng) -> Vec<Result<SessionResponse, DispatchError>> {
    let session_errors = vec![
        SessionError::Catalog(CatalogError::UnknownView(rand_name(rng))),
        SessionError::Catalog(CatalogError::DuplicateView(rand_name(rng))),
        SessionError::Catalog(CatalogError::BadMask(rng.random_range(0..1u64 << 32) as u32)),
        SessionError::Catalog(CatalogError::IllegalViewState(rand_name(rng))),
        SessionError::Catalog(CatalogError::EmptyHistory),
        SessionError::Edit(EditError::NotEditable),
        SessionError::Edit(EditError::UnknownRelation(rand_name(rng))),
        SessionError::Edit(EditError::ArityMismatch {
            relation: rand_name(rng),
            expected: rng.random_range(0..8u32) as usize,
            got: rng.random_range(0..8u32) as usize,
        }),
        SessionError::Edit(EditError::DuplicateTuple {
            relation: rand_name(rng),
        }),
        SessionError::Edit(EditError::MissingTuple {
            relation: rand_name(rng),
        }),
        SessionError::Edit(EditError::TooLarge {
            bits: rng.random_range(0..64u32) as usize,
            max_bits: rng.random_range(0..64u32) as usize,
        }),
        SessionError::NotAComponent {
            mask: rng.random_range(0..1u64 << 32) as u32,
            detail: rand_name(rng),
        },
        SessionError::TupleInBaseState {
            relation: rand_name(rng),
        },
        SessionError::StateOutsideSpace {
            view: rand_name(rng),
        },
        SessionError::Durability {
            detail: rand_name(rng),
        },
        SessionError::StaleLog {
            detail: rand_name(rng),
        },
        SessionError::UnknownSubscription {
            sub: rng.next_u64(),
        },
    ];
    let mut out = vec![
        Ok(SessionResponse::Registered {
            view: rand_name(rng),
            mask: rng.random_range(0..1u64 << 32) as u32,
            complement: rng.random_range(0..1u64 << 32) as u32,
        }),
        Ok(SessionResponse::State(rand_instance(rng))),
        Ok(SessionResponse::Updated(UpdateReport {
            view: rand_name(rng),
            requested_delta: rng.random_range(0..1 << 20) as usize,
            reflected_delta: rng.random_range(0..1 << 20) as usize,
        })),
        Ok(SessionResponse::PoolEdited(EditReport {
            states_before: rng.random_range(0..1 << 20) as usize,
            states_after: rng.random_range(0..1 << 20) as usize,
        })),
        Ok(SessionResponse::Undone),
        Ok(SessionResponse::Stats(rand_stats(rng))),
        Ok(SessionResponse::Subscribed {
            view: rand_name(rng),
            sub: rng.next_u64(),
            image: rand_instance(rng),
        }),
        Ok(SessionResponse::Unsubscribed {
            sub: rng.next_u64(),
        }),
        Err(DispatchError::UnknownSession(rand_name(rng))),
        Err(DispatchError::Lagging {
            want_gen: rng.next_u64(),
            want_seq: rng.next_u64(),
            gen: rng.next_u64(),
            seq: rng.next_u64(),
        }),
    ];
    out.extend(
        session_errors
            .into_iter()
            .map(|e| Err(DispatchError::Session(e))),
    );
    out
}

/// A full frame's bytes for one request.
fn framed(session: &str, req: &SessionRequest) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &encode_request_payload(session, req)).unwrap();
    bytes
}

// ------------------------------------------------------------ round trips

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_variant_round_trips(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        for req in every_request(&mut rng) {
            let payload = encode_request_payload(&session, &req);
            let (s2, r2) = decode_request_payload(&payload).unwrap();
            prop_assert_eq!(&s2, &session);
            prop_assert_eq!(&r2, &req);

            // And through a full frame, too.
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &payload).unwrap();
            let read = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            prop_assert_eq!(&read, &payload);
        }
    }

    #[test]
    fn every_result_variant_round_trips(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        for res in every_result(&mut rng) {
            let payload = encode_result_payload(&res);
            let back = decode_result_payload(&payload).unwrap();
            prop_assert_eq!(&back, &res);

            let mut bytes = Vec::new();
            write_frame(&mut bytes, &payload).unwrap();
            let read = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            prop_assert_eq!(&read, &payload);
        }
    }

    // ------------------------------------------------- corruption refusal

    /// Any single bit flip anywhere in a frame is caught: the checksum
    /// refuses the payload, the length prefix trips the frame reader, or
    /// — if the flip lands in the header fields in a way that still
    /// frames — the decoder refuses the payload.  Never a panic, never a
    /// silently different request.
    #[test]
    fn any_bit_flip_is_refused_or_detected(
        seed in 0u64..1 << 32,
        flip_frac in 0u32..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        let reqs = every_request(&mut rng);
        let req = &reqs[rng.random_range(0..reqs.len())];
        let mut bytes = framed(&session, req);
        let bit = (bytes.len() * 8 - 1).min(
            ((bytes.len() * 8) as u64 * flip_frac as u64 / 1000) as usize,
        );
        bytes[bit / 8] ^= 1 << (bit % 8);

        match read_frame(&mut Cursor::new(&bytes)) {
            Ok(Some(payload)) => {
                // The frame survived: the flip was in the payload *and*
                // collided with the CRC (impossible for one flip), or in
                // a header byte that still frames — then the payload is
                // either intact or refused by the decoder.
                // A typed decode refusal is fine; a *different* request
                // sneaking through is not.
                if let Ok((s2, r2)) = decode_request_payload(&payload) {
                    prop_assert_eq!(&(s2, r2), &(session.clone(), req.clone()));
                }
            }
            Ok(None) => {} // flip shortened the stream to a clean EOF? impossible, but not a panic
            Err(_) => {}   // typed refusal (BadCrc / TooLarge / Io)
        }
    }
}

// ----------------------------------------------------- malformed framing

#[test]
fn bad_crc_is_refused() {
    let mut bytes = framed("alpha", &SessionRequest::Undo);
    *bytes.last_mut().unwrap() ^= 0xFF; // corrupt the payload's last byte
    let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
    assert!(matches!(err, ProtoError::BadCrc { .. }), "{err}");
}

#[test]
fn truncated_frames_are_refused_at_every_cut() {
    let bytes = framed("alpha", &SessionRequest::Stats);
    for cut in 1..bytes.len() {
        match read_frame(&mut Cursor::new(&bytes[..cut])) {
            Err(ProtoError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
            }
            other => panic!("cut {cut}: expected UnexpectedEof, got {other:?}"),
        }
    }
    // Cut 0 is a clean end-of-stream, not an error.
    assert!(read_frame(&mut Cursor::new(&bytes[..0])).unwrap().is_none());
}

#[test]
fn over_limit_length_is_refused_before_allocation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    // No payload bytes behind the huge claim: if the reader tried to
    // allocate-and-read it would report EOF; the limit must fire first.
    let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
    assert!(
        matches!(err, ProtoError::TooLarge { len } if len == MAX_FRAME + 1),
        "{err}"
    );
}

#[test]
fn oversized_payload_is_refused_on_write() {
    let payload = vec![0u8; MAX_FRAME as usize + 1];
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, &payload).unwrap_err();
    assert!(matches!(err, ProtoError::TooLarge { .. }), "{err}");
    assert!(sink.is_empty(), "nothing written for a refused frame");
}

#[test]
fn empty_frame_round_trips() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &[]).unwrap();
    assert_eq!(bytes.len(), FRAME_HEADER);
    let payload = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
    assert!(payload.is_empty());
    // An empty payload is still gated by the decoder.
    assert!(decode_request_payload(&payload).is_err());
}

#[test]
fn request_payload_rejects_trailing_garbage() {
    let mut payload = encode_request_payload("alpha", &SessionRequest::Undo);
    payload.push(0);
    assert!(decode_request_payload(&payload).is_err());
    let mut payload = encode_result_payload(&Ok(SessionResponse::Undone));
    payload.push(0);
    assert!(decode_result_payload(&payload).is_err());
}

// ------------------------------------------------------------ metrics wire

/// A metrics snapshot with every instrument kind populated.
fn demo_metrics() -> compview_obs::MetricsSnapshot {
    let registry = compview_obs::Registry::new();
    registry.counter("serve.frames_in").add(17);
    registry.counter("session.requests").add(5);
    registry.gauge("wal.log_bytes").set(4096);
    let h = registry.histogram("wal.fsync_ns");
    for v in [0u64, 1, 3, 900, 1 << 40] {
        h.record(v);
    }
    registry.snapshot()
}

#[test]
fn metrics_request_marker_cannot_be_an_ordinary_request() {
    let payload = encode_metrics_request_payload();
    assert_eq!(decode_wire_request(&payload).unwrap(), WireRequest::Metrics);
    // The ordinary decoder refuses it (too short for a session name), so
    // the marker can never be misread as a session-addressed request…
    assert!(decode_request_payload(&payload).is_err());
    // …and every ordinary request payload is ≥ 4 bytes, so the reverse
    // collision is impossible too.
    let mut rng = StdRng::seed_from_u64(7);
    for req in every_request(&mut rng) {
        let ordinary = encode_request_payload("alpha", &req);
        assert!(ordinary.len() >= 4);
        assert!(matches!(
            decode_wire_request(&ordinary).unwrap(),
            WireRequest::Dispatch(_, _)
        ));
    }
}

#[test]
fn metrics_response_round_trips_and_rejects_every_truncation() {
    let snap = demo_metrics();
    let payload = encode_metrics_response_payload(&snap);
    assert_eq!(
        decode_metrics_response_payload(&payload).as_ref(),
        Ok(&snap)
    );
    for cut in 0..payload.len() {
        assert!(
            decode_metrics_response_payload(&payload[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // A wrong marker byte is refused before the codec runs.
    let mut wrong = payload.clone();
    wrong[0] = 9;
    assert!(decode_metrics_response_payload(&wrong).is_err());
}

// ------------------------------------------------------------- event wire

/// One of each [`DeltaEvent`] shape, contents randomised by `rng`.
fn every_event(rng: &mut StdRng) -> Vec<DeltaEvent> {
    vec![
        DeltaEvent {
            sub: rng.next_u64(),
            view: rand_name(rng),
            seq: rng.next_u64(),
            kind: DeltaKind::Rows {
                added: rand_instance(rng),
                removed: rand_instance(rng),
            },
        },
        DeltaEvent {
            sub: rng.next_u64(),
            view: rand_name(rng),
            seq: rng.next_u64(),
            kind: DeltaKind::Terminated {
                reason: TerminateReason::NotAComponent {
                    detail: rand_name(rng),
                },
            },
        },
        DeltaEvent {
            sub: rng.next_u64(),
            view: rand_name(rng),
            seq: rng.next_u64(),
            kind: DeltaKind::Terminated {
                reason: TerminateReason::SlowConsumer,
            },
        },
    ]
}

#[test]
fn event_marker_cannot_collide_with_solicited_payloads() {
    let mut rng = StdRng::seed_from_u64(11);
    // Every event frame self-identifies…
    for ev in every_event(&mut rng) {
        let payload = encode_event_payload("alpha", &ev);
        assert!(is_event_payload(&payload));
        // …and the solicited decoders refuse it.
        assert!(decode_result_payload(&payload).is_err());
        assert!(decode_metrics_response_payload(&payload).is_err());
    }
    // No result or metrics payload ever reads as an event.
    for res in every_result(&mut rng) {
        assert!(!is_event_payload(&encode_result_payload(&res)));
    }
    assert!(!is_event_payload(&encode_metrics_response_payload(
        &demo_metrics()
    )));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_event_shape_round_trips(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        for ev in every_event(&mut rng) {
            let payload = encode_event_payload(&session, &ev);
            let (s2, e2) = decode_event_payload(&payload).unwrap();
            prop_assert_eq!(&s2, &session);
            prop_assert_eq!(&e2, &ev);

            // And through a full frame, too.
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &payload).unwrap();
            let read = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            prop_assert_eq!(&read, &payload);
        }
    }

    #[test]
    fn every_event_truncation_is_refused(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        for ev in every_event(&mut rng) {
            let payload = encode_event_payload(&session, &ev);
            for cut in 0..payload.len() {
                prop_assert!(
                    decode_event_payload(&payload[..cut]).is_err(),
                    "truncation at {}/{} decoded",
                    cut,
                    payload.len()
                );
            }
            let mut trailing = payload.clone();
            trailing.push(0);
            prop_assert!(decode_event_payload(&trailing).is_err());
        }
    }

    /// A bit flip in an event payload is either refused or decodes to a
    /// *different but well-formed* event — never a panic.  (Framing CRC
    /// catches flips on the wire; this gates the payload decoder alone.)
    #[test]
    fn event_payload_bit_flips_never_panic(seed in 0u64..1 << 32, flip_frac in 0u32..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        let events = every_event(&mut rng);
        let ev = &events[rng.random_range(0..events.len())];
        let payload = encode_event_payload(&session, ev);
        let bit = (payload.len() * 8 - 1).min(
            ((payload.len() * 8) as u64 * u64::from(flip_frac) / 1000) as usize,
        );
        let mut bytes = payload.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        let _ = decode_event_payload(&bytes); // must return, not panic
    }

    /// The `ReadAt` and `Sessions` sentinel requests round-trip through
    /// the wire-request decoder, and a `SessionsReply` round-trips with
    /// and without a forwarded root-leader address.
    #[test]
    fn topology_verbs_round_trip(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        let view = rand_name(&mut rng);
        let (gen, min_seq, wait_ms) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        let payload = encode_read_at_payload(&session, &view, gen, min_seq, wait_ms);
        prop_assert_eq!(
            decode_wire_request(&payload).unwrap(),
            WireRequest::ReadAt {
                session: session.clone(),
                view,
                gen,
                min_seq,
                wait_ms
            }
        );
        for cut in 5..payload.len() {
            prop_assert!(decode_wire_request(&payload[..cut]).is_err());
        }

        prop_assert_eq!(
            decode_wire_request(&encode_sessions_payload()).unwrap(),
            WireRequest::Sessions
        );

        let replies = [
            SessionsReply { leader: None, sessions: vec![] },
            SessionsReply {
                leader: Some("127.0.0.1:7000".to_owned()),
                sessions: (0..rng.random_range(1..5u32)).map(|_| rand_name(&mut rng)).collect(),
            },
        ];
        for reply in replies {
            let bytes = encode_sessions_reply_payload(&reply);
            prop_assert!(is_sessions_reply_payload(&bytes));
            prop_assert_eq!(decode_sessions_reply_payload(&bytes).unwrap(), reply);
            for cut in 0..bytes.len() {
                prop_assert!(decode_sessions_reply_payload(&bytes[..cut]).is_err());
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            prop_assert!(decode_sessions_reply_payload(&trailing).is_err());
        }
    }

    /// Any single bit flip in a metrics response payload is refused: the
    /// marker check, the snapshot CRC, or the strict structural
    /// validation catches it.
    #[test]
    fn metrics_response_bit_flips_are_refused(flip_frac in 0u32..1000) {
        let snap = demo_metrics();
        let payload = encode_metrics_response_payload(&snap);
        let bit = (payload.len() * 8 - 1).min(
            ((payload.len() * 8) as u64 * u64::from(flip_frac) / 1000) as usize,
        );
        let mut bytes = payload.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_metrics_response_payload(&bytes).is_err(),
            "bit {bit} flip accepted"
        );
    }
}

// ----------------------------------------------------------- tracing wire

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compatibility contract for trace propagation: an *untagged*
    /// request round-trips through the wire decoder and re-encodes to
    /// the same bytes, and a *tagged* request carries the identical
    /// request bytes behind its context words — so a server dispatches
    /// both identically, and old clients never notice the new frame.
    #[test]
    fn untagged_and_traced_requests_dispatch_identically(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        let ctx = TraceCtx {
            trace_id: rng.next_u64(),
            parent_span: rng.next_u64(),
        };
        for req in every_request(&mut rng) {
            let untagged = encode_request_payload(&session, &req);
            match decode_wire_request(&untagged).unwrap() {
                WireRequest::Dispatch(s, r) => {
                    prop_assert_eq!(&s, &session);
                    prop_assert_eq!(&r, &req);
                    // Byte-identical round trip: what an old client sent
                    // is exactly what a new server re-encodes.
                    prop_assert_eq!(&encode_request_payload(&s, &r), &untagged);
                }
                other => prop_assert!(false, "untagged decoded as {other:?}"),
            }

            let traced = encode_traced_request_payload(&session, &req, ctx);
            match decode_wire_request(&traced).unwrap() {
                WireRequest::DispatchTraced { session: s, req: r, ctx: c } => {
                    prop_assert_eq!(&s, &session);
                    prop_assert_eq!(&r, &req);
                    prop_assert_eq!(c, ctx);
                }
                other => prop_assert!(false, "traced decoded as {other:?}"),
            }
            // The tag is a strict prefix: sentinel + kind + two context
            // words, then the unmodified untagged payload.
            prop_assert_eq!(&traced[4 + 1 + 16..], &untagged[..]);

            // Any cut through the tag or the request is refused.
            for cut in 0..traced.len() {
                prop_assert!(decode_wire_request(&traced[..cut]).is_err(), "cut {}", cut);
            }
        }
    }

    /// An untraced WAL shipment encodes byte-identically to the pre-trace
    /// `W_RECORD` layout (a follower that never heard of tracing stays
    /// compatible), a traced one round-trips its context, and cuts
    /// through the leading fields are refused.
    #[test]
    fn wal_record_trace_tag_round_trips(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let session = rand_name(&mut rng);
        let gen = rng.next_u64();
        let bytes: Vec<u8> = (0..rng.random_range(0..48u32)).map(|_| rng.next_u64() as u8).collect();

        let plain = WalFrame::Record {
            session: session.clone(),
            gen,
            bytes: bytes.clone(),
            trace: None,
        };
        let payload = encode_wal_frame_payload(&plain);
        // The legacy layout, reconstructed by hand: kind, subtype, name,
        // gen, raw record bytes.
        let mut legacy = vec![6u8, 1u8];
        legacy.extend_from_slice(&(session.len() as u32).to_le_bytes());
        legacy.extend_from_slice(session.as_bytes());
        legacy.extend_from_slice(&gen.to_le_bytes());
        legacy.extend_from_slice(&bytes);
        prop_assert_eq!(&payload, &legacy);
        prop_assert_eq!(decode_wal_frame_payload(&payload).unwrap(), plain);

        let traced = WalFrame::Record {
            session: session.clone(),
            gen,
            bytes: bytes.clone(),
            trace: Some((rng.next_u64(), rng.next_u64())),
        };
        let payload = encode_wal_frame_payload(&traced);
        prop_assert_eq!(decode_wal_frame_payload(&payload).unwrap(), traced);
        // The trailing record bytes may legitimately be empty, but every
        // cut through the tagged header must be refused.
        let header = 2 + 4 + session.len() + 8 + 16;
        for cut in 0..header {
            prop_assert!(decode_wal_frame_payload(&payload[..cut]).is_err(), "cut {}", cut);
        }
    }

    /// Any single bit flip in a trace response payload is refused: the
    /// marker check or the snapshot's CRC trailer catches it.
    #[test]
    fn trace_response_bit_flips_are_refused(flip_frac in 0u32..1000) {
        let payload = encode_trace_response_payload(&demo_trace());
        let bit = (payload.len() * 8 - 1).min(
            ((payload.len() * 8) as u64 * u64::from(flip_frac) / 1000) as usize,
        );
        let mut bytes = payload.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_trace_response_payload(&bytes).is_err(),
            "bit {bit} flip accepted"
        );
    }

    /// A topology reply round-trips with every optional field populated
    /// and absent, refuses every truncation, and refuses trailing bytes.
    #[test]
    fn topology_reply_round_trips(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let replies = [
            TopologyReply {
                role: TopoRole::Root,
                upstream: None,
                root: None,
                heartbeat_age_ms: None,
                repl_streams: rng.next_u64(),
                subscribers: rng.next_u64(),
                sessions: vec![],
            },
            TopologyReply {
                role: if rng.random_range(0..2u32) == 0 {
                    TopoRole::Follower
                } else {
                    TopoRole::Promoted
                },
                upstream: Some("127.0.0.1:7000".to_owned()),
                root: Some("127.0.0.1:6000".to_owned()),
                heartbeat_age_ms: Some(rng.next_u64() % (u64::MAX - 1)),
                repl_streams: rng.next_u64(),
                subscribers: rng.next_u64(),
                sessions: (0..rng.random_range(1..4u32))
                    .map(|_| TopoSession {
                        name: rand_name(&mut rng),
                        gen: rng.next_u64(),
                        applied: rng.next_u64(),
                        target: rng.next_u64(),
                        lag_age_ms: rng.next_u64(),
                    })
                    .collect(),
            },
        ];
        for reply in replies {
            let bytes = encode_topology_reply_payload(&reply);
            prop_assert!(is_topology_reply_payload(&bytes));
            prop_assert_eq!(&decode_topology_reply_payload(&bytes).unwrap(), &reply);
            for cut in 0..bytes.len() {
                prop_assert!(decode_topology_reply_payload(&bytes[..cut]).is_err());
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            prop_assert!(decode_topology_reply_payload(&trailing).is_err());
        }
    }
}

/// A trace snapshot with a small causal chain recorded on one node.
fn demo_trace() -> compview_obs::TraceSnapshot {
    let tracer = DistTracer::new();
    tracer.configure("127.0.0.1:9999", 1);
    let root = TraceCtx {
        trace_id: tracer.sampled_trace_id(),
        parent_span: 0,
    };
    let span = tracer.span(root, "client.send");
    let child = span.ctx().unwrap();
    tracer.record(child, "wal.append", 100, 50);
    tracer.instant(child, "repl.ship");
    drop(span);
    tracer.drain()
}

#[test]
fn trace_and_topology_request_markers_cannot_be_ordinary_requests() {
    for (payload, want) in [
        (encode_trace_request_payload(), WireRequest::Trace),
        (encode_topology_request_payload(), WireRequest::Topology),
    ] {
        assert_eq!(decode_wire_request(&payload).unwrap(), want);
        // The sentinel prefix can never parse as a session name…
        assert!(decode_request_payload(&payload).is_err());
        // …and extra bytes after the marker are refused.
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_wire_request(&trailing).is_err());
    }
}

#[test]
fn trace_response_round_trips_and_rejects_every_truncation() {
    let snap = demo_trace();
    assert!(!snap.spans.is_empty(), "demo recorded spans");
    let payload = encode_trace_response_payload(&snap);
    assert!(is_trace_reply_payload(&payload));
    assert_eq!(decode_trace_response_payload(&payload).as_ref(), Ok(&snap));
    for cut in 0..payload.len() {
        assert!(
            decode_trace_response_payload(&payload[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
    let mut trailing = payload.clone();
    trailing.push(0);
    assert!(decode_trace_response_payload(&trailing).is_err());
    // A wrong marker byte is refused before the snapshot codec runs.
    let mut wrong = payload.clone();
    wrong[0] = 9;
    assert!(decode_trace_response_payload(&wrong).is_err());
}

#[test]
fn topology_reply_refuses_bad_role_byte() {
    let reply = TopologyReply {
        role: TopoRole::Root,
        upstream: None,
        root: None,
        heartbeat_age_ms: None,
        repl_streams: 1,
        subscribers: 0,
        sessions: vec![],
    };
    let mut bytes = encode_topology_reply_payload(&reply);
    bytes[1] = 7; // role byte follows the marker
    assert!(decode_topology_reply_payload(&bytes).is_err());
}
