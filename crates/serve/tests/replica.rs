//! Replication end to end: WAL shipping from a leader server to a
//! [`Replica`] follower stays **byte-identical** — same WAL files, same
//! `Read` responses, same final states — across injected stream cuts,
//! bit flips, and a leader restart, at 1, 2, and 8 worker threads and 1
//! and 2 dispatcher shards.  Failover is explicit: a promoted follower
//! accepts writes on the same address with nothing acked lost.

use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_obs::MetricsSnapshot;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{Client, ProtoError, Replica, ReplicaOptions, ServeOptions, Server};
use compview_session::{
    wal, ApplyError, CatchupPlan, CheckpointPolicy, DispatchError, MemStore, Service, Session,
    SessionConfig, SessionError, SessionRequest, SyncPolicy,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Serialises the env-twiddling tests (COMPVIEW_THREADS is process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SESSIONS: [&str; 3] = ["alpha", "beta", "gamma"];

fn fault_seed() -> u64 {
    std::env::var("COMPVIEW_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["A"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
        ),
        ("S".to_owned(), vec![Tuple::new([v("b1")])]),
    ]
    .into()
}

fn base() -> Instance {
    Instance::null_model(&sig()).with("R", rel(1, [["a1"]]))
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("COMPVIEW_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("COMPVIEW_THREADS");
    out
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("compview-replica-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_service(dir: &Path, checkpoint: CheckpointPolicy) -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for name in SESSIONS {
        let sig = sig();
        svc.create_durable_session(
            dir,
            name,
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            base(),
            SessionConfig {
                checkpoint,
                ..SessionConfig::default()
            },
            SyncPolicy::Always,
        )
        .unwrap();
    }
    svc
}

/// A non-durable service for the transport-only tests.
fn demo_service() -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for name in SESSIONS {
        let sig = sig();
        let session = Session::open(
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            base(),
            SessionConfig::default(),
        )
        .unwrap();
        svc.add_session(name, session).unwrap();
    }
    svc
}

fn wal_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    SESSIONS
        .iter()
        .map(|n| {
            (
                (*n).to_owned(),
                std::fs::read(dir.join(format!("{n}.wal"))).unwrap_or_default(),
            )
        })
        .collect()
}

/// Poll until the follower's WAL files are byte-identical to the
/// leader's (writes must have quiesced on the leader side).
fn wait_converged(ldir: &Path, fdir: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if wal_files(ldir) == wal_files(fdir) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged: leader {:?} vs follower {:?}",
            wal_files(ldir)
                .iter()
                .map(|(n, b)| (n.clone(), b.len()))
                .collect::<Vec<_>>(),
            wal_files(fdir)
                .iter()
                .map(|(n, b)| (n.clone(), b.len()))
                .collect::<Vec<_>>()
        );
        thread::sleep(Duration::from_millis(10));
    }
}

fn replica_options(seed: u64) -> ReplicaOptions {
    ReplicaOptions {
        serve: ServeOptions::default(),
        retry_base: Duration::from_millis(2),
        retry_max: Duration::from_millis(40),
        read_timeout: Duration::from_millis(500),
        connect_attempts: 500,
        seed,
    }
}

fn leader_options(shards: usize) -> ServeOptions {
    ServeOptions {
        shards,
        heartbeat_interval: Some(Duration::from_millis(25)),
        ..ServeOptions::default()
    }
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, value)| *value)
}

fn gauge(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.gauges
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, value)| *value)
}

fn insert(relation: &str, value: &str) -> SessionRequest {
    SessionRequest::InsertPoolTuple {
        relation: relation.into(),
        tuple: Tuple::new([v(value)]),
    }
}

fn register_r() -> SessionRequest {
    SessionRequest::RegisterView {
        name: "r".into(),
        mask: 0b01,
    }
}

fn update_r(tuples: &[&str]) -> SessionRequest {
    SessionRequest::Update {
        view: "r".into(),
        new_state: Instance::null_model(&sig())
            .with("R", rel(1, tuples.iter().map(|t| [(*t).to_owned()]))),
    }
}

fn read_r() -> SessionRequest {
    SessionRequest::Read { view: "r".into() }
}

// ---------------------------------------------------------------------
// Fault-injecting TCP proxy
// ---------------------------------------------------------------------

/// What to do to one proxied connection's leader→follower byte stream.
#[derive(Clone, Copy, Debug)]
enum Plan {
    /// Forward verbatim.
    Clean,
    /// Sever the connection after this many leader→follower bytes — the
    /// follower sees a cut mid-frame at an arbitrary byte prefix.
    CutAfter(usize),
    /// XOR one bit into the byte at this offset of the leader→follower
    /// stream — the follower must detect the corruption (wire CRC or
    /// apply-path CRC) and never apply the damage.
    FlipAt(usize),
}

/// A byte-level TCP proxy between follower and leader that applies one
/// [`Plan`] per accepted connection (popped from a queue; `Clean` once
/// the queue is empty).  The upstream address is swappable, so a leader
/// restarted on a fresh port stays reachable through the same proxy
/// address the follower was given.
struct Proxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<String>>,
    plans: Arc<Mutex<VecDeque<Plan>>>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream_addr: String) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let upstream = Arc::new(Mutex::new(upstream_addr));
        let plans: Arc<Mutex<VecDeque<Plan>>> = Arc::default();
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let upstream = Arc::clone(&upstream);
            let plans = Arc::clone(&plans);
            let live = Arc::clone(&live);
            let stop = Arc::clone(&stop);
            thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        let _ = client.set_nonblocking(false);
                        let plan = plans.lock().unwrap().pop_front().unwrap_or(Plan::Clean);
                        let target = upstream.lock().unwrap().clone();
                        if let Ok(clone) = client.try_clone() {
                            live.lock().unwrap().push(clone);
                        }
                        thread::spawn(move || pipe_conn(client, &target, plan));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            })
        };
        Proxy {
            addr,
            upstream,
            plans,
            live,
            stop,
            accept: Some(accept),
        }
    }

    fn push_plans(&self, plans: impl IntoIterator<Item = Plan>) {
        self.plans.lock().unwrap().extend(plans);
    }

    fn set_upstream(&self, addr: String) {
        *self.upstream.lock().unwrap() = addr;
    }

    /// Sever every live proxied connection, forcing the follower to
    /// redial (and hit whatever plans are queued).
    fn sever_live(&self) {
        for s in self.live.lock().unwrap().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sever_live();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn pipe_conn(client: TcpStream, target: &str, plan: Plan) {
    let Ok(upstream) = TcpStream::connect(target) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    // follower → leader: always verbatim (faults model a lossy *feed*).
    if let (Ok(mut from), Ok(to)) = (client.try_clone(), upstream.try_clone()) {
        thread::spawn(move || copy_dir(&mut from, to, Plan::Clean));
    }
    // leader → follower: through the fault plan.
    let mut from = upstream;
    copy_dir(&mut from, client, plan);
}

fn copy_dir(from: &mut TcpStream, mut to: TcpStream, plan: Plan) {
    let mut buf = [0u8; 2048];
    let mut seen: usize = 0;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = buf[..n].to_vec();
        if let Plan::FlipAt(at) = plan {
            if at >= seen && at < seen + n {
                chunk[at - seen] ^= 0x10;
            }
        }
        let cut = match plan {
            Plan::CutAfter(limit) if seen + n >= limit => {
                chunk.truncate(limit.saturating_sub(seen));
                true
            }
            _ => false,
        };
        seen += n;
        if to.write_all(&chunk).is_err() || cut {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// Headline: byte-identical convergence under faults + leader restart
// ---------------------------------------------------------------------

#[test]
fn follower_converges_byte_identical_under_cuts_flips_and_leader_restart() {
    let _guard = ENV_LOCK.lock().unwrap();
    for (threads, shards) in [(1usize, 1usize), (2, 2), (8, 2)] {
        with_threads(threads, || run_fault_scenario(threads, shards));
    }
}

fn run_fault_scenario(threads: usize, shards: usize) {
    let seed = fault_seed() ^ (((threads as u64) << 32) | shards as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let ldir = test_dir(&format!("hl-leader-{threads}-{shards}"));
    let fdir = test_dir(&format!("hl-follower-{threads}-{shards}"));

    let opts = leader_options(shards);
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        opts.clone(),
    )
    .unwrap();
    let proxy = Proxy::start(server.local_addr().to_string());
    let proxy_addr = proxy.addr.to_string();

    // The follower only ever knows the proxy's address.
    let replica = Replica::start(
        "127.0.0.1:0",
        &proxy_addr,
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(seed),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    for name in SESSIONS {
        client.request(name, &register_r()).unwrap().unwrap();
    }

    // Queue a run of cuts and bit flips for the follower's next
    // connections, then sever the live (clean) link to make it redial.
    proxy.push_plans((0..6).map(|i| {
        if i % 2 == 0 {
            Plan::CutAfter(rng.random_range(40..3000))
        } else {
            Plan::FlipAt(rng.random_range(16..1500))
        }
    }));
    proxy.sever_live();

    // Keep writing while the follower fights through the fault plans.
    // Early rounds grow the pools a little; later rounds are updates
    // (durable records without pool growth — enumeration stays small).
    for round in 0..6u32 {
        for name in SESSIONS {
            let req = if round < 2 {
                insert("R", &format!("w{round}"))
            } else if round % 2 == 0 {
                update_r(&["a1", "w0"])
            } else {
                update_r(&["a2", "w1"])
            };
            client.request(name, &req).unwrap().unwrap();
        }
        // A rejected durable write replicates too (the rejection is in
        // the leader's log; follower outcomes must match bit for bit).
        let rejected = client.request("beta", &update_r(&["nope"])).unwrap();
        assert!(rejected.is_err(), "update to a non-pool tuple must fail");
        thread::sleep(Duration::from_millis(15));
    }

    // Leader restart: kill it, verify the follower keeps serving reads
    // and refuses writes with a typed redirect, then bring the leader
    // back on a fresh port behind the same proxy address.
    drop(client);
    let svc = server.shutdown();

    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let during = fclient.request("alpha", &read_r()).unwrap();
    assert!(
        during.is_ok(),
        "follower must serve reads while the leader is down: {during:?}"
    );
    match fclient.request("alpha", &insert("R", "refused")).unwrap() {
        Err(DispatchError::Session(SessionError::NotLeader { leader_addr })) => {
            assert_eq!(leader_addr, proxy_addr);
        }
        other => panic!("follower must refuse writes with NotLeader, got {other:?}"),
    }

    let server = Server::bind_with("127.0.0.1:0", svc, opts).unwrap();
    proxy.set_upstream(server.local_addr().to_string());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .request("alpha", &insert("R", "post"))
        .unwrap()
        .unwrap();
    client
        .request("alpha", &update_r(&["post"]))
        .unwrap()
        .unwrap();
    for round in 6..9u32 {
        for name in SESSIONS {
            let req = if round % 2 == 0 {
                update_r(&["a1", "w0"])
            } else {
                update_r(&["w0", "w1"])
            };
            client.request(name, &req).unwrap().unwrap();
        }
    }

    wait_converged(&ldir, &fdir);

    // Read responses are byte-identical, leader vs follower.
    for name in SESSIONS {
        let l = client.request(name, &read_r()).unwrap();
        let f = fclient.request(name, &read_r()).unwrap();
        assert_eq!(
            wal::encode_result(&l),
            wal::encode_result(&f),
            "{name}: leader read {l:?} vs follower read {f:?}"
        );
    }

    let snap = fclient.metrics().unwrap();
    assert!(
        counter(&snap, "repl.reconnects") >= 1,
        "injected faults must show up as reconnects: {:?}",
        snap.counters
    );
    assert_eq!(
        gauge(&snap, "repl.lag_records"),
        0,
        "converged means no lag"
    );
    assert!(
        replica.fault().is_none(),
        "transport faults must never be fatal: {:?}",
        replica.fault()
    );

    drop(client);
    drop(fclient);
    let fsvc = replica.shutdown();
    let lsvc = server.shutdown();
    for name in SESSIONS {
        assert_eq!(
            lsvc.session(name).unwrap().state(),
            fsvc.session(name).unwrap().state(),
            "{name}: final states must match"
        );
    }
    drop(proxy);
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Explicit failover
// ---------------------------------------------------------------------

#[test]
fn promotion_after_leader_kill_accepts_writes_and_loses_nothing() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("promo-leader");
    let fdir = test_dir("promo-follower");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let leader_addr = server.local_addr().to_string();
    let replica = Replica::start(
        "127.0.0.1:0",
        &leader_addr,
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();
    let faddr = replica.local_addr();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "z1"))
        .unwrap()
        .unwrap();

    // Pre-promotion, the follower is read-only with a typed redirect.
    let mut fclient = Client::connect(faddr).unwrap();
    match fclient.request("alpha", &insert("R", "z2")).unwrap() {
        Err(DispatchError::Session(SessionError::NotLeader { leader_addr: at })) => {
            assert_eq!(at, leader_addr);
        }
        other => panic!("want NotLeader before promotion, got {other:?}"),
    }

    wait_converged(&ldir, &fdir);
    drop(client);
    server.shutdown(); // leader killed
    let leader_wals = wal_files(&ldir);

    // Promote: same address, now a leader.
    drop(fclient);
    let promoted = replica.promote().unwrap();
    assert_eq!(promoted.local_addr(), faddr);
    let mut pclient = Client::connect(faddr).unwrap();
    pclient
        .request("alpha", &insert("R", "z2"))
        .unwrap()
        .unwrap();
    pclient
        .request("alpha", &update_r(&["a1", "z1", "z2"]))
        .unwrap()
        .unwrap();

    drop(pclient);
    let fsvc = promoted.shutdown();
    // The update went through pool tuples from before AND after the
    // failover: nothing the old leader acked was lost.
    assert_eq!(
        fsvc.session("alpha").unwrap().state(),
        &Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["z1"], ["z2"]]))
    );
    // And the old leader's log is a byte prefix of the promoted log.
    let promoted_wals = wal_files(&fdir);
    for (name, bytes) in &leader_wals {
        assert!(
            promoted_wals[name].starts_with(bytes),
            "{name}: promoted log must extend the old leader's log"
        );
    }
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Checkpoint interactions
// ---------------------------------------------------------------------

#[test]
fn follower_behind_the_checkpoint_horizon_resyncs_via_reset() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("hzn-leader");
    let fdir = test_dir("hzn-follower");

    let ckpt = CheckpointPolicy {
        max_records: 4,
        max_log_bytes: 0,
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, ckpt),
        leader_options(1),
    )
    .unwrap();
    let leader_addr = server.local_addr().to_string();

    let replica = Replica::start(
        "127.0.0.1:0",
        &leader_addr,
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "p0"))
        .unwrap()
        .unwrap();
    wait_converged(&ldir, &fdir);

    // Take the follower down, then advance the leader far enough that
    // auto-checkpoints compact away everything the follower has.
    drop(replica.shutdown());
    client
        .request("alpha", &insert("R", "q0"))
        .unwrap()
        .unwrap();
    for i in 0..10u32 {
        let req = if i % 2 == 0 {
            update_r(&["q0"])
        } else {
            update_r(&["a1", "p0"])
        };
        client.request("alpha", &req).unwrap().unwrap();
    }

    // Reopen the follower from its own directory: its generation is now
    // behind the horizon, so the leader must answer with a Reset.
    let (svc, reports) = Service::open_dir(&fdir, SyncPolicy::Always, |_| {
        (
            SubschemaComponents::singletons(sig()),
            Schema::unconstrained(sig()),
        )
    })
    .unwrap();
    assert!(reports.values().all(|r| r.is_ok()), "{reports:?}");
    let replica = Replica::start(
        "127.0.0.1:0",
        &leader_addr,
        svc,
        replica_options(fault_seed() ^ 1),
    )
    .unwrap();
    wait_converged(&ldir, &fdir);

    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let snap = fclient.metrics().unwrap();
    assert!(
        counter(&snap, "repl.resets") >= 1,
        "the re-sync must have gone through a snapshot reset: {:?}",
        snap.counters
    );
    let l = client.request("alpha", &read_r()).unwrap();
    let f = fclient.request("alpha", &read_r()).unwrap();
    assert_eq!(wal::encode_result(&l), wal::encode_result(&f));

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn live_tail_survives_leader_auto_checkpoints() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("live-ckpt-leader");
    let fdir = test_dir("live-ckpt-follower");

    let ckpt = CheckpointPolicy {
        max_records: 3,
        max_log_bytes: 0,
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, ckpt),
        leader_options(1),
    )
    .unwrap();
    let replica = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();

    // Every third record triggers a checkpoint on the leader, shipping
    // live Reset frames through the attached follower's stream.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "c0"))
        .unwrap()
        .unwrap();
    for i in 0..12u32 {
        let req = if i % 2 == 0 {
            update_r(&["a1", "c0"])
        } else {
            update_r(&["a2"])
        };
        client.request("alpha", &req).unwrap().unwrap();
    }
    wait_converged(&ldir, &fdir);
    assert!(replica.fault().is_none(), "{:?}", replica.fault());

    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let snap = fclient.metrics().unwrap();
    assert!(
        counter(&snap, "repl.resets") >= 1,
        "live checkpoints must arrive as resets: {:?}",
        snap.counters
    );
    let l = client.request("alpha", &read_r()).unwrap();
    let f = fclient.request("alpha", &read_r()).unwrap();
    assert_eq!(wal::encode_result(&l), wal::encode_result(&f));

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Follower subscriptions
// ---------------------------------------------------------------------

#[test]
fn follower_subscribers_see_deltas_from_replicated_records() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("sub-leader");
    let fdir = test_dir("sub-follower");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let replica = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "s1"))
        .unwrap()
        .unwrap();
    wait_converged(&ldir, &fdir);

    // Subscribe on the *follower*; mutate on the *leader*.
    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let (sub, image) = fclient.subscribe("alpha", "r").unwrap().unwrap();
    assert_eq!(
        image,
        Instance::null_model(&sig()).with("R", rel(1, [["a1"]]))
    );
    client
        .request("alpha", &update_r(&["s1"]))
        .unwrap()
        .unwrap();

    let (session, event) = fclient.next_event().unwrap();
    assert_eq!(session, "alpha");
    assert_eq!(event.sub, sub, "delta must land on the follower's sub");

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Satellite: idle-connection hygiene
// ---------------------------------------------------------------------

#[test]
fn idle_connections_are_reaped_and_counted() {
    let _guard = ENV_LOCK.lock().unwrap();
    let opts = ServeOptions {
        read_timeout: Some(Duration::from_millis(80)),
        ..ServeOptions::default()
    };
    let server = Server::bind_with("127.0.0.1:0", demo_service(), opts).unwrap();
    let addr = server.local_addr();

    // A peer that completes the handshake, then stalls forever.
    let mut stalled = TcpStream::connect(addr).unwrap();
    let mut hs = [0u8; 6];
    stalled.read_exact(&mut hs).unwrap();
    stalled.write_all(b"CVRPC1").unwrap();

    // A healthy client keeps talking through the idle window unharmed.
    let mut healthy = Client::connect(addr).unwrap();
    for _ in 0..8 {
        healthy
            .request("alpha", &SessionRequest::Stats)
            .unwrap()
            .unwrap();
        thread::sleep(Duration::from_millis(25));
    }

    let snap = healthy.metrics().unwrap();
    assert!(
        counter(&snap, "serve.idle_disconnects") >= 1,
        "the stalled peer must be reaped and counted: {:?}",
        snap.counters
    );
    // The server hung up on the stalled socket.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let n = stalled.read(&mut hs).unwrap_or(0);
    assert_eq!(n, 0, "stalled connection must be closed by the server");

    drop(healthy);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Satellite: typed, sticky connection loss
// ---------------------------------------------------------------------

#[test]
fn lost_connection_yields_one_sticky_typed_error() {
    let _guard = ENV_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    let (sub, _image) = client.subscribe("alpha", "r").unwrap().unwrap();

    // Park one delta event in the inbox: pipeline an update and a
    // metrics probe, then collect the probe — the event frame sits
    // between the two responses and gets read past.
    client.send("alpha", &update_r(&["a2"])).unwrap();
    client.send_metrics().unwrap();
    client.recv().unwrap().unwrap();
    let _ = client.recv_metrics().unwrap();

    server.shutdown();

    // Every receive after the loss is the same typed error — never a
    // panic, never a shifting raw io::Error.
    let errs: Vec<String> = (0..3)
        .map(|_| match client.recv() {
            Err(ProtoError::ConnectionLost { detail }) => detail,
            other => panic!("want ConnectionLost, got {other:?}"),
        })
        .collect();
    assert_eq!(errs[0], errs[1]);
    assert_eq!(errs[1], errs[2]);

    // Arrivals parked before the loss stay readable…
    let (session, event) = client.next_event().unwrap();
    assert_eq!(session, "alpha");
    assert_eq!(event.sub, sub);
    // …and once drained, the sticky error is back.
    match client.next_event() {
        Err(ProtoError::ConnectionLost { .. }) => {}
        other => panic!("want ConnectionLost after the inbox drains, got {other:?}"),
    }
    match client.send("alpha", &SessionRequest::Stats) {
        Err(ProtoError::ConnectionLost { .. }) => {}
        other => panic!("sends must be refused the same way, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Apply path: byte-identical at every prefix, corruption refused
// ---------------------------------------------------------------------

#[test]
fn replicated_apply_is_byte_identical_at_every_prefix_and_refuses_corruption() {
    let open_mem = || {
        let (store, bytes) = MemStore::new();
        let sig = sig();
        let session = Session::open_durable(
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            base(),
            SessionConfig::default(),
            Box::new(store),
            SyncPolicy::Always,
        )
        .unwrap();
        (session, bytes)
    };

    let (mut leader, leader_bytes) = open_mem();
    leader.serve(register_r()).unwrap();
    for i in 0..5u32 {
        leader.serve(insert("R", &format!("m{i}"))).unwrap();
    }
    leader.serve(update_r(&["a2"])).unwrap();

    // A brand-new follower (generation 0) must be offered a Reset.
    let plan = leader.replication_catchup(0, 0).unwrap();
    let CatchupPlan::Reset {
        gen,
        record0,
        frames,
    } = plan
    else {
        panic!("fresh follower must get a Reset catch-up plan");
    };
    assert_ne!(gen, 0);
    assert!(!frames.is_empty());
    let want = leader_bytes.lock().unwrap().clone();
    assert_eq!(
        wal::MAGIC.len() + record0.len() + frames.iter().map(Vec::len).sum::<usize>(),
        want.len(),
        "catch-up must cover the whole leader log after the file magic"
    );

    let (mut follower, follower_bytes) = open_mem();
    follower.apply_reset(&record0).unwrap();
    let mut upto = wal::MAGIC.len() + record0.len();
    assert_eq!(&follower_bytes.lock().unwrap()[..], &want[..upto]);

    for (k, frame) in frames.iter().enumerate() {
        // A flipped payload byte is refused with a typed error, and
        // writes nothing.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        let before = follower_bytes.lock().unwrap().clone();
        match follower.apply_replicated(&bad) {
            Err(ApplyError::BadRecord { .. } | ApplyError::BadPayload { .. }) => {}
            other => panic!("corrupt record must be refused, got {other:?}"),
        }
        assert_eq!(
            *follower_bytes.lock().unwrap(),
            before,
            "a refused record must write nothing"
        );
        // Skipping ahead is a typed gap, also refused.
        if k + 1 < frames.len() {
            match follower.apply_replicated(&frames[k + 1]) {
                Err(ApplyError::Gap { .. }) => {}
                other => panic!("skipped record must be a Gap, got {other:?}"),
            }
        }
        let seq = follower.apply_replicated(frame).unwrap();
        assert_eq!(seq, k as u64 + 1);
        upto += frame.len();
        assert_eq!(follower_bytes.lock().unwrap().len(), upto);
        assert_eq!(&follower_bytes.lock().unwrap()[..], &want[..upto]);
    }

    assert_eq!(*follower_bytes.lock().unwrap(), want);
    assert_eq!(follower.state(), leader.state());
    assert_eq!(follower.wal_gen(), leader.wal_gen());
    assert_eq!(follower.wal_last_seq(), leader.wal_last_seq());
}
