//! Replication end to end: WAL shipping from a leader server to a
//! [`Replica`] follower stays **byte-identical** — same WAL files, same
//! `Read` responses, same final states — across injected stream cuts,
//! bit flips, and a leader restart, at 1, 2, and 8 worker threads and 1
//! and 2 dispatcher shards.  Failover is explicit: a promoted follower
//! accepts writes on the same address with nothing acked lost.

use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_obs::{DistTracer, MetricsSnapshot, SpanRecord, TraceCtx};
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{
    Client, Mirror, MirrorSpec, ProtoError, Replica, ReplicaOptions, ServeOptions, Server,
};
use compview_session::{
    wal, ApplyError, CatchupPlan, CheckpointPolicy, DispatchError, FsStore, MemStore, Service,
    Session, SessionConfig, SessionError, SessionRequest, SyncPolicy,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Serialises the env-twiddling tests (COMPVIEW_THREADS is process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SESSIONS: [&str; 3] = ["alpha", "beta", "gamma"];

fn fault_seed() -> u64 {
    std::env::var("COMPVIEW_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["A"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
        ),
        ("S".to_owned(), vec![Tuple::new([v("b1")])]),
    ]
    .into()
}

fn base() -> Instance {
    Instance::null_model(&sig()).with("R", rel(1, [["a1"]]))
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("COMPVIEW_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("COMPVIEW_THREADS");
    out
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("compview-replica-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_service(dir: &Path, checkpoint: CheckpointPolicy) -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for name in SESSIONS {
        let sig = sig();
        svc.create_durable_session(
            dir,
            name,
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            base(),
            SessionConfig {
                checkpoint,
                ..SessionConfig::default()
            },
            SyncPolicy::Always,
        )
        .unwrap();
    }
    svc
}

/// A non-durable service for the transport-only tests.
fn demo_service() -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for name in SESSIONS {
        let sig = sig();
        let session = Session::open(
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            base(),
            SessionConfig::default(),
        )
        .unwrap();
        svc.add_session(name, session).unwrap();
    }
    svc
}

fn wal_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    SESSIONS
        .iter()
        .map(|n| {
            (
                (*n).to_owned(),
                std::fs::read(dir.join(format!("{n}.wal"))).unwrap_or_default(),
            )
        })
        .collect()
}

/// Poll until the follower's WAL files are byte-identical to the
/// leader's (writes must have quiesced on the leader side).
fn wait_converged(ldir: &Path, fdir: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if wal_files(ldir) == wal_files(fdir) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged: leader {:?} vs follower {:?}",
            wal_files(ldir)
                .iter()
                .map(|(n, b)| (n.clone(), b.len()))
                .collect::<Vec<_>>(),
            wal_files(fdir)
                .iter()
                .map(|(n, b)| (n.clone(), b.len()))
                .collect::<Vec<_>>()
        );
        thread::sleep(Duration::from_millis(10));
    }
}

fn replica_options(seed: u64) -> ReplicaOptions {
    ReplicaOptions {
        serve: ServeOptions::default(),
        retry_base: Duration::from_millis(2),
        retry_max: Duration::from_millis(40),
        read_timeout: Duration::from_millis(500),
        connect_attempts: 500,
        seed,
        discover_interval: Duration::from_millis(50),
    }
}

fn leader_options(shards: usize) -> ServeOptions {
    ServeOptions {
        shards,
        heartbeat_interval: Some(Duration::from_millis(25)),
        ..ServeOptions::default()
    }
}

/// Options for a follower that is itself an upstream: its own server
/// must heartbeat fast enough for a downstream's 500 ms read timeout.
fn follower_options(seed: u64) -> ReplicaOptions {
    ReplicaOptions {
        serve: leader_options(1),
        ..replica_options(seed)
    }
}

/// A [`Mirror`] reproducing exactly what [`durable_service`] creates, so
/// discovered sessions take the pure-tail catch-up path.
fn mirror_for(dir: &Path) -> Mirror<SubschemaComponents> {
    Mirror {
        dir: dir.to_path_buf(),
        policy: SyncPolicy::Always,
        spec: Arc::new(|_name: &str| {
            let sig = sig();
            Some(MirrorSpec {
                family: SubschemaComponents::singletons(sig.clone()),
                schema: Schema::unconstrained(sig),
                pools: pools(),
                base: base(),
                config: SessionConfig::default(),
            })
        }),
    }
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, value)| *value)
}

fn gauge(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.gauges
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, value)| *value)
}

fn insert(relation: &str, value: &str) -> SessionRequest {
    SessionRequest::InsertPoolTuple {
        relation: relation.into(),
        tuple: Tuple::new([v(value)]),
    }
}

fn register_r() -> SessionRequest {
    SessionRequest::RegisterView {
        name: "r".into(),
        mask: 0b01,
    }
}

fn update_r(tuples: &[&str]) -> SessionRequest {
    SessionRequest::Update {
        view: "r".into(),
        new_state: Instance::null_model(&sig())
            .with("R", rel(1, tuples.iter().map(|t| [(*t).to_owned()]))),
    }
}

fn read_r() -> SessionRequest {
    SessionRequest::Read { view: "r".into() }
}

// ---------------------------------------------------------------------
// Fault-injecting TCP proxy
// ---------------------------------------------------------------------

/// What to do to one proxied connection's leader→follower byte stream.
#[derive(Clone, Copy, Debug)]
enum Plan {
    /// Forward verbatim.
    Clean,
    /// Sever the connection after this many leader→follower bytes — the
    /// follower sees a cut mid-frame at an arbitrary byte prefix.
    CutAfter(usize),
    /// XOR one bit into the byte at this offset of the leader→follower
    /// stream — the follower must detect the corruption (wire CRC or
    /// apply-path CRC) and never apply the damage.
    FlipAt(usize),
    /// Forward this many leader→follower bytes, then silently discard
    /// everything after — the connection stays open (no FIN, no RST), so
    /// the follower sees a link that looks alive but delivers nothing.
    SwallowAfter(usize),
}

/// A byte-level TCP proxy between follower and leader that applies one
/// [`Plan`] per accepted connection (popped from a queue; `Clean` once
/// the queue is empty).  The upstream address is swappable, so a leader
/// restarted on a fresh port stays reachable through the same proxy
/// address the follower was given.
struct Proxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<String>>,
    plans: Arc<Mutex<VecDeque<Plan>>>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream_addr: String) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let upstream = Arc::new(Mutex::new(upstream_addr));
        let plans: Arc<Mutex<VecDeque<Plan>>> = Arc::default();
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let upstream = Arc::clone(&upstream);
            let plans = Arc::clone(&plans);
            let live = Arc::clone(&live);
            let stop = Arc::clone(&stop);
            thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        let _ = client.set_nonblocking(false);
                        let plan = plans.lock().unwrap().pop_front().unwrap_or(Plan::Clean);
                        let target = upstream.lock().unwrap().clone();
                        if let Ok(clone) = client.try_clone() {
                            live.lock().unwrap().push(clone);
                        }
                        thread::spawn(move || pipe_conn(client, &target, plan));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            })
        };
        Proxy {
            addr,
            upstream,
            plans,
            live,
            stop,
            accept: Some(accept),
        }
    }

    fn push_plans(&self, plans: impl IntoIterator<Item = Plan>) {
        self.plans.lock().unwrap().extend(plans);
    }

    fn set_upstream(&self, addr: String) {
        *self.upstream.lock().unwrap() = addr;
    }

    /// Sever every live proxied connection, forcing the follower to
    /// redial (and hit whatever plans are queued).
    fn sever_live(&self) {
        for s in self.live.lock().unwrap().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sever_live();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn pipe_conn(client: TcpStream, target: &str, plan: Plan) {
    let Ok(upstream) = TcpStream::connect(target) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    // follower → leader: always verbatim (faults model a lossy *feed*).
    if let (Ok(mut from), Ok(to)) = (client.try_clone(), upstream.try_clone()) {
        thread::spawn(move || copy_dir(&mut from, to, Plan::Clean));
    }
    // leader → follower: through the fault plan.
    let mut from = upstream;
    copy_dir(&mut from, client, plan);
}

fn copy_dir(from: &mut TcpStream, mut to: TcpStream, plan: Plan) {
    let mut buf = [0u8; 2048];
    let mut seen: usize = 0;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = buf[..n].to_vec();
        if let Plan::FlipAt(at) = plan {
            if at >= seen && at < seen + n {
                chunk[at - seen] ^= 0x10;
            }
        }
        let cut = match plan {
            Plan::CutAfter(limit) if seen + n >= limit => {
                chunk.truncate(limit.saturating_sub(seen));
                true
            }
            _ => false,
        };
        if let Plan::SwallowAfter(limit) = plan {
            // Keep reading (so the upstream never blocks) but stop
            // forwarding — and never shut the downstream half, so the
            // receiver cannot tell the link died.
            chunk.truncate(limit.saturating_sub(seen));
            seen += n;
            if !chunk.is_empty() && to.write_all(&chunk).is_err() {
                break;
            }
            continue;
        }
        seen += n;
        if to.write_all(&chunk).is_err() || cut {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// Headline: byte-identical convergence under faults + leader restart
// ---------------------------------------------------------------------

#[test]
fn follower_converges_byte_identical_under_cuts_flips_and_leader_restart() {
    let _guard = ENV_LOCK.lock().unwrap();
    for (threads, shards) in [(1usize, 1usize), (2, 2), (8, 2)] {
        with_threads(threads, || run_fault_scenario(threads, shards));
    }
}

fn run_fault_scenario(threads: usize, shards: usize) {
    let seed = fault_seed() ^ (((threads as u64) << 32) | shards as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let ldir = test_dir(&format!("hl-leader-{threads}-{shards}"));
    let fdir = test_dir(&format!("hl-follower-{threads}-{shards}"));

    let opts = leader_options(shards);
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        opts.clone(),
    )
    .unwrap();
    let proxy = Proxy::start(server.local_addr().to_string());
    let proxy_addr = proxy.addr.to_string();

    // The follower only ever knows the proxy's address.
    let replica = Replica::start(
        "127.0.0.1:0",
        &proxy_addr,
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(seed),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    for name in SESSIONS {
        client.request(name, &register_r()).unwrap().unwrap();
    }

    // Queue a run of cuts and bit flips for the follower's next
    // connections, then sever the live (clean) link to make it redial.
    proxy.push_plans((0..6).map(|i| {
        if i % 2 == 0 {
            Plan::CutAfter(rng.random_range(40..3000))
        } else {
            Plan::FlipAt(rng.random_range(16..1500))
        }
    }));
    proxy.sever_live();

    // Keep writing while the follower fights through the fault plans.
    // Early rounds grow the pools a little; later rounds are updates
    // (durable records without pool growth — enumeration stays small).
    for round in 0..6u32 {
        for name in SESSIONS {
            let req = if round < 2 {
                insert("R", &format!("w{round}"))
            } else if round % 2 == 0 {
                update_r(&["a1", "w0"])
            } else {
                update_r(&["a2", "w1"])
            };
            client.request(name, &req).unwrap().unwrap();
        }
        // A rejected durable write replicates too (the rejection is in
        // the leader's log; follower outcomes must match bit for bit).
        let rejected = client.request("beta", &update_r(&["nope"])).unwrap();
        assert!(rejected.is_err(), "update to a non-pool tuple must fail");
        thread::sleep(Duration::from_millis(15));
    }

    // Leader restart: kill it, verify the follower keeps serving reads
    // and refuses writes with a typed redirect, then bring the leader
    // back on a fresh port behind the same proxy address.
    drop(client);
    let svc = server.shutdown();

    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let during = fclient.request("alpha", &read_r()).unwrap();
    assert!(
        during.is_ok(),
        "follower must serve reads while the leader is down: {during:?}"
    );
    match fclient.request("alpha", &insert("R", "refused")).unwrap() {
        Err(DispatchError::Session(SessionError::NotLeader { leader_addr })) => {
            assert_eq!(leader_addr, proxy_addr);
        }
        other => panic!("follower must refuse writes with NotLeader, got {other:?}"),
    }

    let server = Server::bind_with("127.0.0.1:0", svc, opts).unwrap();
    proxy.set_upstream(server.local_addr().to_string());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .request("alpha", &insert("R", "post"))
        .unwrap()
        .unwrap();
    client
        .request("alpha", &update_r(&["post"]))
        .unwrap()
        .unwrap();
    for round in 6..9u32 {
        for name in SESSIONS {
            let req = if round % 2 == 0 {
                update_r(&["a1", "w0"])
            } else {
                update_r(&["w0", "w1"])
            };
            client.request(name, &req).unwrap().unwrap();
        }
    }

    wait_converged(&ldir, &fdir);

    // Read responses are byte-identical, leader vs follower.
    for name in SESSIONS {
        let l = client.request(name, &read_r()).unwrap();
        let f = fclient.request(name, &read_r()).unwrap();
        assert_eq!(
            wal::encode_result(&l),
            wal::encode_result(&f),
            "{name}: leader read {l:?} vs follower read {f:?}"
        );
    }

    let snap = fclient.metrics().unwrap();
    assert!(
        counter(&snap, "repl.reconnects") >= 1,
        "injected faults must show up as reconnects: {:?}",
        snap.counters
    );
    assert_eq!(
        gauge(&snap, "repl.lag_records"),
        0,
        "converged means no lag"
    );
    assert!(
        replica.fault().is_none(),
        "transport faults must never be fatal: {:?}",
        replica.fault()
    );

    drop(client);
    drop(fclient);
    let fsvc = replica.shutdown();
    let lsvc = server.shutdown();
    for name in SESSIONS {
        assert_eq!(
            lsvc.session(name).unwrap().state(),
            fsvc.session(name).unwrap().state(),
            "{name}: final states must match"
        );
    }
    drop(proxy);
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Explicit failover
// ---------------------------------------------------------------------

#[test]
fn promotion_after_leader_kill_accepts_writes_and_loses_nothing() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("promo-leader");
    let fdir = test_dir("promo-follower");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let leader_addr = server.local_addr().to_string();
    let replica = Replica::start(
        "127.0.0.1:0",
        &leader_addr,
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();
    let faddr = replica.local_addr();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "z1"))
        .unwrap()
        .unwrap();

    // Pre-promotion, the follower is read-only with a typed redirect.
    let mut fclient = Client::connect(faddr).unwrap();
    match fclient.request("alpha", &insert("R", "z2")).unwrap() {
        Err(DispatchError::Session(SessionError::NotLeader { leader_addr: at })) => {
            assert_eq!(at, leader_addr);
        }
        other => panic!("want NotLeader before promotion, got {other:?}"),
    }

    wait_converged(&ldir, &fdir);
    drop(client);
    server.shutdown(); // leader killed
    let leader_wals = wal_files(&ldir);

    // Promote: same address, now a leader.
    drop(fclient);
    let promoted = replica.promote().unwrap();
    assert_eq!(promoted.local_addr(), faddr);
    let mut pclient = Client::connect(faddr).unwrap();
    pclient
        .request("alpha", &insert("R", "z2"))
        .unwrap()
        .unwrap();
    pclient
        .request("alpha", &update_r(&["a1", "z1", "z2"]))
        .unwrap()
        .unwrap();

    drop(pclient);
    let fsvc = promoted.shutdown();
    // The update went through pool tuples from before AND after the
    // failover: nothing the old leader acked was lost.
    assert_eq!(
        fsvc.session("alpha").unwrap().state(),
        &Instance::null_model(&sig()).with("R", rel(1, [["a1"], ["z1"], ["z2"]]))
    );
    // And the old leader's log is a byte prefix of the promoted log.
    let promoted_wals = wal_files(&fdir);
    for (name, bytes) in &leader_wals {
        assert!(
            promoted_wals[name].starts_with(bytes),
            "{name}: promoted log must extend the old leader's log"
        );
    }
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Checkpoint interactions
// ---------------------------------------------------------------------

#[test]
fn follower_behind_the_checkpoint_horizon_resyncs_via_reset() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("hzn-leader");
    let fdir = test_dir("hzn-follower");

    let ckpt = CheckpointPolicy {
        max_records: 4,
        max_log_bytes: 0,
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, ckpt),
        leader_options(1),
    )
    .unwrap();
    let leader_addr = server.local_addr().to_string();

    let replica = Replica::start(
        "127.0.0.1:0",
        &leader_addr,
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "p0"))
        .unwrap()
        .unwrap();
    wait_converged(&ldir, &fdir);

    // Take the follower down, then advance the leader far enough that
    // auto-checkpoints compact away everything the follower has.
    drop(replica.shutdown());
    client
        .request("alpha", &insert("R", "q0"))
        .unwrap()
        .unwrap();
    for i in 0..10u32 {
        let req = if i % 2 == 0 {
            update_r(&["q0"])
        } else {
            update_r(&["a1", "p0"])
        };
        client.request("alpha", &req).unwrap().unwrap();
    }

    // Reopen the follower from its own directory: its generation is now
    // behind the horizon, so the leader must answer with a Reset.
    let (svc, reports) = Service::open_dir(&fdir, SyncPolicy::Always, |_| {
        (
            SubschemaComponents::singletons(sig()),
            Schema::unconstrained(sig()),
        )
    })
    .unwrap();
    assert!(reports.values().all(|r| r.is_ok()), "{reports:?}");
    let replica = Replica::start(
        "127.0.0.1:0",
        &leader_addr,
        svc,
        replica_options(fault_seed() ^ 1),
    )
    .unwrap();
    wait_converged(&ldir, &fdir);

    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let snap = fclient.metrics().unwrap();
    assert!(
        counter(&snap, "repl.resets") >= 1,
        "the re-sync must have gone through a snapshot reset: {:?}",
        snap.counters
    );
    let l = client.request("alpha", &read_r()).unwrap();
    let f = fclient.request("alpha", &read_r()).unwrap();
    assert_eq!(wal::encode_result(&l), wal::encode_result(&f));

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn live_tail_survives_leader_auto_checkpoints() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("live-ckpt-leader");
    let fdir = test_dir("live-ckpt-follower");

    let ckpt = CheckpointPolicy {
        max_records: 3,
        max_log_bytes: 0,
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, ckpt),
        leader_options(1),
    )
    .unwrap();
    let replica = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();

    // Every third record triggers a checkpoint on the leader, shipping
    // live Reset frames through the attached follower's stream.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "c0"))
        .unwrap()
        .unwrap();
    for i in 0..12u32 {
        let req = if i % 2 == 0 {
            update_r(&["a1", "c0"])
        } else {
            update_r(&["a2"])
        };
        client.request("alpha", &req).unwrap().unwrap();
    }
    wait_converged(&ldir, &fdir);
    assert!(replica.fault().is_none(), "{:?}", replica.fault());

    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let snap = fclient.metrics().unwrap();
    assert!(
        counter(&snap, "repl.resets") >= 1,
        "live checkpoints must arrive as resets: {:?}",
        snap.counters
    );
    let l = client.request("alpha", &read_r()).unwrap();
    let f = fclient.request("alpha", &read_r()).unwrap();
    assert_eq!(wal::encode_result(&l), wal::encode_result(&f));

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Follower subscriptions
// ---------------------------------------------------------------------

#[test]
fn follower_subscribers_see_deltas_from_replicated_records() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("sub-leader");
    let fdir = test_dir("sub-follower");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let replica = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "s1"))
        .unwrap()
        .unwrap();
    wait_converged(&ldir, &fdir);

    // Subscribe on the *follower*; mutate on the *leader*.
    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let (sub, image) = fclient.subscribe("alpha", "r").unwrap().unwrap();
    assert_eq!(
        image,
        Instance::null_model(&sig()).with("R", rel(1, [["a1"]]))
    );
    client
        .request("alpha", &update_r(&["s1"]))
        .unwrap()
        .unwrap();

    let (session, event) = fclient.next_event().unwrap();
    assert_eq!(session, "alpha");
    assert_eq!(event.sub, sub, "delta must land on the follower's sub");

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Satellite: idle-connection hygiene
// ---------------------------------------------------------------------

#[test]
fn idle_connections_are_reaped_and_counted() {
    let _guard = ENV_LOCK.lock().unwrap();
    let opts = ServeOptions {
        read_timeout: Some(Duration::from_millis(80)),
        ..ServeOptions::default()
    };
    let server = Server::bind_with("127.0.0.1:0", demo_service(), opts).unwrap();
    let addr = server.local_addr();

    // A peer that completes the handshake, then stalls forever.
    let mut stalled = TcpStream::connect(addr).unwrap();
    let mut hs = [0u8; 6];
    stalled.read_exact(&mut hs).unwrap();
    stalled.write_all(b"CVRPC1").unwrap();

    // A healthy client keeps talking through the idle window unharmed.
    let mut healthy = Client::connect(addr).unwrap();
    for _ in 0..8 {
        healthy
            .request("alpha", &SessionRequest::Stats)
            .unwrap()
            .unwrap();
        thread::sleep(Duration::from_millis(25));
    }

    let snap = healthy.metrics().unwrap();
    assert!(
        counter(&snap, "serve.idle_disconnects") >= 1,
        "the stalled peer must be reaped and counted: {:?}",
        snap.counters
    );
    // The server hung up on the stalled socket.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let n = stalled.read(&mut hs).unwrap_or(0);
    assert_eq!(n, 0, "stalled connection must be closed by the server");

    drop(healthy);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Satellite: typed, sticky connection loss
// ---------------------------------------------------------------------

#[test]
fn lost_connection_yields_one_sticky_typed_error() {
    let _guard = ENV_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    let (sub, _image) = client.subscribe("alpha", "r").unwrap().unwrap();

    // Park one delta event in the inbox: pipeline an update and a
    // metrics probe, then collect the probe — the event frame sits
    // between the two responses and gets read past.
    client.send("alpha", &update_r(&["a2"])).unwrap();
    client.send_metrics().unwrap();
    client.recv().unwrap().unwrap();
    let _ = client.recv_metrics().unwrap();

    server.shutdown();

    // Every receive after the loss is the same typed error — never a
    // panic, never a shifting raw io::Error.
    let errs: Vec<String> = (0..3)
        .map(|_| match client.recv() {
            Err(ProtoError::ConnectionLost { detail }) => detail,
            other => panic!("want ConnectionLost, got {other:?}"),
        })
        .collect();
    assert_eq!(errs[0], errs[1]);
    assert_eq!(errs[1], errs[2]);

    // Arrivals parked before the loss stay readable…
    let (session, event) = client.next_event().unwrap();
    assert_eq!(session, "alpha");
    assert_eq!(event.sub, sub);
    // …and once drained, the sticky error is back.
    match client.next_event() {
        Err(ProtoError::ConnectionLost { .. }) => {}
        other => panic!("want ConnectionLost after the inbox drains, got {other:?}"),
    }
    match client.send("alpha", &SessionRequest::Stats) {
        Err(ProtoError::ConnectionLost { .. }) => {}
        other => panic!("sends must be refused the same way, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Apply path: byte-identical at every prefix, corruption refused
// ---------------------------------------------------------------------

#[test]
fn replicated_apply_is_byte_identical_at_every_prefix_and_refuses_corruption() {
    let open_mem = || {
        let (store, bytes) = MemStore::new();
        let sig = sig();
        let session = Session::open_durable(
            SubschemaComponents::singletons(sig.clone()),
            Schema::unconstrained(sig.clone()),
            &pools(),
            base(),
            SessionConfig::default(),
            Box::new(store),
            SyncPolicy::Always,
        )
        .unwrap();
        (session, bytes)
    };

    let (mut leader, leader_bytes) = open_mem();
    leader.serve(register_r()).unwrap();
    for i in 0..5u32 {
        leader.serve(insert("R", &format!("m{i}"))).unwrap();
    }
    leader.serve(update_r(&["a2"])).unwrap();

    // A brand-new follower (generation 0) must be offered a Reset.
    let plan = leader.replication_catchup(0, 0).unwrap();
    let CatchupPlan::Reset {
        gen,
        record0,
        frames,
    } = plan
    else {
        panic!("fresh follower must get a Reset catch-up plan");
    };
    assert_ne!(gen, 0);
    assert!(!frames.is_empty());
    let want = leader_bytes.lock().unwrap().clone();
    assert_eq!(
        wal::MAGIC.len() + record0.len() + frames.iter().map(Vec::len).sum::<usize>(),
        want.len(),
        "catch-up must cover the whole leader log after the file magic"
    );

    let (mut follower, follower_bytes) = open_mem();
    follower.apply_reset(&record0).unwrap();
    let mut upto = wal::MAGIC.len() + record0.len();
    assert_eq!(&follower_bytes.lock().unwrap()[..], &want[..upto]);

    for (k, frame) in frames.iter().enumerate() {
        // A flipped payload byte is refused with a typed error, and
        // writes nothing.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        let before = follower_bytes.lock().unwrap().clone();
        match follower.apply_replicated(&bad) {
            Err(ApplyError::BadRecord { .. } | ApplyError::BadPayload { .. }) => {}
            other => panic!("corrupt record must be refused, got {other:?}"),
        }
        assert_eq!(
            *follower_bytes.lock().unwrap(),
            before,
            "a refused record must write nothing"
        );
        // Skipping ahead is a typed gap, also refused.
        if k + 1 < frames.len() {
            match follower.apply_replicated(&frames[k + 1]) {
                Err(ApplyError::Gap { .. }) => {}
                other => panic!("skipped record must be a Gap, got {other:?}"),
            }
        }
        let seq = follower.apply_replicated(frame).unwrap();
        assert_eq!(seq, k as u64 + 1);
        upto += frame.len();
        assert_eq!(follower_bytes.lock().unwrap().len(), upto);
        assert_eq!(&follower_bytes.lock().unwrap()[..], &want[..upto]);
    }

    assert_eq!(*follower_bytes.lock().unwrap(), want);
    assert_eq!(follower.state(), leader.state());
    assert_eq!(follower.wal_gen(), leader.wal_gen());
    assert_eq!(follower.wal_last_seq(), leader.wal_last_seq());
}

// ---------------------------------------------------------------------
// Headline: fan-out + chaining, byte-identical under faults and a
// mid-chain node kill
// ---------------------------------------------------------------------

/// Poll until every follower directory's WAL files are byte-identical
/// to the leader's.
fn wait_converged_all(ldir: &Path, fdirs: &[&Path]) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let want = wal_files(ldir);
        if fdirs.iter().all(|d| wal_files(d) == want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "topology never converged: leader {:?} vs followers {:?}",
            want.iter()
                .map(|(n, b)| (n.clone(), b.len()))
                .collect::<Vec<_>>(),
            fdirs
                .iter()
                .map(|d| wal_files(d)
                    .iter()
                    .map(|(n, b)| (n.clone(), b.len()))
                    .collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn fanout_and_chain_converge_byte_identical_under_faults() {
    let _guard = ENV_LOCK.lock().unwrap();
    for (threads, shards) in [(1usize, 1usize), (2, 2), (8, 2)] {
        with_threads(threads, || run_topology_scenario(threads, shards));
    }
}

/// One leader fans out to four direct followers (one behind a faulty
/// feed); the faulty one is additionally the head of a three-deep chain
/// whose middle node gets killed and revived.  Everything — WAL files,
/// Read bytes, final states — must converge byte-identical everywhere.
fn run_topology_scenario(threads: usize, shards: usize) {
    let seed = fault_seed() ^ 0x70 ^ (((threads as u64) << 32) | shards as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let tag = format!("topo-{threads}-{shards}");
    let ldir = test_dir(&format!("{tag}-leader"));
    let fdirs: Vec<PathBuf> = (1..=4).map(|i| test_dir(&format!("{tag}-f{i}"))).collect();
    let c2dir = test_dir(&format!("{tag}-c2"));
    let c3dir = test_dir(&format!("{tag}-c3"));

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(shards),
    )
    .unwrap();
    let laddr = server.local_addr().to_string();

    // Fan-out: f1 reaches the leader only through a fault-injecting
    // proxy; f2..f4 connect clean.
    let proxy = Proxy::start(laddr.clone());
    let f1 = Replica::start(
        "127.0.0.1:0",
        &proxy.addr.to_string(),
        durable_service(&fdirs[0], CheckpointPolicy::default()),
        follower_options(seed ^ 1),
    )
    .unwrap();
    let direct: Vec<Replica<SubschemaComponents>> = (1..4)
        .map(|i| {
            Replica::start(
                "127.0.0.1:0",
                &laddr,
                durable_service(&fdirs[i], CheckpointPolicy::default()),
                replica_options(seed ^ (i as u64 + 1)),
            )
            .unwrap()
        })
        .collect();

    // Chain: c2 tails f1 (through a second proxy so f1 can be revived
    // on a fresh port), c3 tails c2.  Both start *empty* and mirror
    // everything they discover.
    let proxy2 = Proxy::start(f1.local_addr().to_string());
    let c2 = Replica::start_with_mirror(
        "127.0.0.1:0",
        &proxy2.addr.to_string(),
        Service::new(),
        follower_options(seed ^ 10),
        mirror_for(&c2dir),
    )
    .unwrap();
    let c3 = Replica::start_with_mirror(
        "127.0.0.1:0",
        &c2.local_addr().to_string(),
        Service::new(),
        follower_options(seed ^ 11),
        mirror_for(&c3dir),
    )
    .unwrap();

    // The chain forwards the *root* leader's address, not the next hop:
    // both chained nodes point writers at f1's upstream (the proxy).
    assert_eq!(c2.root_addr(), proxy.addr.to_string());
    assert_eq!(c3.root_addr(), proxy.addr.to_string());

    let mut client = Client::connect(server.local_addr()).unwrap();
    for name in SESSIONS {
        client.request(name, &register_r()).unwrap().unwrap();
    }

    // Faults on f1's feed while every node tails.
    proxy.push_plans((0..4).map(|i| {
        if i % 2 == 0 {
            Plan::CutAfter(rng.random_range(40..3000))
        } else {
            Plan::FlipAt(rng.random_range(16..1500))
        }
    }));
    proxy.sever_live();
    for round in 0..4u32 {
        for name in SESSIONS {
            let req = if round < 2 {
                insert("R", &format!("t{round}"))
            } else if round % 2 == 0 {
                update_r(&["a1", "t0"])
            } else {
                update_r(&["a2", "t1"])
            };
            client.request(name, &req).unwrap().unwrap();
        }
        thread::sleep(Duration::from_millis(10));
    }

    // Mid-chain node kill: take f1 down while the leader keeps writing
    // and c2/c3 keep serving reads from their last applied state.
    let f1svc = f1.shutdown();
    for name in SESSIONS {
        client
            .request(name, &update_r(&["a1", "t1"]))
            .unwrap()
            .unwrap();
    }
    let mut c3client = Client::connect(c3.local_addr()).unwrap();
    assert!(
        c3client.request("alpha", &read_r()).unwrap().is_ok(),
        "chain tail must keep serving reads while its feed is down"
    );
    match c3client.request("alpha", &insert("R", "no")).unwrap() {
        Err(DispatchError::Session(SessionError::NotLeader { leader_addr })) => {
            assert_eq!(
                leader_addr,
                proxy.addr.to_string(),
                "chained NotLeader must name the root, not the next hop"
            );
        }
        other => panic!("chained follower must refuse writes, got {other:?}"),
    }

    // Revive f1 on a fresh port from its own (read-only) sessions and
    // repoint the chain proxy at it.
    let f1 = Replica::start(
        "127.0.0.1:0",
        &proxy.addr.to_string(),
        f1svc,
        follower_options(seed ^ 12),
    )
    .unwrap();
    proxy2.set_upstream(f1.local_addr().to_string());
    proxy2.sever_live();

    for name in SESSIONS {
        client
            .request(name, &update_r(&["t0", "t1"]))
            .unwrap()
            .unwrap();
    }

    let all_dirs: Vec<&Path> = fdirs
        .iter()
        .map(PathBuf::as_path)
        .chain([c2dir.as_path(), c3dir.as_path()])
        .collect();
    wait_converged_all(&ldir, &all_dirs);

    // Read bytes identical on every node of the tree.
    let want = wal::encode_result(&client.request("alpha", &read_r()).unwrap());
    for addr in [f1.local_addr(), c2.local_addr(), c3.local_addr()]
        .into_iter()
        .chain(direct.iter().map(Replica::local_addr))
    {
        let mut c = Client::connect(addr).unwrap();
        let got = c.request("alpha", &read_r()).unwrap();
        assert_eq!(
            wal::encode_result(&got),
            want,
            "node at {addr} read diverged"
        );
    }

    // The leader's egress went to its direct followers only; the chain
    // hops shipped their own bytes (f1 re-ships to c2, c2 to c3).
    let mut f1c = Client::connect(f1.local_addr()).unwrap();
    let f1snap = f1c.metrics().unwrap();
    assert!(
        counter(&f1snap, "serve.repl.bytes_out") > 0,
        "a chained upstream must re-ship the bytes it mirrors: {:?}",
        f1snap.counters
    );
    assert!(
        counter(&f1snap, "repl.sessions_mirrored") == 0,
        "f1 holds its sessions durably; nothing to mirror"
    );
    let lsnap = client.metrics().unwrap();
    assert!(counter(&lsnap, "serve.repl.bytes_out") > 0);

    assert!(c2.fault().is_none(), "{:?}", c2.fault());
    assert!(c3.fault().is_none(), "{:?}", c3.fault());

    drop(client);
    drop(c3client);
    drop(f1c);
    let lsvc = server.shutdown();
    let f1svc = f1.shutdown();
    let c2svc = c2.shutdown();
    let c3svc = c3.shutdown();
    for name in SESSIONS {
        let want = lsvc.session(name).unwrap().state();
        assert_eq!(f1svc.session(name).unwrap().state(), want);
        assert_eq!(c2svc.session(name).unwrap().state(), want);
        assert_eq!(c3svc.session(name).unwrap().state(), want);
    }
    for r in direct {
        let svc = r.shutdown();
        for name in SESSIONS {
            assert_eq!(
                svc.session(name).unwrap().state(),
                lsvc.session(name).unwrap().state()
            );
        }
    }
    drop(proxy);
    drop(proxy2);
    let _ = std::fs::remove_dir_all(&ldir);
    for d in fdirs.iter().chain([&c2dir, &c3dir]) {
        let _ = std::fs::remove_dir_all(d);
    }
}

// ---------------------------------------------------------------------
// Satellite: sessions created mid-tail are discovered everywhere
// ---------------------------------------------------------------------

#[test]
fn sessions_created_mid_tail_are_discovered_and_mirrored_down_the_chain() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("disc-leader");
    let f1dir = test_dir("disc-f1");
    let c2dir = test_dir("disc-c2");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(2),
    )
    .unwrap();
    let laddr = server.local_addr().to_string();
    let f1 = Replica::start_with_mirror(
        "127.0.0.1:0",
        &laddr,
        durable_service(&f1dir, CheckpointPolicy::default()),
        follower_options(fault_seed()),
        mirror_for(&f1dir),
    )
    .unwrap();
    let c2 = Replica::start_with_mirror(
        "127.0.0.1:0",
        &f1.local_addr().to_string(),
        Service::new(),
        follower_options(fault_seed() ^ 1),
        mirror_for(&c2dir),
    )
    .unwrap();

    // The leader gains a session *after* every follower started — the
    // exact case the start-time snapshot used to miss forever.
    let sig_ = sig();
    let delta = Session::open_durable(
        SubschemaComponents::singletons(sig_.clone()),
        Schema::unconstrained(sig_),
        &pools(),
        base(),
        SessionConfig::default(),
        Box::new(FsStore::open(ldir.join("delta.wal")).unwrap()),
        SyncPolicy::Always,
    )
    .unwrap();
    server.adopt_session("delta", delta).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("delta", &register_r()).unwrap().unwrap();
    client
        .request("delta", &insert("R", "d0"))
        .unwrap()
        .unwrap();
    client
        .request("delta", &update_r(&["a1", "d0"]))
        .unwrap()
        .unwrap();

    // Both hops discover, mirror, and converge byte-identically.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let l = std::fs::read(ldir.join("delta.wal")).unwrap_or_default();
        let f = std::fs::read(f1dir.join("delta.wal")).unwrap_or_default();
        let c = std::fs::read(c2dir.join("delta.wal")).unwrap_or_default();
        if !l.is_empty() && l == f && l == c {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "mid-tail session never mirrored: leader {} vs f1 {} vs c2 {}",
            l.len(),
            f.len(),
            c.len()
        );
        thread::sleep(Duration::from_millis(10));
    }

    // Pre-existing sessions converged too, and reads on the discovered
    // session are byte-identical at every hop.
    wait_converged(&ldir, &f1dir);
    let want = wal::encode_result(&client.request("delta", &read_r()).unwrap());
    for addr in [f1.local_addr(), c2.local_addr()] {
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(
            wal::encode_result(&c.request("delta", &read_r()).unwrap()),
            want
        );
    }

    let mut f1c = Client::connect(f1.local_addr()).unwrap();
    let snap = f1c.metrics().unwrap();
    assert!(
        counter(&snap, "repl.sessions_mirrored") >= 1,
        "discovery must be counted: {:?}",
        snap.counters
    );
    // The listing verb itself reports the topology: a follower names the
    // root leader, the leader names nobody.
    let reply = f1c.sessions().unwrap();
    assert_eq!(reply.leader.as_deref(), Some(laddr.as_str()));
    assert!(reply.sessions.iter().any(|s| s == "delta"));
    let lreply = client.sessions().unwrap();
    assert_eq!(lreply.leader, None);

    drop(client);
    drop(f1c);
    c2.shutdown();
    f1.shutdown();
    server.shutdown();
    for d in [&ldir, &f1dir, &c2dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

// ---------------------------------------------------------------------
// Satellite: follower Stats — content identical, runtime divergent
// ---------------------------------------------------------------------

#[test]
fn follower_stats_content_matches_leader_byte_for_byte() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("stats-leader");
    let fdir = test_dir("stats-follower");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let replica = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "s0"))
        .unwrap()
        .unwrap();
    client
        .request("alpha", &update_r(&["a1", "s0"]))
        .unwrap()
        .unwrap();
    wait_converged(&ldir, &fdir);

    // Follower-local runtime activity that must NOT show up in the
    // content-derived fields: reads warm the mask cache, a subscription
    // raises active_subs.
    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    for _ in 0..3 {
        fclient.request("alpha", &read_r()).unwrap().unwrap();
    }
    let _sub = fclient.subscribe("alpha", "r").unwrap().unwrap();

    let lstats = match client.request("alpha", &SessionRequest::Stats).unwrap() {
        Ok(compview_session::SessionResponse::Stats(s)) => s,
        other => panic!("want Stats, got {other:?}"),
    };
    let fstats = match fclient.request("alpha", &SessionRequest::Stats).unwrap() {
        Ok(compview_session::SessionResponse::Stats(s)) => s,
        other => panic!("want Stats, got {other:?}"),
    };

    // Content-derived fields are byte-for-byte equal at the same applied
    // sequence: states, views, undoable, session identity, WAL position
    // and size.
    assert_eq!(lstats.content(), fstats.content());
    assert_ne!(fstats.wal_gen, 0, "durable sessions carry a generation");
    assert_eq!(fstats.wal_gen, lstats.wal_gen);
    assert_eq!(fstats.wal_seq, lstats.wal_seq);
    assert_eq!(fstats.log_bytes, lstats.log_bytes);
    assert_eq!(fstats.session_id, lstats.session_id);

    // Runtime fields legitimately diverge: the follower's subscription
    // is local, and its read-path cache warmed independently.
    assert_eq!(fstats.active_subs, 1);
    assert_eq!(lstats.active_subs, 0);

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Satellite: promotion under load — downstream stream + live subscriber
// ---------------------------------------------------------------------

#[test]
fn promote_with_downstream_stream_and_live_subscriber_never_tears() {
    let _guard = ENV_LOCK.lock().unwrap();
    for threads in [1usize, 2, 8] {
        with_threads(threads, || run_promote_under_load(threads));
    }
}

fn run_promote_under_load(threads: usize) {
    let seed = fault_seed() ^ 0x9000 ^ threads as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let ldir = test_dir(&format!("pul-leader-{threads}"));
    let f1dir = test_dir(&format!("pul-f1-{threads}"));
    let f2dir = test_dir(&format!("pul-f2-{threads}"));

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let proxy = Proxy::start(server.local_addr().to_string());
    let f1 = Replica::start(
        "127.0.0.1:0",
        &proxy.addr.to_string(),
        durable_service(&f1dir, CheckpointPolicy::default()),
        follower_options(seed ^ 1),
    )
    .unwrap();
    let f1addr = f1.local_addr();
    // The downstream reaches f1 through its own proxy, so its link can
    // be severed to force a root re-learn after the promotion.
    let proxy2 = Proxy::start(f1addr.to_string());
    let f2 = Replica::start(
        "127.0.0.1:0",
        &proxy2.addr.to_string(),
        durable_service(&f2dir, CheckpointPolicy::default()),
        replica_options(seed ^ 2),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "p0"))
        .unwrap()
        .unwrap();

    // A live subscriber on the node about to be promoted.
    let mut subclient = Client::connect(f1addr).unwrap();
    let (sub, _image) = subclient.subscribe("alpha", "r").unwrap().unwrap();

    // Writes under a faulty feed, right up to the kill.
    proxy.push_plans((0..2).map(|_| Plan::CutAfter(rng.random_range(60..2000))));
    proxy.sever_live();
    for round in 0..4u32 {
        let req = if round % 2 == 0 {
            update_r(&["a1", "p0"])
        } else {
            update_r(&["a2"])
        };
        client.request("alpha", &req).unwrap().unwrap();
        thread::sleep(Duration::from_millis(10));
    }
    wait_converged(&ldir, &f1dir);
    drop(client);
    server.shutdown(); // leader killed

    // Promote f1 while f2's replication stream and the subscriber are
    // both live on its server.
    let promoted = f1.promote().unwrap();
    assert_eq!(promoted.local_addr(), f1addr);

    // The promoted node accepts writes; the subscriber sees the
    // post-promotion delta on the same connection — never torn down.
    let mut pclient = Client::connect(f1addr).unwrap();
    pclient
        .request("alpha", &insert("R", "p9"))
        .unwrap()
        .unwrap();
    pclient
        .request("alpha", &update_r(&["p0", "p9"]))
        .unwrap()
        .unwrap();
    let (session, event) = subclient.next_event().unwrap();
    assert_eq!(session, "alpha");
    assert_eq!(event.sub, sub);

    // Sever f2's link: on redial it learns the root moved (f1 forwards
    // no hint now — it IS the root) and repoints its NotLeader target.
    proxy2.sever_live();
    wait_converged(&f1dir, &f2dir);
    let mut f2client = Client::connect(f2.local_addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match f2client.request("alpha", &insert("R", "no")).unwrap() {
            Err(DispatchError::Session(SessionError::NotLeader { leader_addr }))
                if leader_addr == proxy2.addr.to_string() =>
            {
                break;
            }
            Err(DispatchError::Session(SessionError::NotLeader { .. })) => {
                assert!(
                    Instant::now() < deadline,
                    "downstream never repointed its NotLeader at the new root"
                );
                thread::sleep(Duration::from_millis(10));
            }
            other => panic!("downstream must refuse writes, got {other:?}"),
        }
    }
    assert!(f2.fault().is_none(), "{:?}", f2.fault());

    // Byte-identical reads, promoted vs downstream.
    let want = wal::encode_result(&pclient.request("alpha", &read_r()).unwrap());
    assert_eq!(
        wal::encode_result(&f2client.request("alpha", &read_r()).unwrap()),
        want
    );

    drop(pclient);
    drop(subclient);
    drop(f2client);
    f2.shutdown();
    promoted.shutdown();
    drop(proxy);
    drop(proxy2);
    for d in [&ldir, &f1dir, &f2dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

// ---------------------------------------------------------------------
// Read-your-writes: ReadAt satisfied or typed Lagging
// ---------------------------------------------------------------------

#[test]
fn read_at_waits_for_the_token_and_refuses_when_lagging() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("ryw-leader");
    let fdir = test_dir("ryw-follower");

    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(2),
    )
    .unwrap();
    let replica = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        replica_options(fault_seed()),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    client
        .request("alpha", &insert("R", "w0"))
        .unwrap()
        .unwrap();
    client
        .request("alpha", &update_r(&["a1", "w0"]))
        .unwrap()
        .unwrap();

    // The write token: the leader's WAL position after the update.
    let stats = match client.request("alpha", &SessionRequest::Stats).unwrap() {
        Ok(compview_session::SessionResponse::Stats(s)) => s,
        other => panic!("want Stats, got {other:?}"),
    };
    assert_ne!(stats.wal_gen, 0);

    // Read-your-writes on the follower: waits for replication to reach
    // the token, then answers with bytes identical to the leader's.
    let mut fclient = Client::connect(replica.local_addr()).unwrap();
    let got = fclient
        .read_at(
            "alpha",
            "r",
            stats.wal_gen,
            stats.wal_seq,
            Duration::from_secs(10),
        )
        .unwrap();
    assert!(got.is_ok(), "token within reach must be served: {got:?}");
    let want = client.request("alpha", &read_r()).unwrap();
    assert_eq!(wal::encode_result(&got), wal::encode_result(&want));

    // A token the follower cannot reach: typed Lagging after the
    // bounded wait, reporting both the want and the actual position.
    match fclient
        .read_at(
            "alpha",
            "r",
            stats.wal_gen,
            stats.wal_seq + 1000,
            Duration::from_millis(80),
        )
        .unwrap()
    {
        Err(DispatchError::Lagging {
            want_gen,
            want_seq,
            gen,
            seq,
        }) => {
            assert_eq!(want_gen, stats.wal_gen);
            assert_eq!(want_seq, stats.wal_seq + 1000);
            assert_eq!(gen, stats.wal_gen);
            assert_eq!(seq, stats.wal_seq);
        }
        other => panic!("unreachable token must refuse with Lagging, got {other:?}"),
    }

    // A token from another generation: also Lagging (gen mismatch keeps
    // the wait unsatisfied regardless of seq).
    match fclient
        .read_at(
            "alpha",
            "r",
            stats.wal_gen ^ 1,
            0,
            Duration::from_millis(40),
        )
        .unwrap()
    {
        Err(DispatchError::Lagging { gen, .. }) => assert_eq!(gen, stats.wal_gen),
        other => panic!("wrong-generation token must refuse with Lagging, got {other:?}"),
    }

    // Unknown session: typed immediately, not a hang.
    match fclient
        .read_at("nope", "r", 1, 1, Duration::from_millis(40))
        .unwrap()
    {
        Err(DispatchError::UnknownSession(n)) => assert_eq!(n, "nope"),
        other => panic!("unknown session must refuse, got {other:?}"),
    }

    // ReadAt against the leader itself is satisfied immediately.
    let got = client
        .read_at(
            "alpha",
            "r",
            stats.wal_gen,
            stats.wal_seq,
            Duration::from_millis(200),
        )
        .unwrap();
    assert!(got.is_ok(), "{got:?}");

    drop(client);
    drop(fclient);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Topology introspection: stale heartbeat on a silently dead link
// ---------------------------------------------------------------------

/// A link that is silently swallowed (frames discarded, no FIN) looks
/// alive to TCP — the follower cannot learn anything from the socket.
/// `Topology` must expose the truth anyway: `heartbeat_age_ms` grows
/// past any healthy bound while `repl.connected` still reads 1 and no
/// reconnect has fired.
#[test]
fn silently_swallowed_upstream_reports_stale_heartbeat_before_reconnect() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("swallow-leader");
    let fdir = test_dir("swallow-follower");

    // Leader heartbeats every 25 ms, so a healthy link's age stays tiny.
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        leader_options(1),
    )
    .unwrap();
    let proxy = Proxy::start(server.local_addr().to_string());
    // Phase A's sync connection runs clean; the tail link is then
    // silently swallowed after ~1 KiB (sessions exchange, acks, and a
    // run of heartbeats fit well inside that).
    proxy.push_plans([Plan::Clean, Plan::SwallowAfter(1024)]);
    // A generous read timeout keeps reconnect backoff from firing while
    // we observe the staleness — the whole point is to see the problem
    // *before* the transport gives up.
    let mut options = replica_options(fault_seed());
    options.read_timeout = Duration::from_secs(30);
    let replica = Replica::start(
        "127.0.0.1:0",
        &proxy.addr.to_string(),
        durable_service(&fdir, CheckpointPolicy::default()),
        options,
    )
    .unwrap();
    let mut fclient = Client::connect(replica.local_addr()).unwrap();

    // While frames still flow, the follower self-reports as a healthy
    // chained node: follower role, the proxy as upstream, fresh beats.
    let deadline = Instant::now() + Duration::from_secs(10);
    let fresh = loop {
        let topo = fclient.topology().unwrap();
        if let Some(age) = topo.heartbeat_age_ms {
            if age <= 250 {
                assert_eq!(topo.role, compview_serve::TopoRole::Follower);
                assert_eq!(
                    topo.upstream.as_deref(),
                    Some(proxy.addr.to_string().as_str())
                );
                break topo;
            }
        }
        assert!(
            Instant::now() < deadline,
            "never saw a fresh heartbeat: {topo:?}"
        );
        thread::sleep(Duration::from_millis(10));
    };
    assert!(!fresh.sessions.is_empty(), "sessions listed: {fresh:?}");
    let baseline = counter(&fclient.metrics().unwrap(), "repl.reconnects");

    // Once the swallow point passes, the age must climb unboundedly —
    // with the link still "connected" and no reconnect attempted.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let topo = fclient.topology().unwrap();
        let snap = fclient.metrics().unwrap();
        if topo.heartbeat_age_ms.is_some_and(|age| age >= 400)
            && gauge(&snap, "repl.connected") == 1
            && counter(&snap, "repl.reconnects") == baseline
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "staleness never surfaced: {topo:?}, connected {}, reconnects {} (baseline {baseline})",
            gauge(&snap, "repl.connected"),
            counter(&snap, "repl.reconnects"),
        );
        thread::sleep(Duration::from_millis(20));
    }

    drop(fclient);
    drop(proxy);
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// Distributed tracing: one write, one tree, three nodes
// ---------------------------------------------------------------------

/// The labels harvested for `node`, in no particular order.
fn labels_of<'a>(spans: &'a [(String, SpanRecord)], node: &str) -> Vec<&'a str> {
    spans
        .iter()
        .filter(|(n, _)| n == node)
        .map(|(_, s)| s.label.as_str())
        .collect()
}

/// One traced update against the root of a three-node chain produces
/// spans on the client, the leader, the follower, and the chained
/// follower — all sharing one `trace_id` and parent-linking into a
/// single tree rooted at the client's send span.
#[test]
fn traced_update_assembles_one_span_tree_across_three_nodes() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ldir = test_dir("trace-leader");
    let f1dir = test_dir("trace-f1");
    let f2dir = test_dir("trace-f2");

    let mut lopts = leader_options(2);
    lopts.trace_sample = 1;
    let server = Server::bind_with(
        "127.0.0.1:0",
        durable_service(&ldir, CheckpointPolicy::default()),
        lopts,
    )
    .unwrap();
    let mut f1opts = follower_options(fault_seed());
    f1opts.serve.trace_sample = 1;
    let f1 = Replica::start(
        "127.0.0.1:0",
        &server.local_addr().to_string(),
        durable_service(&f1dir, CheckpointPolicy::default()),
        f1opts,
    )
    .unwrap();
    let mut f2opts = follower_options(fault_seed() ^ 1);
    f2opts.serve.trace_sample = 1;
    let f2 = Replica::start(
        "127.0.0.1:0",
        &f1.local_addr().to_string(),
        durable_service(&f2dir, CheckpointPolicy::default()),
        f2opts,
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.request("alpha", &register_r()).unwrap().unwrap();
    // A live subscriber on the leader, so the publish hop traces too.
    let mut sub_client = Client::connect(server.local_addr()).unwrap();
    sub_client.subscribe("alpha", "r").unwrap().unwrap();

    // The client owns the root span; its context rides the wire.
    let tracer = DistTracer::new();
    tracer.configure("client", 1);
    let root_ctx = TraceCtx {
        trace_id: tracer.sampled_trace_id(),
        parent_span: 0,
    };
    {
        let span = tracer.span(root_ctx, "client.send");
        let wire = span.ctx().expect("sampled root span");
        client
            .request_traced("alpha", &update_r(&["a1", "a2"]), wire)
            .unwrap()
            .unwrap();
    }
    wait_converged_all(&ldir, &[&f1dir, &f2dir]);

    // Harvest every node's buffer; drains are destructive, so late spans
    // (the chained hop applies asynchronously) accumulate across polls.
    let tid = root_ctx.trace_id;
    let mut spans: Vec<(String, SpanRecord)> = tracer
        .drain()
        .spans
        .into_iter()
        .map(|s| ("client".to_owned(), s))
        .collect();
    let laddr = server.local_addr().to_string();
    let f1addr = f1.local_addr().to_string();
    let f2addr = f2.local_addr().to_string();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        for addr in [&laddr, &f1addr, &f2addr] {
            let snap = Client::connect(addr).unwrap().trace().unwrap();
            assert_eq!(&snap.node, addr, "nodes self-identify by address");
            spans.extend(
                snap.spans
                    .into_iter()
                    .filter(|s| s.trace_id == tid)
                    .map(|s| (addr.clone(), s)),
            );
        }
        let leader = labels_of(&spans, &laddr);
        let hop1 = labels_of(&spans, &f1addr);
        let hop2 = labels_of(&spans, &f2addr);
        if [
            "shard.queue",
            "session.dispatch",
            "wal.append",
            "wal.fsync",
            "repl.ship",
            "sub.publish",
        ]
        .iter()
        .all(|l| leader.contains(l))
            && hop1.contains(&"repl.apply")
            && hop1.contains(&"repl.ship")
            && hop2.contains(&"repl.apply")
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "span harvest incomplete: leader {leader:?}, hop1 {hop1:?}, hop2 {hop2:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // One trace, one tree: exactly one root (the client's send), every
    // other span parent-linked to a harvested span, every parent chain
    // terminating at the root.
    for (_, s) in &spans {
        assert_eq!(s.trace_id, tid);
    }
    let roots: Vec<&(String, SpanRecord)> =
        spans.iter().filter(|(_, s)| s.parent_span == 0).collect();
    assert_eq!(roots.len(), 1, "one root: {roots:?}");
    assert_eq!(roots[0].0, "client");
    assert_eq!(roots[0].1.label, "client.send");
    let parent_of: BTreeMap<u64, u64> = spans
        .iter()
        .map(|(_, s)| (s.span_id, s.parent_span))
        .collect();
    assert_eq!(parent_of.len(), spans.len(), "span ids are unique");
    for (node, s) in &spans {
        let mut at = s.span_id;
        for _ in 0..=spans.len() {
            if at == roots[0].1.span_id {
                break;
            }
            at = *parent_of
                .get(&at)
                .unwrap_or_else(|| panic!("{node}/{} orphaned at {at}", s.label));
        }
        assert_eq!(
            at, roots[0].1.span_id,
            "{node}/{} reaches the root",
            s.label
        );
    }

    drop(client);
    drop(sub_client);
    f2.shutdown();
    f1.shutdown();
    server.shutdown();
    for d in [&ldir, &f1dir, &f2dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}
