//! Delta-subscription integration: the push stream is **deterministic**
//! and **replayable**.  For a pipelined request script, the `Subscribed`
//! image plus the event stream replayed through
//! [`compview_session::sub::apply_event`] reconstructs exactly what a
//! fresh `Read` returns — byte-identical at 1, 2, and 8 worker threads
//! crossed with 1, 2, and 8 dispatcher shards.  Also covered: the
//! slow-consumer drop policy (bounded outbox, gapless prefix, terminal
//! `SlowConsumer` event) and the refusal of event-marker payloads sent
//! as requests.

use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::binio;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::proto::{
    encode_event_payload, expect_handshake, read_frame, send_handshake, write_frame,
};
use compview_serve::{Client, ServeOptions, Server, ServerMessage};
use compview_session::sub::apply_event;
use compview_session::{
    DeltaEvent, DeltaKind, Service, Session, SessionConfig, SessionRequest, SessionResponse,
    TerminateReason,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serialises the env-twiddling tests (COMPVIEW_THREADS is process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SESSIONS: [&str; 2] = ["alpha", "beta"];

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["A"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
        ),
        ("S".to_owned(), vec![Tuple::new([v("b1")])]),
    ]
    .into()
}

fn open() -> Session<SubschemaComponents> {
    let sig = sig();
    Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pools(),
        Instance::null_model(&sig).with("R", rel(1, [["a1"]])),
        SessionConfig::default(),
    )
    .unwrap()
}

fn demo_service() -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for name in SESSIONS {
        svc.add_session(name, open()).unwrap();
    }
    svc
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("COMPVIEW_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("COMPVIEW_THREADS");
    out
}

// --------------------------------------------------------------- script ops

/// One scripted mutation against one session.  Everything is derived
/// deterministically from the proptest seed, including the failures
/// (removing a tuple that sits in the base state, undoing an empty
/// history) — error responses are part of the determinism contract too.
#[derive(Clone, Debug)]
enum Op {
    /// `Update` the subscribed view to the subset of the session's known
    /// `R` tuples selected by this bitmask (always includes the pool
    /// seeds, so some states repeat — a repeat moves nothing and must
    /// emit nothing).
    Update(u16),
    /// Insert a fresh `R` tuple into the pool.
    Insert,
    /// Try to remove the `i`-th known `R` tuple from the pool.
    Remove(u8),
    Undo,
    Read,
}

/// Derive a script of `len` ops for each session from `seed`.
fn script(seed: u64, len: usize) -> Vec<(usize, Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut inserts = [0usize; 2];
    for _ in 0..len {
        let who = rng.random_range(0..SESSIONS.len() as u32) as usize;
        let op = match rng.random_range(0..10u32) {
            0..=3 => Op::Update(rng.random_range(0..1 << 10) as u16),
            4..=5 if inserts[who] < 7 => {
                inserts[who] += 1;
                Op::Insert
            }
            4..=5 => Op::Update(rng.random_range(0..1 << 10) as u16),
            6 => Op::Remove(rng.random_range(0..10u32) as u8),
            7..=8 => Op::Undo,
            _ => Op::Read,
        };
        out.push((who, op));
    }
    out
}

/// The per-session `R` tuples the script knows about, in insertion
/// order: the two pool seeds plus every `Insert` so far.
fn known_tuples(inserted: usize) -> Vec<Tuple> {
    let mut tuples = vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])];
    for i in 0..inserted {
        tuples.push(Tuple::new([v(&format!("x{i}"))]));
    }
    tuples
}

fn update_state(mask: u16, inserted: usize) -> Instance {
    let tuples = known_tuples(inserted);
    let chosen: Vec<Tuple> = tuples
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, t)| t.clone())
        .collect();
    Instance::null_model(&sig()).with("R", compview_relation::Relation::from_tuples(1, chosen))
}

fn op_request(op: &Op, inserted: &mut usize) -> SessionRequest {
    match op {
        Op::Update(mask) => SessionRequest::Update {
            view: "r".into(),
            new_state: update_state(*mask, *inserted),
        },
        Op::Insert => {
            let tuple = Tuple::new([v(&format!("x{inserted}"))]);
            *inserted += 1;
            SessionRequest::InsertPoolTuple {
                relation: "R".into(),
                tuple,
            }
        }
        Op::Remove(i) => {
            let tuples = known_tuples(*inserted);
            let tuple = tuples[*i as usize % tuples.len()].clone();
            SessionRequest::RemovePoolTuple {
                relation: "R".into(),
                tuple,
            }
        }
        Op::Undo => SessionRequest::Undo,
        Op::Read => SessionRequest::Read { view: "r".into() },
    }
}

// ------------------------------------------------------------ stream runner

/// Everything one config's run observed, for cross-config diffing.
#[derive(Debug, PartialEq)]
struct Observed {
    /// Replies to the scripted (pipelined) phase, in request order.
    replies: Vec<compview_serve::WireResult>,
    /// Per session: initial image, event stream, and the final read.
    streams: BTreeMap<String, (Instance, Vec<DeltaEvent>, Instance)>,
}

/// Run the script against a fresh server at one (threads, shards)
/// config and collect the full observable outcome.
fn run_config(threads: usize, shards: usize, ops: &[(usize, Op)]) -> Observed {
    with_threads(threads, || {
        let server = Server::bind_with(
            "127.0.0.1:0",
            demo_service(),
            ServeOptions {
                shards,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Open phase: register the view and subscribe, per session.
        let mut subs: BTreeMap<String, u64> = BTreeMap::new();
        let mut images: BTreeMap<String, Instance> = BTreeMap::new();
        for name in SESSIONS {
            let reply = client
                .request(
                    name,
                    &SessionRequest::RegisterView {
                        name: "r".into(),
                        mask: 0b01,
                    },
                )
                .unwrap();
            assert!(reply.is_ok(), "{reply:?}");
            let (sub, image) = client.subscribe(name, "r").unwrap().unwrap();
            subs.insert(name.to_owned(), sub);
            images.insert(name.to_owned(), image);
        }

        // Mutation phase, fully pipelined: the script, then a final read
        // and the unsubscribe per session.
        let mut inserted = [0usize; 2];
        let mut sent = 0usize;
        for (who, op) in ops {
            let req = op_request(op, &mut inserted[*who]);
            client.send(SESSIONS[*who], &req).unwrap();
            sent += 1;
        }
        for name in SESSIONS {
            client
                .send(name, &SessionRequest::Read { view: "r".into() })
                .unwrap();
            client
                .send(name, &SessionRequest::Unsubscribe { sub: subs[name] })
                .unwrap();
            sent += 2;
        }

        // Collect replies and events in server order.  Replies arrive in
        // request order, so once the reply at index `sent - 3` (alpha's
        // unsubscribe; beta's is the very last) has landed, any further
        // alpha event would violate the stream contract.
        let mut replies: Vec<compview_serve::WireResult> = Vec::with_capacity(sent);
        let mut events: BTreeMap<String, Vec<DeltaEvent>> = BTreeMap::new();
        while replies.len() < sent {
            match client.recv_message().unwrap() {
                ServerMessage::Reply(r) => replies.push(r),
                ServerMessage::Event { session, event } => {
                    assert!(
                        !(session == SESSIONS[0] && replies.len() > sent - 3),
                        "event after {session}'s unsubscribe: {event:?}"
                    );
                    events.entry(session).or_default().push(event);
                }
            }
        }

        // No event may trail its stream's Unsubscribed response.  The
        // final two replies are the unsubscribes, so by now every stream
        // is over: a probe's answer must arrive with no stray event
        // before it.
        client.send(SESSIONS[0], &SessionRequest::Stats).unwrap();
        match client.recv_message().unwrap() {
            ServerMessage::Reply(r) => assert!(r.is_ok(), "{r:?}"),
            ServerMessage::Event { session, event } => {
                panic!("stray event after unsubscribe: {session}/{event:?}")
            }
        }

        // Final reads: the last `Read { view: "r" }` reply per session.
        let mut streams = BTreeMap::new();
        let mut read_backwards = replies.iter().rev();
        for name in SESSIONS.iter().rev() {
            // Replies arrive in request order: …, read(alpha), unsub(alpha),
            // read(beta), unsub(beta).
            let unsub = read_backwards.next().unwrap();
            assert!(
                matches!(unsub, Ok(SessionResponse::Unsubscribed { .. })),
                "{unsub:?}"
            );
            let read = read_backwards.next().unwrap();
            let Ok(SessionResponse::State(final_read)) = read else {
                panic!("expected the final read, got {read:?}");
            };
            streams.insert(
                (*name).to_owned(),
                (
                    images[*name].clone(),
                    events.remove(*name).unwrap_or_default(),
                    final_read.clone(),
                ),
            );
        }

        drop(client);
        server.shutdown();
        Observed { replies, streams }
    })
}

/// Encode an instance through the canonical binary codec — the
/// "byte-identical" half of the replay assertion.
fn instance_bytes(inst: &Instance) -> Vec<u8> {
    let mut out = Vec::new();
    binio::put_instance(&mut out, inst);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline property: replaying the delta stream over the
    /// subscription's initial image reconstructs the final read exactly,
    /// and the entire observable outcome — replies, images, event
    /// streams — is identical at every thread × shard combination.
    #[test]
    fn replayed_stream_reconstructs_the_read_at_every_thread_and_shard_count(
        seed in 0u64..1 << 32,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        let ops = script(seed, 18);
        let mut baseline: Option<Observed> = None;
        for &threads in &[1usize, 2, 8] {
            for &shards in &[1usize, 2, 8] {
                let observed = run_config(threads, shards, &ops);
                for (name, (image0, events, final_read)) in &observed.streams {
                    // Sequences are consecutive from 1, streams all Rows.
                    for (i, ev) in events.iter().enumerate() {
                        prop_assert_eq!(ev.seq, i as u64 + 1, "{} event {}", name, i);
                        prop_assert_eq!(&ev.view, "r");
                        prop_assert!(
                            matches!(ev.kind, DeltaKind::Rows { .. }),
                            "{}: unexpected terminal {:?}", name, ev
                        );
                    }
                    // Replay: image0 + events == the fresh read, byte for
                    // byte through the canonical codec.
                    let mut replayed = image0.clone();
                    for ev in events {
                        replayed = apply_event(&replayed, ev);
                    }
                    prop_assert_eq!(&replayed, final_read, "{} replay diverged", name);
                    prop_assert_eq!(
                        instance_bytes(&replayed),
                        instance_bytes(final_read),
                        "{} replay bytes diverged", name
                    );
                }
                match &baseline {
                    None => baseline = Some(observed),
                    Some(first) => prop_assert_eq!(
                        first, &observed,
                        "threads={} shards={} diverged from threads=1 shards=1",
                        threads, shards
                    ),
                }
            }
        }
    }
}

// -------------------------------------------------------- slow consumers

/// A subscriber that stops reading is dropped at the outbox cap: it
/// receives a gapless prefix of the stream, then a terminal
/// `SlowConsumer` event whose sequence pinpoints the cut, then nothing.
/// The writer side never stalls: a second client keeps the session fully
/// responsive throughout.
#[test]
fn slow_consumer_is_cut_with_a_terminal_event() {
    let _guard = ENV_LOCK.lock().unwrap();
    // Few but very fat tuples: the state space stays tiny (2^8) while a
    // full-image delta weighs ~512 KiB — far past any socket buffering.
    let sig = Signature::new([RelDecl::new("R", ["A"])]);
    let fat = |i: usize| Tuple::new([v(&format!("{i:065000}"))]);
    let pool: BTreeMap<String, Vec<Tuple>> =
        [("R".to_owned(), (0..8).map(fat).collect::<Vec<_>>())].into();
    let full = Instance::null_model(&sig).with(
        "R",
        compview_relation::Relation::from_tuples(1, (0..8).map(fat).collect::<Vec<_>>()),
    );
    let empty = Instance::null_model(&sig);
    let session = Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pool,
        empty.clone(),
        SessionConfig::default(),
    )
    .unwrap();
    let mut svc = Service::new();
    svc.add_session("alpha", session).unwrap();

    let server = Server::bind_with(
        "127.0.0.1:0",
        svc,
        ServeOptions {
            shards: 1,
            event_outbox_cap: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();

    // The slow consumer: subscribes, then stops reading.
    let mut slow = Client::connect(server.local_addr()).unwrap();
    let reply = slow
        .request(
            "alpha",
            &SessionRequest::RegisterView {
                name: "r".into(),
                mask: 0b1,
            },
        )
        .unwrap();
    assert!(reply.is_ok(), "{reply:?}");
    let (sub, image0) = slow.subscribe("alpha", "r").unwrap().unwrap();

    // The firehose: flips the whole 8-tuple image back and forth, ~512
    // KiB of delta per update.
    let mut fast = Client::connect(server.local_addr()).unwrap();
    let updates = 120usize;
    for i in 0..updates {
        let state = if i % 2 == 0 { &full } else { &empty };
        fast.send(
            "alpha",
            &SessionRequest::Update {
                view: "r".into(),
                new_state: state.clone(),
            },
        )
        .unwrap();
    }
    let mut applied = 0usize;
    for _ in 0..updates {
        let reply = fast.recv().unwrap();
        assert!(reply.is_ok(), "{reply:?}");
        applied += 1;
    }
    assert_eq!(applied, updates, "the fast client never stalled");

    // The session no longer carries the subscription (drop happened
    // server-side), and the drop is visible in the metrics.
    let stats = fast.request("alpha", &SessionRequest::Stats).unwrap();
    let Ok(SessionResponse::Stats(snap)) = stats else {
        panic!("{stats:?}");
    };
    assert_eq!(snap.active_subs, 0, "slow subscription still live");
    let metrics = fast.metrics().unwrap();
    let slow_drops = metrics
        .counters
        .iter()
        .find(|(n, _)| n == "serve.sub.slow_drops")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(slow_drops, 1, "expected exactly one slow-consumer drop");

    // Now drain the slow consumer: a gapless prefix of Rows events, then
    // the terminal SlowConsumer at the cut, then end-of-stream.
    let mut replayed = image0;
    let mut next_seq = 1u64;
    let terminal = loop {
        let (session, event) = slow.next_event().unwrap();
        assert_eq!(session, "alpha");
        assert_eq!(event.sub, sub);
        assert_eq!(event.seq, next_seq, "gap in the delivered prefix");
        next_seq += 1;
        match &event.kind {
            DeltaKind::Rows { .. } => replayed = apply_event(&replayed, &event),
            DeltaKind::Terminated { reason } => break reason.clone(),
        }
    };
    assert_eq!(terminal, TerminateReason::SlowConsumer);
    assert!(
        next_seq as usize - 1 <= updates,
        "more events than updates?"
    );
    // The replayed prefix is a real intermediate state: the image after
    // `delivered` updates (full on odd counts, empty on even).
    let delivered = next_seq as usize - 2; // rows events before the terminal
    let expected = if delivered % 2 == 1 { &full } else { &empty };
    assert_eq!(&replayed, expected, "prefix replay diverged");
    // After the terminal, the stream is over: the connection still
    // answers requests, and no further event precedes the answer.
    slow.send("alpha", &SessionRequest::Stats).unwrap();
    match slow.recv_message().unwrap() {
        ServerMessage::Reply(r) => assert!(r.is_ok(), "{r:?}"),
        ServerMessage::Event { event, .. } => panic!("event after terminal: {event:?}"),
    }

    server.shutdown();
}

// ------------------------------------------------------------- robustness

/// An event-marker payload sent *as a request* is a protocol violation:
/// the server refuses it with a typed decode error, drops that
/// connection only, and keeps serving everyone else.
#[test]
fn event_payload_as_request_costs_only_that_connection() {
    let _guard = ENV_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();

    let mut rogue = std::net::TcpStream::connect(server.local_addr()).unwrap();
    send_handshake(&mut rogue).unwrap();
    expect_handshake(&mut rogue).unwrap();
    // A perfectly framed, CRC-valid event payload — in the wrong
    // direction.
    let event = DeltaEvent {
        sub: 1,
        view: "r".into(),
        seq: 1,
        kind: DeltaKind::Terminated {
            reason: TerminateReason::SlowConsumer,
        },
    };
    write_frame(&mut rogue, &encode_event_payload("alpha", &event)).unwrap();
    // The server hangs up on the rogue…
    assert!(matches!(read_frame(&mut rogue), Ok(None) | Err(_)));

    // …while a well-behaved client is unaffected.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client.request("alpha", &SessionRequest::Stats).unwrap();
    assert!(reply.is_ok(), "{reply:?}");
    let metrics = client.metrics().unwrap();
    let malformed = metrics
        .counters
        .iter()
        .find(|(n, _)| n == "serve.malformed_frames")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(malformed, 1);

    server.shutdown();
}

/// Unsubscribing an unknown id answers a typed session error — no
/// stream, no side effects, connection intact.
#[test]
fn unknown_unsubscribe_is_a_typed_error() {
    let _guard = ENV_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client
        .request("alpha", &SessionRequest::Unsubscribe { sub: 42 })
        .unwrap();
    assert!(
        matches!(
            reply,
            Err(compview_session::DispatchError::Session(
                compview_session::SessionError::UnknownSubscription { sub: 42 }
            ))
        ),
        "{reply:?}"
    );
    // The connection is still healthy.
    let reply = client.request("alpha", &SessionRequest::Stats).unwrap();
    assert!(reply.is_ok(), "{reply:?}");
    server.shutdown();
}

/// A subscriber whose connection dies mid-stream is cleaned up: the
/// session's live-subscription count returns to zero once the server
/// notices, and other clients are untouched.
#[test]
fn dead_connection_drops_its_subscriptions() {
    let _guard = ENV_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
    let mut doomed = Client::connect(server.local_addr()).unwrap();
    let reply = doomed
        .request(
            "alpha",
            &SessionRequest::RegisterView {
                name: "r".into(),
                mask: 0b01,
            },
        )
        .unwrap();
    assert!(reply.is_ok(), "{reply:?}");
    doomed.subscribe("alpha", "r").unwrap().unwrap();
    drop(doomed); // hangs up with the subscription live

    // The reader notices the hangup and cancels the subscription on the
    // owning shard; poll until the count drops.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut live = usize::MAX;
    for _ in 0..200 {
        let stats = client.request("alpha", &SessionRequest::Stats).unwrap();
        let Ok(SessionResponse::Stats(snap)) = stats else {
            panic!("{stats:?}");
        };
        live = snap.active_subs;
        if live == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(live, 0, "dead connection's subscription never dropped");
    server.shutdown();
}
