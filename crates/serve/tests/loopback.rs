//! Loopback integration: a batch sent over TCP produces **byte-identical**
//! results to in-process `Service::dispatch`, at 1, 2, and 8 worker
//! threads — the wire adds transport, never semantics.

use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{Client, Server};
use compview_session::wal;
use compview_session::{Service, Session, SessionConfig, SessionRequest};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serialises the env-twiddling tests (COMPVIEW_THREADS is process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["A"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
        ),
        ("S".to_owned(), vec![Tuple::new([v("b1")])]),
    ]
    .into()
}

fn open() -> Session<SubschemaComponents> {
    let sig = sig();
    Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pools(),
        Instance::null_model(&sig).with("R", rel(1, [["a1"]])),
        SessionConfig::default(),
    )
    .unwrap()
}

fn demo_service() -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for name in ["alpha", "beta", "gamma"] {
        svc.add_session(name, open()).unwrap();
    }
    svc
}

/// The service.rs demo batch: every request variant, successes and
/// failures (a ghost session, an undo on empty history) included.
fn demo_batch() -> Vec<(String, SessionRequest)> {
    let mut batch = Vec::new();
    for name in ["alpha", "beta", "gamma"] {
        batch.push((
            name.to_owned(),
            SessionRequest::RegisterView {
                name: "r".into(),
                mask: 0b01,
            },
        ));
    }
    for name in ["alpha", "beta", "gamma", "ghost"] {
        batch.push((
            name.to_owned(),
            SessionRequest::InsertPoolTuple {
                relation: "R".into(),
                tuple: Tuple::new([v("a3")]),
            },
        ));
    }
    for name in ["alpha", "beta", "gamma"] {
        batch.push((
            name.to_owned(),
            SessionRequest::Update {
                view: "r".into(),
                new_state: Instance::null_model(&sig()).with("R", rel(1, [["a2"], ["a3"]])),
            },
        ));
        batch.push((name.to_owned(), SessionRequest::Read { view: "r".into() }));
    }
    batch.push(("beta".to_owned(), SessionRequest::Undo));
    batch.push(("beta".to_owned(), SessionRequest::Undo));
    batch.push(("alpha".to_owned(), SessionRequest::Stats));
    batch
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("COMPVIEW_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("COMPVIEW_THREADS");
    out
}

/// Everything observable about a service after a batch, for diffing the
/// remote run against the in-process run.
fn fingerprint(svc: &Service<SubschemaComponents>) -> Vec<(String, Instance, u64)> {
    svc.session_names()
        .map(|n| {
            let s = svc.session(n).unwrap();
            (n.to_owned(), s.state().clone(), s.stats().requests)
        })
        .collect()
}

#[test]
fn remote_batch_is_byte_identical_to_in_process_dispatch() {
    let _guard = ENV_LOCK.lock().unwrap();
    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            let batch = demo_batch();

            // In-process reference.
            let mut local = demo_service();
            let expected = local.dispatch(batch.clone());

            // The same batch over TCP: one connection, pipelined, so the
            // per-connection FIFO carries the batch order.
            let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
            let mut client = Client::connect(server.local_addr()).unwrap();
            for (session, req) in &batch {
                client.send(session, req).unwrap();
            }
            let got: Vec<_> = (0..batch.len()).map(|_| client.recv().unwrap()).collect();
            let remote = server.shutdown();

            assert_eq!(got.len(), expected.len());
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(
                    wal::encode_result(g),
                    wal::encode_result(e),
                    "{threads} threads, position {i}: {g:?} vs {e:?}"
                );
            }
            // And the services themselves ended up in the same place.
            assert_eq!(
                fingerprint(&remote),
                fingerprint(&local),
                "{threads} threads: final states"
            );
        });
    }
}

#[test]
fn concurrent_connections_each_see_their_own_session_in_order() {
    let _guard = ENV_LOCK.lock().unwrap();
    with_threads(4, || {
        // Reference: each session's request stream served in-process.
        let per_session: Vec<(String, Vec<SessionRequest>)> = ["alpha", "beta", "gamma"]
            .iter()
            .map(|name| {
                (
                    (*name).to_owned(),
                    vec![
                        SessionRequest::RegisterView {
                            name: "r".into(),
                            mask: 0b01,
                        },
                        SessionRequest::InsertPoolTuple {
                            relation: "R".into(),
                            tuple: Tuple::new([v("a3")]),
                        },
                        SessionRequest::Update {
                            view: "r".into(),
                            new_state: Instance::null_model(&sig())
                                .with("R", rel(1, [["a2"], ["a3"]])),
                        },
                        SessionRequest::Read { view: "r".into() },
                        SessionRequest::Undo,
                    ],
                )
            })
            .collect();
        let mut local = demo_service();
        let expected: Vec<Vec<_>> = per_session
            .iter()
            .map(|(name, reqs)| reqs.iter().map(|r| local.serve(name, r.clone())).collect())
            .collect();

        // Three concurrent clients, one per session.  Whatever batches
        // the arrivals land in, each session's order is its connection's
        // order, so every client must see exactly the reference answers.
        let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = per_session
            .iter()
            .cloned()
            .map(|(name, reqs)| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for req in &reqs {
                        client.send(&name, req).unwrap();
                    }
                    (0..reqs.len())
                        .map(|_| client.recv().unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let got: Vec<Vec<_>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let remote = server.shutdown();

        for ((name, _), (g, e)) in per_session.iter().zip(got.iter().zip(&expected)) {
            assert_eq!(g, e, "session {name}");
        }
        assert_eq!(fingerprint(&remote), fingerprint(&local));
    });
}

#[test]
fn metrics_round_trip_with_deterministic_content_ordering() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut orderings: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        with_threads(threads, || {
            let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
            let mut client = Client::connect(server.local_addr()).unwrap();
            let batch = demo_batch();
            for (session, req) in &batch {
                client.send(session, req).unwrap();
            }
            // Pipeline the probe behind the whole batch: FIFO means the
            // snapshot must observe every request above it.
            client.send_metrics().unwrap();
            for _ in 0..batch.len() {
                // The ghost request's Err is expected; only FIFO matters.
                let _ = client.recv().unwrap();
            }
            let snap = client.recv_metrics().unwrap();
            let svc = server.shutdown();

            // The wire snapshot observed the pipelined batch: every
            // request that reached a session is counted (the one "ghost"
            // request fails session lookup before any session sees it).
            let counter = |name: &str| {
                snap.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .unwrap_or_else(|| panic!("counter {name} missing"))
                    .1
            };
            assert_eq!(counter("session.requests"), batch.len() as u64 - 1);
            assert!(counter("serve.frames_in") >= batch.len() as u64);
            assert_eq!(counter("serve.connections"), 1);

            // Round trip: the wire codec reproduces the snapshot exactly.
            assert_eq!(
                compview_obs::MetricsSnapshot::decode(&snap.encode()).as_ref(),
                Ok(&snap)
            );
            // The server-side registry agrees on the instrument set
            // (values keep moving — the response frame itself counts —
            // but the content ordering is pinned).
            assert_eq!(
                svc.registry().snapshot().content_ordering(),
                snap.content_ordering(),
                "{threads} threads: wire vs in-process instrument set"
            );
            orderings.push(snap.content_ordering());
        });
    }
    assert_eq!(
        orderings[0], orderings[1],
        "content ordering differs between 1 and 2 threads"
    );
    assert_eq!(
        orderings[0], orderings[2],
        "content ordering differs between 1 and 8 threads"
    );
}

#[test]
fn malformed_frame_drops_only_that_connection() {
    let _guard = ENV_LOCK.lock().unwrap();
    let server = Server::bind("127.0.0.1:0", demo_service()).unwrap();
    let addr = server.local_addr();

    // A healthy client…
    let mut good = Client::connect(addr).unwrap();
    let first = good.request("alpha", &SessionRequest::Stats).unwrap();
    assert!(first.is_ok());

    // …and a raw socket that handshakes, then sends garbage framing.
    {
        use std::io::{Read, Write};
        let mut bad = std::net::TcpStream::connect(addr).unwrap();
        let mut hs = [0u8; 6];
        bad.read_exact(&mut hs).unwrap();
        bad.write_all(b"CVRPC1").unwrap();
        bad.write_all(&[0xFF; 32]).unwrap(); // nonsense length + checksum
                                             // The server closes this connection; the read eventually sees EOF.
        let mut sink = Vec::new();
        let _ = bad.read_to_end(&mut sink);
    }

    // The healthy connection is unaffected.
    let again = good.request("alpha", &SessionRequest::Stats).unwrap();
    assert!(again.is_ok());
    let svc = server.shutdown();

    // The refusal is on the books.
    let snap = svc.registry().snapshot();
    let malformed = snap
        .counters
        .iter()
        .find(|(n, _)| n == "serve.malformed_frames")
        .expect("counter registered")
        .1;
    assert_eq!(malformed, 1);
}
