//! Sharded-dispatcher integration: at every shard count the server is
//! **observationally identical** to a single dispatcher — responses
//! byte-for-byte, per-session WAL files byte-for-byte, metrics snapshots
//! post-batch consistent — only the parallelism changes.

use compview_core::SubschemaComponents;
use compview_logic::Schema;
use compview_obs::MetricsSnapshot;
use compview_relation::{rel, v, Instance, RelDecl, Signature, Tuple};
use compview_serve::{Client, Server};
use compview_session::wal;
use compview_session::{Service, Session, SessionConfig, SessionRequest, SyncPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn sig() -> Signature {
    Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["A"])])
}

fn pools() -> BTreeMap<String, Vec<Tuple>> {
    [
        (
            "R".to_owned(),
            vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
        ),
        ("S".to_owned(), vec![Tuple::new([v("b1")])]),
    ]
    .into()
}

fn open() -> Session<SubschemaComponents> {
    let sig = sig();
    Session::open(
        SubschemaComponents::singletons(sig.clone()),
        Schema::unconstrained(sig.clone()),
        &pools(),
        Instance::null_model(&sig).with("R", rel(1, [["a1"]])),
        SessionConfig::default(),
    )
    .unwrap()
}

/// A service of `n` in-memory sessions `s0..s{n-1}` — enough names to
/// land on several shards at once.
fn service_of(n: usize) -> Service<SubschemaComponents> {
    let mut svc = Service::new();
    for i in 0..n {
        svc.add_session(format!("s{i}"), open()).unwrap();
    }
    svc
}

/// Everything observable about a service after a run.
fn fingerprint(svc: &Service<SubschemaComponents>) -> Vec<(String, Instance, u64)> {
    svc.session_names()
        .map(|n| {
            let s = svc.session(n).unwrap();
            (n.to_owned(), s.state().clone(), s.stats().requests)
        })
        .collect()
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .1
}

/// One item of a random pipelined stream: a session request, or a
/// metrics probe riding in the same connection FIFO.
#[derive(Clone, Debug)]
enum WireItem {
    Dispatch(String, SessionRequest),
    Probe,
}

/// A pool-subset state of R: `{a1,a2}` restricted by `bits`, the only
/// relation the random views watch.
fn r_state(bits: u32) -> Instance {
    let mut rows: Vec<[&str; 1]> = Vec::new();
    if bits & 1 != 0 {
        rows.push(["a1"]);
    }
    if bits & 2 != 0 {
        rows.push(["a2"]);
    }
    Instance::null_model(&sig()).with("R", rel(1, rows))
}

/// A random request: every variant, successes and failures alike
/// (unknown sessions, unregistered views, unreachable update targets,
/// undo on empty history).
fn rand_req(rng: &mut StdRng) -> SessionRequest {
    let view = if rng.random_range(0..4u32) == 0 {
        "w"
    } else {
        "r"
    };
    match rng.random_range(0..10u32) {
        0 | 1 => SessionRequest::RegisterView {
            name: view.to_owned(),
            mask: rng.random_range(0..4u32),
        },
        2..=4 => SessionRequest::Update {
            view: view.to_owned(),
            new_state: r_state(rng.random_range(0..4u32)),
        },
        5 | 6 => SessionRequest::Read {
            view: view.to_owned(),
        },
        7 => SessionRequest::InsertPoolTuple {
            relation: "R".into(),
            tuple: Tuple::new([v("a3")]),
        },
        8 => SessionRequest::Undo,
        _ => SessionRequest::Stats,
    }
}

fn rand_stream(rng: &mut StdRng, len: usize) -> Vec<WireItem> {
    const SESSIONS: [&str; 6] = ["s0", "s1", "s2", "s3", "s4", "ghost"];
    (0..len)
        .map(|_| {
            if rng.random_range(0..6u32) == 0 {
                WireItem::Probe
            } else {
                let session = SESSIONS[rng.random_range(0..SESSIONS.len() as u32) as usize];
                WireItem::Dispatch(session.to_owned(), rand_req(rng))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any pipelined stream of requests and metrics probes, served at 1,
    /// 2, and 8 shards, answers byte-identically to one in-process
    /// `Service::dispatch` — and every wire snapshot carries the same
    /// deterministic content ordering.
    #[test]
    fn sharded_loopback_is_byte_identical_to_single_dispatch(
        seed in 0u64..1u64 << 48,
        len in 1usize..28,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = rand_stream(&mut rng, len);
        let batch: Vec<(String, SessionRequest)> = stream
            .iter()
            .filter_map(|item| match item {
                WireItem::Dispatch(s, r) => Some((s.clone(), r.clone())),
                WireItem::Probe => None,
            })
            .collect();

        // In-process reference: one dispatcher, one batch.
        let mut local = service_of(5);
        let expected = local.dispatch(batch.clone());

        let mut orderings: Vec<String> = Vec::new();
        for shards in [1usize, 2, 8] {
            let server = Server::bind_sharded("127.0.0.1:0", service_of(5), shards).unwrap();
            let mut client = Client::connect(server.local_addr()).unwrap();
            for item in &stream {
                match item {
                    WireItem::Dispatch(s, r) => client.send(s, r).unwrap(),
                    WireItem::Probe => client.send_metrics().unwrap(),
                }
            }
            let mut at = 0usize;
            for item in &stream {
                match item {
                    WireItem::Dispatch(..) => {
                        let got = client.recv().unwrap();
                        prop_assert_eq!(
                            wal::encode_result(&got),
                            wal::encode_result(&expected[at]),
                            "{} shards, dispatch #{}: {:?} vs {:?}",
                            shards, at, got, &expected[at]
                        );
                        at += 1;
                    }
                    WireItem::Probe => {
                        let snap = client.recv_metrics().unwrap();
                        // The probe is a barrier: everything pipelined
                        // before it on this connection is on the books,
                        // post-batch consistent.
                        prop_assert_eq!(
                            counter(&snap, "session.requests"),
                            counter(&snap, "session.accepted")
                                + counter(&snap, "session.rejected"),
                            "{} shards: probe mid-stream", shards
                        );
                        orderings.push(snap.content_ordering());
                    }
                }
            }
            let merged = server.shutdown();
            prop_assert_eq!(
                fingerprint(&merged),
                fingerprint(&local),
                "{} shards: final states", shards
            );
        }
        // Snapshot content ordering never depends on the shard count.
        for pair in orderings.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }
}

/// A probe pipelined behind K requests observes all K — the cross-shard
/// barrier — at every shard count, even when the requests scatter over
/// all eight sessions (and so over every shard).
#[test]
fn probe_behind_pipelined_requests_observes_all_of_them() {
    for shards in [1usize, 2, 8] {
        let server = Server::bind_sharded("127.0.0.1:0", service_of(8), shards).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let k = 40usize;
        for i in 0..k {
            client
                .send(&format!("s{}", i % 8), &SessionRequest::Stats)
                .unwrap();
        }
        client.send_metrics().unwrap();
        for _ in 0..k {
            client.recv().unwrap().unwrap();
        }
        let snap = client.recv_metrics().unwrap();
        server.shutdown();
        assert_eq!(
            counter(&snap, "session.requests"),
            k as u64,
            "{shards} shards: barrier must observe every pipelined request"
        );
        assert_eq!(
            counter(&snap, "session.requests"),
            counter(&snap, "session.accepted") + counter(&snap, "session.rejected")
        );
    }
}

/// Snapshots taken *while* other connections are mid-batch on other
/// shards still balance: the per-shard snapshot gates pin every probe to
/// batch boundaries, so `requests == accepted + rejected` holds in every
/// snapshot, never catching a request counted but not yet resolved.
#[test]
fn concurrent_snapshots_are_post_batch_consistent() {
    let server = Server::bind_sharded("127.0.0.1:0", service_of(8), 4).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    // A writer hammering updates (mostly accepted, every fifth rejected
    // on an unregistered view) round-robin over all sessions.
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for i in 0..8 {
                client
                    .request(
                        &format!("s{i}"),
                        &SessionRequest::RegisterView {
                            name: "r".into(),
                            mask: 0b01,
                        },
                    )
                    .unwrap()
                    .unwrap();
            }
            let mut sent = 8u64;
            let mut flip = 0u32;
            while !stop.load(Ordering::SeqCst) {
                for i in 0..8 {
                    flip += 1;
                    let req = if flip.is_multiple_of(5) {
                        SessionRequest::Read {
                            view: "nope".into(),
                        }
                    } else {
                        SessionRequest::Update {
                            view: "r".into(),
                            new_state: r_state(1 + (flip % 2)),
                        }
                    };
                    client.send(&format!("s{i}"), &req).unwrap();
                }
                for _ in 0..8 {
                    let _ = client.recv().unwrap();
                }
                sent += 8;
            }
            sent
        })
    };

    let mut prober = Client::connect(addr).unwrap();
    for _ in 0..50 {
        let snap = prober.metrics().unwrap();
        assert_eq!(
            counter(&snap, "session.requests"),
            counter(&snap, "session.accepted") + counter(&snap, "session.rejected"),
            "snapshot caught a shard mid-batch"
        );
    }
    stop.store(true, Ordering::SeqCst);
    let sent = writer.join().unwrap();

    // Quiesced: the books match the writer's count exactly.
    let snap = prober.metrics().unwrap();
    assert_eq!(counter(&snap, "session.requests"), sent);
    assert_eq!(
        counter(&snap, "session.requests"),
        counter(&snap, "session.accepted") + counter(&snap, "session.rejected")
    );
    assert!(
        counter(&snap, "session.rejected") > 0,
        "want both outcomes exercised"
    );
    server.shutdown();
}

/// Durable sessions write byte-identical WAL files no matter how many
/// dispatcher shards served them: sharding moves sessions between
/// threads, never reorders within one.
#[test]
fn wal_bytes_are_identical_across_shard_counts() {
    let batch: Vec<(String, SessionRequest)> = {
        let mut b = Vec::new();
        for name in ["alpha", "beta", "gamma"] {
            b.push((
                name.to_owned(),
                SessionRequest::RegisterView {
                    name: "r".into(),
                    mask: 0b01,
                },
            ));
        }
        for name in ["alpha", "beta", "gamma"] {
            b.push((
                name.to_owned(),
                SessionRequest::InsertPoolTuple {
                    relation: "R".into(),
                    tuple: Tuple::new([v("a3")]),
                },
            ));
            b.push((
                name.to_owned(),
                SessionRequest::Update {
                    view: "r".into(),
                    new_state: Instance::null_model(&sig()).with("R", rel(1, [["a2"], ["a3"]])),
                },
            ));
        }
        b.push(("beta".to_owned(), SessionRequest::Undo));
        b
    };

    let mut wals: Vec<BTreeMap<String, Vec<u8>>> = Vec::new();
    for shards in [1usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "compview-sharded-wal-{}-{shards}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut svc = Service::new();
        for name in ["alpha", "beta", "gamma"] {
            let sig = sig();
            svc.create_durable_session(
                &dir,
                name,
                SubschemaComponents::singletons(sig.clone()),
                Schema::unconstrained(sig.clone()),
                &pools(),
                Instance::null_model(&sig).with("R", rel(1, [["a1"]])),
                SessionConfig::default(),
                SyncPolicy::Always,
            )
            .unwrap();
        }
        let server = Server::bind_sharded("127.0.0.1:0", svc, shards).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for (session, req) in &batch {
            client.send(session, req).unwrap();
        }
        for _ in 0..batch.len() {
            client.recv().unwrap().unwrap();
        }
        drop(client);
        server.shutdown();
        wals.push(
            ["alpha", "beta", "gamma"]
                .iter()
                .map(|n| {
                    (
                        (*n).to_owned(),
                        std::fs::read(dir.join(format!("{n}.wal"))).unwrap(),
                    )
                })
                .collect(),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        wals[0], wals[1],
        "per-session WAL bytes must not depend on the shard count"
    );
}

/// A malformed frame costs exactly its own connection, even when the
/// healthy traffic spans several shards.
#[test]
fn malformed_frame_drops_only_its_connection_under_sharding() {
    let server = Server::bind_sharded("127.0.0.1:0", service_of(8), 4).unwrap();
    let addr = server.local_addr();

    // Healthy clients on sessions that land on different shards…
    let mut healthy: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
    for (i, client) in healthy.iter_mut().enumerate() {
        client
            .request(&format!("s{i}"), &SessionRequest::Stats)
            .unwrap()
            .unwrap();
    }

    // …and a raw socket that handshakes, then sends garbage framing.
    {
        use std::io::{Read, Write};
        let mut bad = std::net::TcpStream::connect(addr).unwrap();
        let mut hs = [0u8; 6];
        bad.read_exact(&mut hs).unwrap();
        bad.write_all(b"CVRPC1").unwrap();
        bad.write_all(&[0xFF; 32]).unwrap();
        let mut sink = Vec::new();
        let _ = bad.read_to_end(&mut sink);
    }

    // Every healthy connection is unaffected.
    for (i, client) in healthy.iter_mut().enumerate() {
        client
            .request(&format!("s{i}"), &SessionRequest::Stats)
            .unwrap()
            .unwrap();
    }
    let svc = server.shutdown();
    let snap = svc.registry().snapshot();
    assert_eq!(counter(&snap, "serve.malformed_frames"), 1);
    assert_eq!(counter(&snap, "serve.connections"), 5);
}
