//! Unified constraint type: `Con(D)`, the second half of a schema.
//!
//! Every constraint form used anywhere in the paper is covered: classical
//! dependencies (Examples 1.1.1, 1.2.5), general TGDs/EGDs (the subsumption
//! and join-completion rules of Example 2.1.1), column typing against the
//! type algebra (§2.1), and the contiguous-support shape constraint of the
//! null-augmented schemas ("there are no tuples of the form (a,η,d), (a,η,η),
//! or (η,η,η)", Example 3.2.4).

use crate::dep::{Fd, Ind, Jd};
use crate::rule::{Atom, Egd, Term, Tgd};
use crate::typealg::{TypeAssignment, TypeExpr};
use compview_relation::Instance;
use std::fmt;

/// A single integrity constraint.
#[derive(Clone, Debug, PartialEq)]
pub enum Constraint {
    /// Functional dependency.
    Fd(Fd),
    /// Join dependency.
    Jd(Jd),
    /// Inclusion dependency.
    Ind(Ind),
    /// Tuple-generating dependency.
    Tgd(Tgd),
    /// Equality-generating dependency.
    Egd(Egd),
    /// Column typing: every value in column `col` of `rel` inhabits `ty`
    /// under the schema's type assignment.
    ColType {
        /// Relation name.
        rel: String,
        /// Column index.
        col: usize,
        /// Required type.
        ty: TypeExpr,
    },
    /// Null-augmented shape: the support (non-null columns) of every tuple
    /// of `rel` is a contiguous interval of length at least `min_len`.
    ContiguousSupport {
        /// Relation name.
        rel: String,
        /// Minimum support length.
        min_len: usize,
    },
}

impl Constraint {
    /// Whether `inst` satisfies the constraint.  `mu` supplies type
    /// membership for [`Constraint::ColType`].
    pub fn satisfied(&self, inst: &Instance, mu: &TypeAssignment) -> bool {
        match self {
            Constraint::Fd(fd) => fd.satisfied(inst),
            Constraint::Jd(jd) => jd.satisfied(inst),
            Constraint::Ind(ind) => ind.satisfied(inst),
            Constraint::Tgd(tgd) => tgd.satisfied(inst),
            Constraint::Egd(egd) => egd.satisfied(inst),
            Constraint::ColType { rel, col, ty } => {
                inst.rel(rel).iter().all(|t| mu.inhabits(t[*col], ty))
            }
            Constraint::ContiguousSupport { rel, min_len } => inst.rel(rel).iter().all(|t| {
                let sup = t.support();
                sup.len() >= *min_len && sup.windows(2).all(|w| w[1] == w[0] + 1)
            }),
        }
    }

    /// The relation names the constraint reads.  A constraint whose set of
    /// read relations is contained in one pool block can be checked on that
    /// block alone, which is what lets `Schema::enumerate_ldb` prune
    /// per-relation submasks before assembling full instances.
    pub fn relations(&self) -> Vec<&str> {
        match self {
            Constraint::Fd(fd) => vec![fd.rel.as_str()],
            Constraint::Jd(jd) => vec![jd.rel.as_str()],
            Constraint::Ind(ind) => vec![ind.from_rel.as_str(), ind.to_rel.as_str()],
            Constraint::Tgd(tgd) => {
                let mut out: Vec<&str> = tgd
                    .body
                    .iter()
                    .chain(tgd.head.iter())
                    .map(|a| a.rel.as_str())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            Constraint::Egd(egd) => {
                let mut out: Vec<&str> = egd.body.iter().map(|a| a.rel.as_str()).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            Constraint::ColType { rel, .. } => vec![rel.as_str()],
            Constraint::ContiguousSupport { rel, .. } => vec![rel.as_str()],
        }
    }

    /// Whether a violation survives adding tuples (satisfaction is
    /// anti-monotone in the instance).  For such constraints a violating
    /// *partial* tuple set already dooms every superset, so enumeration may
    /// prune the whole subtree.  Denials (FDs, EGDs, typing, support shape)
    /// qualify; generating dependencies (JDs, INDs, TGDs) do not — a later
    /// tuple can discharge the requirement.
    pub fn violation_monotone(&self) -> bool {
        matches!(
            self,
            Constraint::Fd(_)
                | Constraint::Egd(_)
                | Constraint::ColType { .. }
                | Constraint::ContiguousSupport { .. }
        )
    }

    /// Compile to chase rules where a faithful compilation exists.
    ///
    /// * FDs become EGDs.
    /// * JDs become one full TGD.
    /// * INDs become TGDs (existential on uncovered target columns).
    /// * TGDs/EGDs pass through.
    /// * `ColType` and `ContiguousSupport` have no TGD/EGD form (they are
    ///   *denials* over the type structure) and contribute nothing; the
    ///   chase preserves them when its inputs respect them.
    pub fn to_rules(&self, arities: &dyn Fn(&str) -> usize) -> (Vec<Tgd>, Vec<Egd>) {
        match self {
            Constraint::Fd(fd) => {
                let arity = arities(&fd.rel);
                // Body: R(x̄), R(ȳ) with x̄,ȳ equal on lhs; one EGD per rhs col.
                let mut egds = Vec::new();
                for &rc in &fd.rhs {
                    let t1: Vec<Term> = (0..arity).map(|c| Term::Var(c as u32)).collect();
                    let t2: Vec<Term> = (0..arity)
                        .map(|c| {
                            if fd.lhs.contains(&c) {
                                Term::Var(c as u32)
                            } else {
                                Term::Var((arity + c) as u32)
                            }
                        })
                        .collect();
                    egds.push(Egd::new(
                        format!("fd:{}:{:?}->{rc}", fd.rel, fd.lhs),
                        vec![Atom::new(fd.rel.clone(), t1), Atom::new(fd.rel.clone(), t2)],
                        (rc as u32, (arity + rc) as u32),
                    ));
                }
                (Vec::new(), egds)
            }
            Constraint::Jd(jd) => {
                let arity = arities(&jd.rel);
                // Body: one atom per component; component i uses variable
                // c for base column c if c ∈ component, else a private var.
                let mut body = Vec::new();
                for (i, comp) in jd.components.iter().enumerate() {
                    let args: Vec<Term> = (0..arity)
                        .map(|c| {
                            if comp.contains(&c) {
                                Term::Var(c as u32)
                            } else {
                                Term::Var((arity * (i + 1) + c) as u32)
                            }
                        })
                        .collect();
                    body.push(Atom::new(jd.rel.clone(), args));
                }
                let head = vec![Atom::new(
                    jd.rel.clone(),
                    (0..arity).map(|c| Term::Var(c as u32)).collect(),
                )];
                (
                    vec![Tgd::new(format!("jd:{}", jd.rel), body, head)],
                    Vec::new(),
                )
            }
            Constraint::Ind(ind) => {
                let from_arity = arities(&ind.from_rel);
                let to_arity = arities(&ind.to_rel);
                let body = vec![Atom::new(
                    ind.from_rel.clone(),
                    (0..from_arity).map(|c| Term::Var(c as u32)).collect(),
                )];
                let head_args: Vec<Term> = (0..to_arity)
                    .map(|c| {
                        if let Some(pos) = ind.to_cols.iter().position(|&tc| tc == c) {
                            Term::Var(ind.from_cols[pos] as u32)
                        } else {
                            Term::Var((from_arity + c) as u32) // existential
                        }
                    })
                    .collect();
                (
                    vec![Tgd::new(
                        format!("ind:{}->{}", ind.from_rel, ind.to_rel),
                        body,
                        vec![Atom::new(ind.to_rel.clone(), head_args)],
                    )],
                    Vec::new(),
                )
            }
            Constraint::Tgd(t) => (vec![t.clone()], Vec::new()),
            Constraint::Egd(e) => (Vec::new(), vec![e.clone()]),
            Constraint::ColType { .. } | Constraint::ContiguousSupport { .. } => {
                (Vec::new(), Vec::new())
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Fd(fd) => write!(f, "{fd}"),
            Constraint::Jd(jd) => write!(f, "{jd}"),
            Constraint::Ind(ind) => write!(f, "{ind}"),
            Constraint::Tgd(t) => write!(f, "{t}"),
            Constraint::Egd(e) => write!(f, "{e}"),
            Constraint::ColType { rel, col, ty } => {
                write!(f, "type({rel}.{col}) ≤ {ty:?}")
            }
            Constraint::ContiguousSupport { rel, min_len } => {
                write!(f, "contiguous-support({rel}, ≥{min_len})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase, ChaseConfig};
    use crate::typealg::TypeAlgebra;
    use compview_relation::{rel, v, Instance};

    #[test]
    fn fd_compiles_to_working_egd() {
        let fd = Constraint::Fd(Fd::new("R", vec![0], vec![1]));
        let (tgds, egds) = fd.to_rules(&|_| 2);
        assert!(tgds.is_empty());
        assert_eq!(egds.len(), 1);
        let ok = Instance::new().with("R", rel(2, [["a", "x"], ["b", "y"]]));
        let bad = Instance::new().with("R", rel(2, [["a", "x"], ["a", "y"]]));
        assert!(egds[0].satisfied(&ok));
        assert!(!egds[0].satisfied(&bad));
    }

    #[test]
    fn jd_compiles_to_tgd_with_same_semantics() {
        let jd = Jd::new("R", vec![vec![0, 1], vec![1, 2]]);
        let direct_ok = Instance::new().with("R", rel(3, [["s2", "p3", "j1"], ["s2", "p3", "j3"]]));
        let direct_bad =
            Instance::new().with("R", rel(3, [["s2", "p3", "j1"], ["s3", "p3", "j3"]]));
        let (tgds, _) = Constraint::Jd(jd.clone()).to_rules(&|_| 3);
        assert_eq!(tgds.len(), 1);
        assert_eq!(jd.satisfied(&direct_ok), tgds[0].satisfied(&direct_ok));
        assert_eq!(jd.satisfied(&direct_bad), tgds[0].satisfied(&direct_bad));
        assert!(!tgds[0].satisfied(&direct_bad));
    }

    #[test]
    fn jd_tgd_chase_equals_reconstruction() {
        let jd = Jd::new("R", vec![vec![0, 1], vec![1, 2]]);
        let inst = Instance::new().with(
            "R",
            rel(
                3,
                [["s2", "p3", "j1"], ["s3", "p3", "j3"], ["s1", "p1", "j1"]],
            ),
        );
        let (tgds, _) = Constraint::Jd(jd.clone()).to_rules(&|_| 3);
        let closed = chase(&inst, &tgds, &[], &ChaseConfig::default()).unwrap();
        assert_eq!(closed.rel("R"), &jd.reconstruct(inst.rel("R")));
    }

    #[test]
    fn ind_compiles_with_existential_target_columns() {
        let ind = Ind::new("E", vec![1], "D", vec![0]);
        let (tgds, _) = Constraint::Ind(ind).to_rules(&|_| 2);
        assert_eq!(tgds.len(), 1);
        assert_eq!(tgds[0].existential_vars().len(), 1); // D's second column
    }

    #[test]
    fn col_type_constraint() {
        let alg = TypeAlgebra::new(["S", "P"]);
        let mu = TypeAssignment::new()
            .with(v("s1"), &[0])
            .with(v("p1"), &[1]);
        let c = Constraint::ColType {
            rel: "R".into(),
            col: 0,
            ty: alg.gen("S"),
        };
        let ok = Instance::new().with("R", rel(2, [["s1", "p1"]]));
        let bad = Instance::new().with("R", rel(2, [["p1", "s1"]]));
        assert!(c.satisfied(&ok, &mu));
        assert!(!c.satisfied(&bad, &mu));
    }

    #[test]
    fn contiguous_support_rejects_gap_tuples() {
        use compview_relation::{Relation, Tuple, Value};
        let c = Constraint::ContiguousSupport {
            rel: "R".into(),
            min_len: 2,
        };
        let mu = TypeAssignment::new();
        let good = Instance::new().with(
            "R",
            Relation::from_tuples(
                4,
                [
                    Tuple::new([v("a"), v("b"), Value::Null, Value::Null]),
                    Tuple::new([Value::Null, v("b"), v("c"), v("d")]),
                ],
            ),
        );
        // (a,η,d,η): gap; (a,η,η,η): too short; both outlawed by Ex 3.2.4.
        let gap = Instance::new().with(
            "R",
            Relation::from_tuples(4, [Tuple::new([v("a"), Value::Null, v("d"), Value::Null])]),
        );
        let short = Instance::new().with(
            "R",
            Relation::from_tuples(
                4,
                [Tuple::new([v("a"), Value::Null, Value::Null, Value::Null])],
            ),
        );
        assert!(c.satisfied(&good, &mu));
        assert!(!c.satisfied(&gap, &mu));
        assert!(!c.satisfied(&short, &mu));
    }
}
