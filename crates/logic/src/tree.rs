//! Null-augmented **tree schemas**: the acyclic generalisation of the
//! chain decomposition of Example 2.1.1.
//!
//! The paper's decomposition framework (\[Hegn84\], summarised in §2) is not
//! limited to chains: any *acyclic* join dependency whose components are
//! binary — a **join tree** over the attributes — admits the same
//! null-value exactification.  A [`TreeSchema`] has one relation whose
//! attributes are the nodes of a tree; legal tuples ("objects") have
//! connected-subtree support of at least two nodes, and instances are
//! closed under
//!
//! * **subsumption**: dropping any leaf of an object's support yields a
//!   present sub-object;
//! * **composition**: two objects whose supports share exactly one node,
//!   with equal value there, force their union object.
//!
//! A [`crate::nulls::PathSchema`] is exactly a [`TreeSchema`] over a path
//! graph; the two engines are cross-validated in tests.  The component
//! algebra over edge subsets is built in `compview-core::treeview`.

use crate::constraint::Constraint;
use crate::rule::{Atom, Term, Tgd};
use crate::schema::Schema;
use compview_relation::{Instance, RelDecl, Relation, Signature, Tuple, Value};
use std::collections::{BTreeSet, HashMap};

/// A null-augmented schema over a tree of attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeSchema {
    rel: String,
    attrs: Vec<String>,
    /// Tree edges as `(lo, hi)` node-index pairs, `lo < hi`.
    edges: Vec<(usize, usize)>,
    /// Adjacency: `adj[v]` = list of `(neighbour, edge index)`.
    adj: Vec<Vec<(usize, usize)>>,
}

impl TreeSchema {
    /// Build a tree schema.
    ///
    /// # Panics
    /// Panics unless `edges` forms a tree over all attributes (connected,
    /// `|attrs| - 1` edges) with at least two attributes.
    pub fn new<S, I, A>(rel: S, attrs: I, edges: Vec<(usize, usize)>) -> TreeSchema
    where
        S: Into<String>,
        I: IntoIterator<Item = A>,
        A: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let k = attrs.len();
        assert!(k >= 2, "tree schema needs at least two attributes");
        assert_eq!(
            edges.len(),
            k - 1,
            "a tree on {k} nodes has {} edges",
            k - 1
        );
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); k];
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a != b && a < k && b < k, "bad edge ({a},{b})");
                (a.min(b), a.max(b))
            })
            .collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            adj[a].push((b, i));
            adj[b].push((a, i));
        }
        // Connectivity check (with k-1 edges, connected ⇒ tree).
        let mut seen = vec![false; k];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &(w, _) in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        assert!(
            seen.into_iter().all(|s| s),
            "edges do not connect all attributes"
        );
        TreeSchema {
            rel: rel.into(),
            attrs,
            edges,
            adj,
        }
    }

    /// The path graph `A_0 — A_1 — … — A_{k-1}`: the chain special case.
    pub fn path<S, I, A>(rel: S, attrs: I) -> TreeSchema
    where
        S: Into<String>,
        I: IntoIterator<Item = A>,
        A: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let edges = (0..attrs.len() - 1).map(|i| (i, i + 1)).collect();
        TreeSchema::new(rel, attrs, edges)
    }

    /// A star: centre attribute first, then the leaves.
    pub fn star<S, I, A>(rel: S, attrs: I) -> TreeSchema
    where
        S: Into<String>,
        I: IntoIterator<Item = A>,
        A: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let edges = (1..attrs.len()).map(|i| (0, i)).collect();
        TreeSchema::new(rel, attrs, edges)
    }

    /// Relation name.
    pub fn rel_name(&self) -> &str {
        &self.rel
    }

    /// Attribute names (tree nodes).
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The tree edges (the atoms of the component algebra).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// `Rel(D)`.
    pub fn signature(&self) -> Signature {
        Signature::new([RelDecl::new(self.rel.clone(), self.attrs.clone())])
    }

    /// The support of a tuple as a node set, if it is a legal object
    /// (connected subtree, ≥ 2 nodes).
    pub fn subtree(&self, t: &Tuple) -> Option<BTreeSet<usize>> {
        let sup: BTreeSet<usize> = t.support().into_iter().collect();
        if sup.len() < 2 || !self.is_connected(&sup) {
            return None;
        }
        Some(sup)
    }

    /// Whether a node set induces a connected subgraph of the tree.
    fn is_connected(&self, nodes: &BTreeSet<usize>) -> bool {
        let Some(&start) = nodes.iter().next() else {
            return false;
        };
        let mut seen = BTreeSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.adj[v] {
                if nodes.contains(&w) && seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        seen.len() == nodes.len()
    }

    /// The edge indices internal to a connected node set.
    pub fn edges_within(&self, nodes: &BTreeSet<usize>) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| nodes.contains(&a) && nodes.contains(&b))
            .map(|(i, _)| i)
            .collect()
    }

    /// Build the object with the given `(node, value)` bindings, nulls
    /// elsewhere.
    ///
    /// # Panics
    /// Panics if the bound nodes are not a legal object support.
    pub fn object(&self, bindings: &[(usize, Value)]) -> Tuple {
        let map: HashMap<usize, Value> = bindings.iter().copied().collect();
        let t = Tuple::new((0..self.arity()).map(|c| map.get(&c).copied().unwrap_or(Value::Null)));
        assert!(
            self.subtree(&t).is_some(),
            "bindings do not form a connected ≥2-node object"
        );
        t
    }

    /// Leaves of a connected node set (nodes with exactly one neighbour
    /// inside the set).
    fn leaves(&self, nodes: &BTreeSet<usize>) -> Vec<usize> {
        nodes
            .iter()
            .copied()
            .filter(|&v| {
                self.adj[v]
                    .iter()
                    .filter(|&&(w, _)| nodes.contains(&w))
                    .count()
                    == 1
            })
            .collect()
    }

    /// Closure under subsumption and composition (least legal instance
    /// containing `r`).
    ///
    /// # Panics
    /// Panics if `r` contains an illegal object.
    pub fn close(&self, r: &Relation) -> Relation {
        let mut out = Relation::empty(self.arity());
        // Index objects by (support node, value there).
        let mut by_node: HashMap<(usize, Value), Vec<Tuple>> = HashMap::new();
        let mut work: Vec<Tuple> = Vec::new();
        let push = |t: Tuple, out: &mut Relation, work: &mut Vec<Tuple>| {
            if out.insert(t.clone()) {
                work.push(t);
            }
        };
        for t in r.iter() {
            assert!(
                self.subtree(t).is_some(),
                "illegal object {t} in tree-schema relation"
            );
            push(t.clone(), &mut out, &mut work);
        }
        while let Some(t) = work.pop() {
            let sup = self.subtree(&t).expect("validated");
            // Subsumption: drop each leaf (when ≥ 3 nodes).
            if sup.len() >= 3 {
                for leaf in self.leaves(&sup) {
                    push(t.with(leaf, Value::Null), &mut out, &mut work);
                }
            }
            // Composition: pair with indexed objects sharing exactly one
            // node, equal value there.
            let mut combos: Vec<Tuple> = Vec::new();
            for &v in &sup {
                if let Some(cands) = by_node.get(&(v, t[v])) {
                    for u in cands {
                        let usup = self.subtree(u).expect("indexed objects are legal");
                        if sup.intersection(&usup).count() == 1 {
                            combos.push(self.combine(&t, u));
                        }
                    }
                }
            }
            for cmb in combos {
                push(cmb, &mut out, &mut work);
            }
            for &v in &sup {
                by_node.entry((v, t[v])).or_default().push(t.clone());
            }
        }
        out
    }

    /// Union of two objects overlapping at one agreeing node.
    fn combine(&self, a: &Tuple, b: &Tuple) -> Tuple {
        Tuple::new((0..self.arity()).map(|c| if a[c].is_null() { b[c] } else { a[c] }))
    }

    /// Whether `r` is closed.
    pub fn is_closed(&self, r: &Relation) -> bool {
        self.close(r) == *r
    }

    /// Wrap a relation as an instance of this schema.
    pub fn instance(&self, r: Relation) -> Instance {
        Instance::null_model(&self.signature()).with(self.rel.clone(), r)
    }

    /// Whether `inst` is a legal database (object shapes + closure).
    pub fn is_legal(&self, inst: &Instance) -> bool {
        let r = inst.rel(&self.rel);
        r.iter().all(|t| self.subtree(t).is_some()) && self.is_closed(r)
    }

    /// The closure rules as generic TGDs (for chase cross-validation):
    /// one subsumption rule per (connected support, leaf) pair and one
    /// composition rule per single-node-overlapping support pair.
    ///
    /// Exponential in the attribute count; intended for small schemas.
    pub fn closure_tgds(&self) -> Vec<Tgd> {
        let supports = self.connected_supports();
        let mut rules = Vec::new();
        // Subsumption.
        for sup in &supports {
            if sup.len() < 3 {
                continue;
            }
            for leaf in self.leaves(sup) {
                let mut smaller = sup.clone();
                smaller.remove(&leaf);
                rules.push(
                    Tgd::new(
                        format!("subsume{sup:?}-{leaf}"),
                        vec![self.pattern_atom(sup)],
                        vec![self.pattern_atom(&smaller)],
                    )
                    .with_nonnull(sup.iter().map(|&v| v as u32).collect()),
                );
            }
        }
        // Composition.
        for a in &supports {
            for b in &supports {
                let overlap: Vec<usize> = a.intersection(b).copied().collect();
                if overlap.len() != 1 || a.is_subset(b) || b.is_subset(a) {
                    continue;
                }
                let union: BTreeSet<usize> = a.union(b).copied().collect();
                rules.push(
                    Tgd::new(
                        format!("compose{a:?}+{b:?}"),
                        vec![self.pattern_atom(a), self.pattern_atom(b)],
                        vec![self.pattern_atom(&union)],
                    )
                    .with_nonnull(union.iter().map(|&v| v as u32).collect()),
                );
            }
        }
        rules
    }

    /// All connected node sets of size ≥ 2 (legal supports).
    pub fn connected_supports(&self) -> Vec<BTreeSet<usize>> {
        let k = self.arity();
        assert!(k <= 16, "support enumeration limited to small trees");
        (0usize..(1 << k))
            .filter_map(|mask| {
                let nodes: BTreeSet<usize> = (0..k).filter(|&v| (mask >> v) & 1 == 1).collect();
                (nodes.len() >= 2 && self.is_connected(&nodes)).then_some(nodes)
            })
            .collect()
    }

    fn pattern_atom(&self, nodes: &BTreeSet<usize>) -> Atom {
        let args: Vec<Term> = (0..self.arity())
            .map(|c| {
                if nodes.contains(&c) {
                    Term::Var(c as u32)
                } else {
                    Term::Const(Value::Null)
                }
            })
            .collect();
        Atom::new(self.rel.clone(), args)
    }

    /// The full schema: shape constraint plus closure TGDs.
    ///
    /// The shape ("support is a connected subtree of ≥ 2 nodes") is not a
    /// `ContiguousSupport` unless the tree is a path, so it is emitted as
    /// the conjunction of per-shape denials only when the tree is a path;
    /// otherwise legality is checked through [`TreeSchema::is_legal`].
    pub fn schema(&self) -> Schema {
        let mut constraints = Vec::new();
        if self
            .edges
            .iter()
            .enumerate()
            .all(|(i, &(a, b))| a == i && b == i + 1)
        {
            constraints.push(Constraint::ContiguousSupport {
                rel: self.rel.clone(),
                min_len: 2,
            });
        }
        for tgd in self.closure_tgds() {
            constraints.push(Constraint::Tgd(tgd));
        }
        Schema::new(self.signature(), constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase, ChaseConfig};
    use crate::nulls::PathSchema;
    use compview_relation::v;

    /// A small "registrar" tree:
    ///       Budget(3)
    ///          |
    /// Student(0) — Course(1) — Dept(2)
    /// …as a path, and a genuine star for contrast.
    fn star4() -> TreeSchema {
        TreeSchema::star("R", ["Hub", "X", "Y", "Z"])
    }

    #[test]
    fn construction_validates_tree() {
        let t = star4();
        assert_eq!(t.n_edges(), 3);
        assert_eq!(t.edges(), &[(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    #[should_panic(expected = "connect")]
    fn disconnected_edges_rejected() {
        TreeSchema::new("R", ["A", "B", "C", "D"], vec![(0, 1), (2, 3), (0, 1)]);
    }

    #[test]
    fn subtree_recognition() {
        let t = star4();
        // {Hub, X} connected; {X, Y} not (leaves of a star).
        let hx = t.object(&[(0, v("h")), (1, v("x"))]);
        assert!(t.subtree(&hx).is_some());
        let xy = Tuple::new([Value::Null, v("x"), v("y"), Value::Null]);
        assert!(t.subtree(&xy).is_none());
    }

    #[test]
    fn star_closure_composes_through_hub() {
        let t = star4();
        let gens = Relation::from_tuples(
            4,
            [
                t.object(&[(0, v("h")), (1, v("x"))]),
                t.object(&[(0, v("h")), (2, v("y"))]),
                t.object(&[(0, v("h")), (3, v("z"))]),
            ],
        );
        let closed = t.close(&gens);
        // All connected supports containing the hub with matching value:
        // {0,1},{0,2},{0,3},{0,1,2},{0,1,3},{0,2,3},{0,1,2,3} → 7 objects.
        assert_eq!(closed.len(), 7);
        assert!(closed.contains(&t.object(&[(0, v("h")), (1, v("x")), (2, v("y")), (3, v("z"))])));
    }

    #[test]
    fn no_composition_through_different_hub_values() {
        let t = star4();
        let gens = Relation::from_tuples(
            4,
            [
                t.object(&[(0, v("h1")), (1, v("x"))]),
                t.object(&[(0, v("h2")), (2, v("y"))]),
            ],
        );
        assert_eq!(t.close(&gens).len(), 2);
    }

    #[test]
    fn subsumption_drops_leaves() {
        let t = star4();
        let full = t.object(&[(0, v("h")), (1, v("x")), (2, v("y")), (3, v("z"))]);
        let closed = t.close(&Relation::from_tuples(4, [full]));
        assert_eq!(closed.len(), 7);
        assert!(closed.contains(&t.object(&[(0, v("h")), (2, v("y"))])));
    }

    #[test]
    fn path_tree_agrees_with_path_schema() {
        let pt = TreeSchema::path("R", ["A", "B", "C", "D"]);
        let ps = PathSchema::example_2_1_1();
        let gens = PathSchema::example_2_1_1_generators();
        assert_eq!(pt.close(&gens), ps.close(&gens));
        // And on a second shape.
        let gens2 = Relation::from_tuples(
            4,
            [
                ps.object(0, &[v("a"), v("b")]),
                ps.object(1, &[v("b"), v("c")]),
                ps.object(2, &[v("c"), v("d")]),
            ],
        );
        assert_eq!(pt.close(&gens2), ps.close(&gens2));
    }

    #[test]
    fn closure_matches_chase_on_star() {
        let t = star4();
        let gens = Relation::from_tuples(
            4,
            [
                t.object(&[(0, v("h")), (1, v("x"))]),
                t.object(&[(0, v("h")), (2, v("y"))]),
            ],
        );
        let fast = t.close(&gens);
        let chased = chase(
            &t.instance(gens),
            &t.closure_tgds(),
            &[],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(chased.rel("R"), &fast);
    }

    #[test]
    fn closure_is_idempotent_and_legal() {
        let t = star4();
        let gens = Relation::from_tuples(
            4,
            [
                t.object(&[(0, v("h")), (1, v("x"))]),
                t.object(&[(0, v("h")), (2, v("y"))]),
                t.object(&[(0, v("g")), (3, v("z"))]),
            ],
        );
        let c = t.close(&gens);
        assert_eq!(t.close(&c), c);
        assert!(t.is_legal(&t.instance(c)));
        assert!(t.schema().has_null_model_property());
    }

    #[test]
    fn caterpillar_tree() {
        // A — B — C with D hanging off B: tests a branching interior.
        let t = TreeSchema::new("R", ["A", "B", "C", "D"], vec![(0, 1), (1, 2), (1, 3)]);
        let gens = Relation::from_tuples(
            4,
            [
                t.object(&[(0, v("a")), (1, v("b"))]),
                t.object(&[(1, v("b")), (2, v("c"))]),
                t.object(&[(1, v("b")), (3, v("d"))]),
            ],
        );
        let closed = t.close(&gens);
        // Connected supports through b: {01},{12},{13},{012},{013},{123},{0123} = 7.
        assert_eq!(closed.len(), 7);
        let full = t.object(&[(0, v("a")), (1, v("b")), (2, v("c")), (3, v("d"))]);
        assert!(closed.contains(&full));
        // Chase agreement here too.
        let chased = chase(
            &t.instance(gens),
            &t.closure_tgds(),
            &[],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(chased.rel("R"), &closed);
    }

    #[test]
    fn connected_supports_count() {
        // Path on 4 nodes: C(4+1,2)-4 … directly: intervals of len ≥2 = 6.
        let p = TreeSchema::path("R", ["A", "B", "C", "D"]);
        assert_eq!(p.connected_supports().len(), 6);
        // Star on 4 nodes: any subset containing the hub (≥2 nodes): 7.
        assert_eq!(star4().connected_supports().len(), 7);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn object_constructor_validates() {
        let t = star4();
        t.object(&[(1, v("x")), (2, v("y"))]); // leaves only: disconnected
    }
}
