//! The type algebra `Ω = (T, K, A)` of §2.1.
//!
//! The paper's types are unary predicates forming a **Boolean algebra** under
//! `∨ ∧ ¬` with greatest element `τ_u` and least element `τ_⊥`.  We realise
//! the *free* Boolean algebra over a finite set of generator types in
//! canonical **minterm** form: a type denotes the set of minterms (complete
//! conjunctions of generators and negated generators) it covers, stored as a
//! bitset over `2^n` minterms.  Two type expressions are equal in the algebra
//! iff they cover the same minterms, so equality, implication, and all the
//! Boolean laws are decidable by bitset operations.
//!
//! Interactions between types ("attribute C is the union of attributes A and
//! B", §2.1) are expressed by building `τ_C` as `τ_A ∨ τ_B` rather than a
//! fresh generator.  Null types (`τ_η`) are ordinary generators whose
//! assignment contains exactly the null value.

use compview_relation::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A finite set of named generator types; the ambient free Boolean algebra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeAlgebra {
    gens: Arc<Vec<String>>,
}

/// Maximum number of generators (minterm sets are `2^n` bits).
pub const MAX_GENERATORS: usize = 16;

impl TypeAlgebra {
    /// Create an algebra with the given generator type names.
    ///
    /// # Panics
    /// Panics on duplicates or on more than [`MAX_GENERATORS`] generators.
    pub fn new<I, S>(gens: I) -> TypeAlgebra
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let gens: Vec<String> = gens.into_iter().map(Into::into).collect();
        assert!(
            gens.len() <= MAX_GENERATORS,
            "at most {MAX_GENERATORS} generator types supported"
        );
        for (i, g) in gens.iter().enumerate() {
            assert!(!gens[..i].contains(g), "duplicate generator type {g:?}");
        }
        TypeAlgebra {
            gens: Arc::new(gens),
        }
    }

    /// Number of generators.
    pub fn n_gens(&self) -> usize {
        self.gens.len()
    }

    /// Generator names.
    pub fn gens(&self) -> &[String] {
        &self.gens
    }

    /// Index of generator `name`.
    pub fn gen_index(&self, name: &str) -> Option<usize> {
        self.gens.iter().position(|g| g == name)
    }

    /// The generator type named `name`.
    ///
    /// # Panics
    /// Panics if `name` is not a generator.
    pub fn gen(&self, name: &str) -> TypeExpr {
        TypeExpr::Gen(
            self.gen_index(name)
                .unwrap_or_else(|| panic!("unknown generator type {name:?}")),
        )
    }

    /// Number of minterms (`2^n`).
    pub fn n_minterms(&self) -> usize {
        1usize << self.gens.len()
    }

    /// Canonicalize an expression to its minterm set.
    pub fn canon(&self, e: &TypeExpr) -> Minterms {
        let n = self.n_minterms();
        let mut m = Minterms::empty(self.n_gens());
        for i in 0..n {
            if e.eval_minterm(i) {
                m.set(i);
            }
        }
        m
    }

    /// Whether two type expressions denote the same type in the free algebra.
    pub fn equivalent(&self, a: &TypeExpr, b: &TypeExpr) -> bool {
        self.canon(a) == self.canon(b)
    }

    /// Whether `a ≤ b` (i.e. `a → b` is valid; `a ∧ ¬b = τ_⊥`).
    pub fn implies(&self, a: &TypeExpr, b: &TypeExpr) -> bool {
        self.canon(a).is_subset(&self.canon(b))
    }

    /// Whether `e` is the least type `τ_⊥`.
    pub fn is_bot(&self, e: &TypeExpr) -> bool {
        self.canon(e).is_empty()
    }

    /// Whether `e` is the greatest type `τ_u`.
    pub fn is_top(&self, e: &TypeExpr) -> bool {
        self.canon(e).is_full()
    }
}

/// A type expression over generator indices of a [`TypeAlgebra`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum TypeExpr {
    /// The universally true type `τ_u`.
    Top,
    /// The universally false type `τ_⊥`.
    Bot,
    /// Generator `i`.
    Gen(usize),
    /// Negation `¬τ`.
    Not(Box<TypeExpr>),
    /// Conjunction `τ ∧ σ`.
    And(Box<TypeExpr>, Box<TypeExpr>),
    /// Disjunction `τ ∨ σ`.
    Or(Box<TypeExpr>, Box<TypeExpr>),
}

impl TypeExpr {
    /// `self ∧ other`.
    pub fn and(self, other: TypeExpr) -> TypeExpr {
        TypeExpr::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: TypeExpr) -> TypeExpr {
        TypeExpr::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TypeExpr {
        TypeExpr::Not(Box::new(self))
    }

    /// Evaluate at minterm `m`: bit `i` of `m` gives the truth of
    /// generator `i`.
    pub fn eval_minterm(&self, m: usize) -> bool {
        match self {
            TypeExpr::Top => true,
            TypeExpr::Bot => false,
            TypeExpr::Gen(i) => (m >> i) & 1 == 1,
            TypeExpr::Not(e) => !e.eval_minterm(m),
            TypeExpr::And(a, b) => a.eval_minterm(m) && b.eval_minterm(m),
            TypeExpr::Or(a, b) => a.eval_minterm(m) || b.eval_minterm(m),
        }
    }
}

impl fmt::Debug for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Top => write!(f, "τ_u"),
            TypeExpr::Bot => write!(f, "τ_⊥"),
            TypeExpr::Gen(i) => write!(f, "g{i}"),
            TypeExpr::Not(e) => write!(f, "¬{e:?}"),
            TypeExpr::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            TypeExpr::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
        }
    }
}

/// Canonical form of a type: the set of minterms it covers.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Minterms {
    n_gens: usize,
    bits: Vec<u64>,
}

impl Minterms {
    /// The empty minterm set (`τ_⊥`) over `n_gens` generators.
    pub fn empty(n_gens: usize) -> Minterms {
        assert!(n_gens <= MAX_GENERATORS);
        let n = 1usize << n_gens;
        Minterms {
            n_gens,
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// The full minterm set (`τ_u`).
    pub fn full(n_gens: usize) -> Minterms {
        let mut m = Minterms::empty(n_gens);
        let n = 1usize << n_gens;
        for w in 0..m.bits.len() {
            m.bits[w] = !0u64;
        }
        // Mask off bits beyond 2^n in the last word.
        let rem = n % 64;
        if rem != 0 {
            *m.bits.last_mut().expect("nonempty") = (1u64 << rem) - 1;
        }
        m
    }

    /// Number of generators.
    pub fn n_gens(&self) -> usize {
        self.n_gens
    }

    /// Set minterm `i`.
    pub fn set(&mut self, i: usize) {
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether minterm `i` is covered.
    pub fn contains(&self, i: usize) -> bool {
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Whether no minterm is covered (`τ_⊥`).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Whether all minterms are covered (`τ_u`).
    pub fn is_full(&self) -> bool {
        *self == Minterms::full(self.n_gens)
    }

    /// Subset test (implication of types).
    pub fn is_subset(&self, other: &Minterms) -> bool {
        self.zip_check(other);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Meet (`∧`).
    pub fn and(&self, other: &Minterms) -> Minterms {
        self.zip_check(other);
        self.zip_with(other, |a, b| a & b)
    }

    /// Join (`∨`).
    pub fn or(&self, other: &Minterms) -> Minterms {
        self.zip_check(other);
        self.zip_with(other, |a, b| a | b)
    }

    /// Complement (`¬`).
    pub fn complement(&self) -> Minterms {
        let full = Minterms::full(self.n_gens);
        Minterms {
            n_gens: self.n_gens,
            bits: self
                .bits
                .iter()
                .zip(&full.bits)
                .map(|(a, f)| !a & f)
                .collect(),
        }
    }

    /// Number of covered minterms.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn zip_with<F: Fn(u64, u64) -> u64>(&self, other: &Minterms, f: F) -> Minterms {
        Minterms {
            n_gens: self.n_gens,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn zip_check(&self, other: &Minterms) {
        assert_eq!(
            self.n_gens, other.n_gens,
            "minterm sets over different algebras"
        );
    }
}

impl fmt::Debug for Minterms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Minterms[{}/{}]", self.count(), 1usize << self.n_gens)
    }
}

/// A type assignment `μ`: a model of the type axioms, mapping each domain
/// value to the set of generator types it inhabits.
///
/// The generator membership of a value determines its minterm, so membership
/// in an arbitrary [`TypeExpr`] is a single bit lookup after
/// canonicalization.  Per §2.1 the assignment is fixed within a situation —
/// "a user is never allowed to update it".
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TypeAssignment {
    memberships: BTreeMap<Value, u32>,
}

impl TypeAssignment {
    /// The assignment with no values declared.
    pub fn new() -> TypeAssignment {
        TypeAssignment::default()
    }

    /// Declare `value` to be a member of exactly the generators `gens`
    /// (indices into the ambient algebra's generator list).
    pub fn declare(&mut self, value: Value, gens: &[usize]) -> &mut TypeAssignment {
        let mut mask = 0u32;
        for &g in gens {
            assert!(g < MAX_GENERATORS, "generator index out of range");
            mask |= 1 << g;
        }
        self.memberships.insert(value, mask);
        self
    }

    /// Builder form of [`TypeAssignment::declare`].
    pub fn with(mut self, value: Value, gens: &[usize]) -> TypeAssignment {
        self.declare(value, gens);
        self
    }

    /// The minterm index of `value` (its complete generator membership),
    /// or `None` if the value was never declared.
    pub fn minterm(&self, value: Value) -> Option<usize> {
        self.memberships.get(&value).map(|&m| m as usize)
    }

    /// Whether `value` inhabits type `e` under this assignment.
    ///
    /// Undeclared values inhabit only `τ_u`-like types (their minterm is
    /// taken as all-generators-false).
    pub fn inhabits(&self, value: Value, e: &TypeExpr) -> bool {
        e.eval_minterm(self.minterm(value).unwrap_or(0))
    }

    /// Values declared to inhabit `e`.
    pub fn values_of(&self, e: &TypeExpr) -> Vec<Value> {
        self.memberships
            .keys()
            .copied()
            .filter(|&v| self.inhabits(v, e))
            .collect()
    }

    /// All declared values.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.memberships.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compview_relation::v;

    fn alg3() -> TypeAlgebra {
        TypeAlgebra::new(["A", "B", "eta"])
    }

    #[test]
    fn generators_resolve() {
        let alg = alg3();
        assert_eq!(alg.n_gens(), 3);
        assert_eq!(alg.gen_index("B"), Some(1));
        assert_eq!(alg.gen_index("Z"), None);
        assert_eq!(alg.n_minterms(), 8);
    }

    #[test]
    fn boolean_laws_hold_canonically() {
        let alg = alg3();
        let a = alg.gen("A");
        let b = alg.gen("B");
        // Commutativity, distributivity, De Morgan, double negation.
        assert!(alg.equivalent(&a.clone().and(b.clone()), &b.clone().and(a.clone())));
        assert!(alg.equivalent(
            &a.clone().and(b.clone().or(alg.gen("eta"))),
            &a.clone().and(b.clone()).or(a.clone().and(alg.gen("eta")))
        ));
        assert!(alg.equivalent(
            &a.clone().and(b.clone()).not(),
            &a.clone().not().or(b.clone().not())
        ));
        assert!(alg.equivalent(&a.clone().not().not(), &a));
        // Complement laws.
        assert!(alg.is_bot(&a.clone().and(a.clone().not())));
        assert!(alg.is_top(&a.clone().or(a.clone().not())));
    }

    #[test]
    fn implication_is_minterm_subset() {
        let alg = alg3();
        let a = alg.gen("A");
        let ab = a.clone().and(alg.gen("B"));
        assert!(alg.implies(&ab, &a));
        assert!(!alg.implies(&a, &ab));
        assert!(alg.implies(&TypeExpr::Bot, &a));
        assert!(alg.implies(&a, &TypeExpr::Top));
    }

    #[test]
    fn union_type_interaction() {
        // §2.1: "attribute C is the union of attributes A and B" is the
        // definition τ_C = τ_A ∨ τ_B.
        let alg = alg3();
        let c = alg.gen("A").or(alg.gen("B"));
        assert!(alg.implies(&alg.gen("A"), &c));
        assert!(alg.implies(&alg.gen("B"), &c));
        assert!(!alg.implies(&c, &alg.gen("A")));
    }

    #[test]
    fn minterm_bitset_ops() {
        let alg = alg3();
        let a = alg.canon(&alg.gen("A"));
        let b = alg.canon(&alg.gen("B"));
        assert_eq!(a.count(), 4); // half of 8 minterms
        assert_eq!(a.and(&b).count(), 2);
        assert_eq!(a.or(&b).count(), 6);
        assert_eq!(a.complement().count(), 4);
        assert!(a.and(&a.complement()).is_empty());
        assert!(a.or(&a.complement()).is_full());
    }

    #[test]
    fn full_masks_partial_word() {
        let alg = TypeAlgebra::new(["X", "Y"]);
        let full = Minterms::full(alg.n_gens());
        assert_eq!(full.count(), 4);
        assert!(full.is_full());
    }

    #[test]
    fn assignment_membership() {
        let alg = alg3();
        let (ia, ieta) = (alg.gen_index("A").unwrap(), alg.gen_index("eta").unwrap());
        let mu = TypeAssignment::new()
            .with(v("a1"), &[ia])
            .with(Value::Null, &[ieta]);
        let tau_a = alg.gen("A");
        let tau_eta = alg.gen("eta");
        let tau_a_hat = tau_a.clone().or(tau_eta.clone()); // τ̂_A of Ex 2.1.1
        assert!(mu.inhabits(v("a1"), &tau_a));
        assert!(!mu.inhabits(v("a1"), &tau_eta));
        assert!(mu.inhabits(Value::Null, &tau_eta));
        assert!(mu.inhabits(v("a1"), &tau_a_hat));
        assert!(mu.inhabits(Value::Null, &tau_a_hat));
        assert_eq!(mu.values_of(&tau_a_hat).len(), 2);
    }

    #[test]
    fn null_type_has_one_value() {
        // τ_η(η) ∧ ∀x(τ_η(x) → x=η): the assignment realises the axiom by
        // declaring only η in τ_η.
        let alg = alg3();
        let ieta = alg.gen_index("eta").unwrap();
        let mu = TypeAssignment::new()
            .with(Value::Null, &[ieta])
            .with(v("a1"), &[0])
            .with(v("b1"), &[1]);
        assert_eq!(mu.values_of(&alg.gen("eta")), vec![Value::Null]);
    }

    #[test]
    #[should_panic(expected = "duplicate generator")]
    fn duplicate_generators_rejected() {
        TypeAlgebra::new(["A", "A"]);
    }

    #[test]
    fn undeclared_values_default_to_no_generators() {
        let alg = alg3();
        let mu = TypeAssignment::new();
        assert!(!mu.inhabits(v("mystery"), &alg.gen("A")));
        assert!(mu.inhabits(v("mystery"), &TypeExpr::Top));
    }
}
