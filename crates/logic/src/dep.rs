//! Classical dependencies: functional, join (incl. embedded), and inclusion
//! dependencies, with direct satisfaction checks over finite instances.
//!
//! These are the constraint classes the related work surveyed in §0.2 deals
//! with (\[DaBe78\], \[Kell82\], …) and the ones the paper's own examples use:
//! the join dependency `*[SP,PJ]` of Example 1.1.1 and `*[AB,BC,CD]` of
//! Example 2.1.1.  Each dependency also compiles to TGDs/EGDs
//! (see [`crate::rule`]) so the chase engine can reason about all of them
//! uniformly.

use compview_relation::{Instance, Relation, Tuple};
use std::fmt;

/// A functional dependency `R : X → Y` over column indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// Relation name.
    pub rel: String,
    /// Determinant column indices.
    pub lhs: Vec<usize>,
    /// Dependent column indices.
    pub rhs: Vec<usize>,
}

impl Fd {
    /// `R : lhs → rhs`.
    pub fn new<S: Into<String>>(rel: S, lhs: Vec<usize>, rhs: Vec<usize>) -> Fd {
        Fd {
            rel: rel.into(),
            lhs,
            rhs,
        }
    }

    /// Whether the instance satisfies the FD.
    pub fn satisfied(&self, inst: &Instance) -> bool {
        let r = inst.rel(&self.rel);
        let mut seen: std::collections::HashMap<Tuple, Tuple> = std::collections::HashMap::new();
        for t in r.iter() {
            let key = t.project(&self.lhs);
            let val = t.project(&self.rhs);
            if let Some(prev) = seen.get(&key) {
                if *prev != val {
                    return false;
                }
            } else {
                seen.insert(key, val);
            }
        }
        true
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?} → {:?}", self.rel, self.lhs, self.rhs)
    }
}

/// The attribute closure `X⁺` of `start` under a set of FDs over one
/// relation (Armstrong's algorithm): the largest column set determined by
/// `start`.
pub fn attribute_closure(fds: &[Fd], start: &[usize]) -> std::collections::BTreeSet<usize> {
    let mut closure: std::collections::BTreeSet<usize> = start.iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.iter().all(|c| closure.contains(c)) {
                for &c in &fd.rhs {
                    changed |= closure.insert(c);
                }
            }
        }
    }
    closure
}

/// Whether `fds` logically imply `target` (same relation), by the
/// attribute-closure test.
pub fn fd_implies(fds: &[Fd], target: &Fd) -> bool {
    let closure = attribute_closure(
        &fds.iter()
            .filter(|f| f.rel == target.rel)
            .cloned()
            .collect::<Vec<_>>(),
        &target.lhs,
    );
    target.rhs.iter().all(|c| closure.contains(c))
}

/// A join dependency `R : *[X_1, …, X_k]` over column-index components.
///
/// Satisfied when `R = π_{X_1}(R) ⋈ … ⋈ π_{X_k}(R)` (joining on shared
/// columns).  With `k = 2` this is a multivalued dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Jd {
    /// Relation name.
    pub rel: String,
    /// The components, each a set of column indices (sorted).
    pub components: Vec<Vec<usize>>,
}

impl Jd {
    /// `R : *[components]`.
    ///
    /// # Panics
    /// Panics if fewer than two components are given or a component is empty.
    pub fn new<S: Into<String>>(rel: S, components: Vec<Vec<usize>>) -> Jd {
        assert!(
            components.len() >= 2,
            "join dependency needs ≥ 2 components"
        );
        assert!(
            components.iter().all(|c| !c.is_empty()),
            "empty join-dependency component"
        );
        let mut components = components;
        for c in &mut components {
            c.sort_unstable();
            c.dedup();
        }
        Jd {
            rel: rel.into(),
            components,
        }
    }

    /// Reconstruct the relation from its projections: the join
    /// `π_{X_1}(r) ⋈ … ⋈ π_{X_k}(r)`, expressed back in `r`'s column order.
    ///
    /// Columns not covered by any component are not supported (the paper
    /// never uses partial JDs on uncovered columns).
    ///
    /// # Panics
    /// Panics if the components do not jointly cover all columns.
    pub fn reconstruct(&self, r: &Relation) -> Relation {
        let arity = r.arity();
        let covered: std::collections::BTreeSet<usize> =
            self.components.iter().flatten().copied().collect();
        assert_eq!(
            covered.len(),
            arity,
            "join dependency components must cover all columns"
        );

        // Accumulate a working relation whose columns correspond to
        // `positions` (base column indices, in accumulation order).
        let mut positions: Vec<usize> = self.components[0].clone();
        let mut acc = r.project(&positions);
        for comp in &self.components[1..] {
            let proj = r.project(comp);
            // Join on base columns shared between `positions` and `comp`.
            let on: Vec<(usize, usize)> = positions
                .iter()
                .enumerate()
                .filter_map(|(ai, &base)| comp.iter().position(|&b| b == base).map(|bi| (ai, bi)))
                .collect();
            acc = acc.join(&proj, &on);
            // `join` keeps left columns then right non-key columns in order.
            let keyed: Vec<usize> = on.iter().map(|&(_, bi)| bi).collect();
            for (bi, &base) in comp.iter().enumerate() {
                if !keyed.contains(&bi) {
                    positions.push(base);
                }
            }
        }
        // Reorder accumulated columns back to base order 0..arity.
        let perm: Vec<usize> = (0..arity)
            .map(|base| {
                positions
                    .iter()
                    .position(|&p| p == base)
                    .expect("covered column missing from accumulation")
            })
            .collect();
        acc.project(&perm)
    }

    /// Whether the instance satisfies the JD.
    pub fn satisfied(&self, inst: &Instance) -> bool {
        let r = inst.rel(&self.rel);
        self.reconstruct(r) == *r
    }
}

impl fmt::Display for Jd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: *{:?}", self.rel, self.components)
    }
}

/// An inclusion dependency `R[X] ⊆ S[Y]` over column indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ind {
    /// Source relation.
    pub from_rel: String,
    /// Source columns.
    pub from_cols: Vec<usize>,
    /// Target relation.
    pub to_rel: String,
    /// Target columns.
    pub to_cols: Vec<usize>,
}

impl Ind {
    /// `from_rel[from_cols] ⊆ to_rel[to_cols]`.
    ///
    /// # Panics
    /// Panics if the column lists have different lengths.
    pub fn new<S: Into<String>, T: Into<String>>(
        from_rel: S,
        from_cols: Vec<usize>,
        to_rel: T,
        to_cols: Vec<usize>,
    ) -> Ind {
        assert_eq!(
            from_cols.len(),
            to_cols.len(),
            "inclusion dependency column lists must have equal length"
        );
        Ind {
            from_rel: from_rel.into(),
            from_cols,
            to_rel: to_rel.into(),
            to_cols,
        }
    }

    /// Whether the instance satisfies the IND.
    pub fn satisfied(&self, inst: &Instance) -> bool {
        let from = inst.rel(&self.from_rel).project(&self.from_cols);
        let to = inst.rel(&self.to_rel).project(&self.to_cols);
        from.is_subset(&to)
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:?} ⊆ {}{:?}",
            self.from_rel, self.from_cols, self.to_rel, self.to_cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compview_relation::{rel, Instance};

    #[test]
    fn fd_detects_violation() {
        let ok = Instance::new().with("R", rel(2, [["a", "x"], ["b", "y"]]));
        let bad = Instance::new().with("R", rel(2, [["a", "x"], ["a", "y"]]));
        let fd = Fd::new("R", vec![0], vec![1]);
        assert!(fd.satisfied(&ok));
        assert!(!fd.satisfied(&bad));
    }

    #[test]
    fn fd_with_composite_lhs() {
        let inst = Instance::new().with(
            "R",
            rel(3, [["a", "x", "1"], ["a", "y", "2"], ["a", "x", "1"]]),
        );
        assert!(Fd::new("R", vec![0, 1], vec![2]).satisfied(&inst));
        let bad = Instance::new().with("R", rel(3, [["a", "x", "1"], ["a", "x", "2"]]));
        assert!(!Fd::new("R", vec![0, 1], vec![2]).satisfied(&bad));
    }

    #[test]
    fn armstrong_closure_and_implication() {
        // R[A,B,C,D]: A→B, B→C.
        let fds = vec![
            Fd::new("R", vec![0], vec![1]),
            Fd::new("R", vec![1], vec![2]),
        ];
        let closure = attribute_closure(&fds, &[0]);
        assert_eq!(closure.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // Transitivity: A→C follows.
        assert!(fd_implies(&fds, &Fd::new("R", vec![0], vec![2])));
        // Augmentation: AD→CD follows.
        assert!(fd_implies(&fds, &Fd::new("R", vec![0, 3], vec![2, 3])));
        // But A→D does not.
        assert!(!fd_implies(&fds, &Fd::new("R", vec![0], vec![3])));
        // Reflexivity: AB→A.
        assert!(fd_implies(&[], &Fd::new("R", vec![0, 1], vec![0])));
        // FDs on other relations are ignored.
        let other = vec![Fd::new("S", vec![0], vec![3])];
        assert!(!fd_implies(&other, &Fd::new("R", vec![0], vec![3])));
    }

    #[test]
    fn implication_is_sound_for_satisfaction() {
        // Any instance satisfying A→B and B→C satisfies the implied A→C.
        let fds = vec![
            Fd::new("R", vec![0], vec![1]),
            Fd::new("R", vec![1], vec![2]),
        ];
        let implied = Fd::new("R", vec![0], vec![2]);
        let inst = Instance::new().with(
            "R",
            rel(
                3,
                [["a1", "b1", "c1"], ["a2", "b1", "c1"], ["a3", "b2", "c2"]],
            ),
        );
        assert!(fds.iter().all(|f| f.satisfied(&inst)));
        assert!(fd_implies(&fds, &implied));
        assert!(implied.satisfied(&inst));
    }

    #[test]
    fn jd_of_example_1_1_1_view() {
        // The image of the join view must satisfy *[SP, PJ] — here columns
        // S=0, P=1, J=2, so *[{0,1},{1,2}].
        let jd = Jd::new("R_SPJ", vec![vec![0, 1], vec![1, 2]]);
        let good = Instance::new().with(
            "R_SPJ",
            rel(
                3,
                [["s1", "p1", "j1"], ["s1", "p1", "j2"], ["s2", "p3", "j1"]],
            ),
        );
        assert!(jd.satisfied(&good));
        // Instance (a) of Example 1.1.1 — (s3,p3,j3) inserted alone — is
        // NOT in the image: *[SP,PJ] forces (s3,p3,j1) and (s2,p3,j3).
        let bad = Instance::new().with(
            "R_SPJ",
            rel(
                3,
                [
                    ["s1", "p1", "j1"],
                    ["s1", "p1", "j2"],
                    ["s2", "p3", "j1"],
                    ["s3", "p3", "j3"],
                ],
            ),
        );
        assert!(!jd.satisfied(&bad));
    }

    #[test]
    fn jd_reconstruction_adds_exactly_the_forced_tuples() {
        let jd = Jd::new("R", vec![vec![0, 1], vec![1, 2]]);
        let r = rel(3, [["s2", "p3", "j1"], ["s3", "p3", "j3"]]);
        let recon = jd.reconstruct(&r);
        assert_eq!(
            recon,
            rel(
                3,
                [
                    ["s2", "p3", "j1"],
                    ["s2", "p3", "j3"],
                    ["s3", "p3", "j1"],
                    ["s3", "p3", "j3"],
                ]
            )
        );
    }

    #[test]
    fn three_way_jd() {
        // *[AB, BC, CD] on a chain: a-b-c-d decomposes losslessly when built
        // from a single tuple.
        let jd = Jd::new("R", vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let single = Instance::new().with("R", rel(4, [["a", "b", "c", "d"]]));
        assert!(jd.satisfied(&single));
        // Two tuples sharing the middle create cross products.
        let two = Instance::new().with("R", rel(4, [["a", "b", "c", "d"], ["x", "b", "c", "y"]]));
        assert!(!two.rel("R").is_empty());
        assert!(!jd.satisfied(&two)); // (a,b,c,y) forced but absent
    }

    #[test]
    fn ind_satisfaction() {
        let inst = Instance::new()
            .with("E", rel(2, [["e1", "d1"], ["e2", "d2"]]))
            .with("D", rel(1, [["d1"], ["d2"], ["d3"]]));
        assert!(Ind::new("E", vec![1], "D", vec![0]).satisfied(&inst));
        assert!(!Ind::new("D", vec![0], "E", vec![1]).satisfied(&inst));
    }

    #[test]
    #[should_panic(expected = "≥ 2 components")]
    fn jd_needs_two_components() {
        Jd::new("R", vec![vec![0, 1]]);
    }

    #[test]
    fn jd_components_are_normalised() {
        let jd = Jd::new("R", vec![vec![1, 0, 1], vec![1, 2]]);
        assert_eq!(jd.components[0], vec![0, 1]);
    }
}
