//! Null-augmented *path schemas*: the decomposition framework of
//! Examples 2.1.1 / 2.3.4 generalised to any chain join dependency.
//!
//! A [`PathSchema`] over attributes `A_1 … A_k` has a single relation
//! constrained by the join dependency `*[A_1A_2, A_2A_3, …, A_{k-1}A_k]`
//! made **exact** through null values:
//!
//! * every tuple's support (non-null columns) is a contiguous interval of
//!   length ≥ 2 (the legal "objects"; Ex 3.2.4 outlaws `(a,η,d)`,
//!   `(a,η,η)`, `(η,η,η)`);
//! * **subsumption**: a tuple with support `[i,j]`, `j > i+1`, forces its
//!   two maximal sub-objects with supports `[i,j-1]` and `[i+1,j]`;
//! * **join-completion**: tuples with supports `[i,m]` and `[m,j]` agreeing
//!   on column `m` force the combined tuple with support `[i,j]` (the
//!   embedded and full join dependencies of Ex 2.1.1).
//!
//! Closure under these rules is the least-legal-instance operator used by
//! least preimages (`γ#`) and by constant-complement translation in
//! `compview-core`.  Two implementations are provided: the generic chase
//! over the generated TGDs, and a specialised worklist closure that indexes
//! objects by their endpoints; they are cross-validated in tests and raced
//! in the `chase` benchmark.

use crate::constraint::Constraint;
use crate::rule::{Atom, Term, Tgd};
use crate::schema::Schema;
use compview_relation::{Instance, RelDecl, Relation, Signature, Tuple, Value};
use std::collections::HashMap;

/// A null-augmented chain-join schema (Example 2.1.1 generalised).
///
/// # Examples
///
/// ```
/// use compview_logic::PathSchema;
/// use compview_relation::{v, Relation};
///
/// let ps = PathSchema::new("R", ["A", "B", "C"]);
/// // Two segment objects chaining through b1 …
/// let gens = Relation::from_tuples(3, [
///     ps.object(0, &[v("a1"), v("b1")]),
///     ps.object(1, &[v("b1"), v("c1")]),
/// ]);
/// // … close under subsumption + join-completion: the full object appears.
/// let closed = ps.close(&gens);
/// assert!(closed.contains(&ps.object(0, &[v("a1"), v("b1"), v("c1")])));
/// assert!(ps.is_closed(&closed));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSchema {
    rel: String,
    attrs: Vec<String>,
}

impl PathSchema {
    /// Build the path schema `rel[attrs]` with the chain join dependency.
    ///
    /// # Panics
    /// Panics if fewer than two attributes are given.
    pub fn new<S, I, A>(rel: S, attrs: I) -> PathSchema
    where
        S: Into<String>,
        I: IntoIterator<Item = A>,
        A: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        assert!(
            attrs.len() >= 2,
            "path schema needs at least two attributes"
        );
        PathSchema {
            rel: rel.into(),
            attrs,
        }
    }

    /// The canonical four-attribute schema of Example 2.1.1:
    /// `R[A,B,C,D]` with `*[AB,BC,CD]`.
    pub fn example_2_1_1() -> PathSchema {
        PathSchema::new("R", ["A", "B", "C", "D"])
    }

    /// Relation name.
    pub fn rel_name(&self) -> &str {
        &self.rel
    }

    /// Attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of columns `k`.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of segments (`k - 1`): the atoms of the component algebra.
    pub fn n_segments(&self) -> usize {
        self.attrs.len() - 1
    }

    /// `Rel(D)`.
    pub fn signature(&self) -> Signature {
        Signature::new([RelDecl::new(self.rel.clone(), self.attrs.clone())])
    }

    /// The full schema: shape constraint plus all subsumption and
    /// join-completion TGDs.
    pub fn schema(&self) -> Schema {
        let mut constraints = vec![Constraint::ContiguousSupport {
            rel: self.rel.clone(),
            min_len: 2,
        }];
        for tgd in self.closure_tgds() {
            constraints.push(Constraint::Tgd(tgd));
        }
        Schema::new(self.signature(), constraints)
    }

    /// All closure TGDs (subsumption + join-completion).
    pub fn closure_tgds(&self) -> Vec<Tgd> {
        let mut rules = self.subsumption_tgds();
        rules.extend(self.composition_tgds());
        rules
    }

    /// Subsumption rules: support `[i,j]` (length ≥ 3) forces `[i,j-1]`
    /// and `[i+1,j]`.
    pub fn subsumption_tgds(&self) -> Vec<Tgd> {
        let k = self.arity();
        let mut rules = Vec::new();
        for i in 0..k {
            for j in (i + 2)..k {
                let body = vec![self.pattern_atom(i, j)];
                let head = vec![self.pattern_atom(i, j - 1), self.pattern_atom(i + 1, j)];
                rules.push(
                    Tgd::new(format!("subsume[{i},{j}]"), body, head)
                        .with_nonnull((i as u32..=j as u32).collect()),
                );
            }
        }
        rules
    }

    /// Join-completion rules: supports `[i,m]` and `[m,j]` agreeing on
    /// column `m` force `[i,j]`.
    pub fn composition_tgds(&self) -> Vec<Tgd> {
        let k = self.arity();
        let mut rules = Vec::new();
        for i in 0..k {
            for m in (i + 1)..k {
                for j in (m + 1)..k {
                    let body = vec![self.pattern_atom(i, m), self.pattern_atom(m, j)];
                    let head = vec![self.pattern_atom(i, j)];
                    rules.push(
                        Tgd::new(format!("compose[{i},{m},{j}]"), body, head)
                            .with_nonnull((i as u32..=j as u32).collect()),
                    );
                }
            }
        }
        rules
    }

    /// Atom whose argument at column `c` is variable `c` when `i ≤ c ≤ j`
    /// and the constant `η` otherwise.
    fn pattern_atom(&self, i: usize, j: usize) -> Atom {
        let args: Vec<Term> = (0..self.arity())
            .map(|c| {
                if c >= i && c <= j {
                    Term::Var(c as u32)
                } else {
                    Term::Const(Value::Null)
                }
            })
            .collect();
        Atom::new(self.rel.clone(), args)
    }

    /// The support interval `[i,j]` of a tuple, or `None` if the tuple is
    /// not a legal object (non-contiguous or too short).
    pub fn interval(&self, t: &Tuple) -> Option<(usize, usize)> {
        let sup = t.support();
        if sup.len() < 2 || !sup.windows(2).all(|w| w[1] == w[0] + 1) {
            return None;
        }
        Some((sup[0], *sup.last().expect("nonempty")))
    }

    /// Build the object tuple with values `vals` occupying columns
    /// `start .. start + vals.len()` and `η` elsewhere.
    ///
    /// # Panics
    /// Panics if the values overflow the arity or fewer than two are given.
    pub fn object(&self, start: usize, vals: &[Value]) -> Tuple {
        assert!(vals.len() >= 2, "objects span at least two columns");
        assert!(
            start + vals.len() <= self.arity(),
            "object overflows path schema arity"
        );
        Tuple::new((0..self.arity()).map(|c| {
            if c >= start && c < start + vals.len() {
                vals[c - start]
            } else {
                Value::Null
            }
        }))
    }

    /// Specialised closure: the least relation containing `r` closed under
    /// subsumption and join-completion.
    ///
    /// Worklist algorithm with **dense** endpoint indexes: endpoint values
    /// are interned to small ids per call, and the objects starting
    /// (ending) at column `c` with value id `vid` live in the flat bucket
    /// `vid * k + c` — one hash per endpoint instead of one per candidate
    /// lookup, and buckets hold arena ids instead of tuple clones.  An
    /// object ending at column `m` with value `v` composes exactly with
    /// objects starting at `(m, v)`.
    ///
    /// # Panics
    /// Panics if `r` contains an illegal (non-contiguous / too-short) tuple.
    pub fn close(&self, r: &Relation) -> Relation {
        let k = self.arity();
        let mut out = Relation::empty(k);
        let mut index = EndpointIndex::new(k);
        // Every object ever enqueued, addressed by the ids the buckets hold.
        let mut arena: Vec<Tuple> = Vec::new();
        let mut work: Vec<u32> = Vec::new();

        for t in r.iter() {
            assert!(
                self.interval(t).is_some(),
                "illegal object {t} in path-schema relation"
            );
            if out.insert(t.clone()) {
                work.push(arena.len() as u32);
                arena.push(t.clone());
            }
        }

        let mut fresh: Vec<Tuple> = Vec::new();
        while let Some(id) = work.pop() {
            let (i, j) = self
                .interval(&arena[id as usize])
                .expect("already validated");
            let (svid, evid) = {
                let t = &arena[id as usize];
                (index.vid(t[i]), index.vid(t[j]))
            };
            {
                let t = &arena[id as usize];
                // Subsumption.
                if j - i >= 2 {
                    fresh.push(self.shrink(t, i, j - 1));
                    fresh.push(self.shrink(t, i + 1, j));
                }
                // Composition with previously indexed objects: `t` ends at
                // `(j, t[j])`, so its right partners start there; and starts
                // at `(i, t[i])`, where its left partners end.
                for &rid in &index.starters[evid * k + j] {
                    fresh.push(self.combine(t, &arena[rid as usize]));
                }
                for &lid in &index.enders[svid * k + i] {
                    fresh.push(self.combine(&arena[lid as usize], t));
                }
            }
            for c in fresh.drain(..) {
                if out.insert(c.clone()) {
                    work.push(arena.len() as u32);
                    arena.push(c);
                }
            }
            index.starters[svid * k + i].push(id);
            index.enders[evid * k + j].push(id);
        }
        out
    }

    /// Restrict object `t` (support `⊇ [i,j]`) to support `[i,j]`.
    fn shrink(&self, t: &Tuple, i: usize, j: usize) -> Tuple {
        Tuple::new((0..self.arity()).map(|c| if c >= i && c <= j { t[c] } else { Value::Null }))
    }

    /// Combine left object (support `[i,m]`) with right object (support
    /// `[m,j]`, agreeing at `m`) into the object with support `[i,j]`.
    fn combine(&self, left: &Tuple, right: &Tuple) -> Tuple {
        Tuple::new((0..self.arity()).map(|c| if left[c].is_null() { right[c] } else { left[c] }))
    }

    /// Whether `r` is already closed.
    pub fn is_closed(&self, r: &Relation) -> bool {
        self.close(r) == *r
    }

    /// Whether `inst` is a legal database of this schema (shape + closure).
    pub fn is_legal(&self, inst: &Instance) -> bool {
        let r = inst.rel(&self.rel);
        r.iter().all(|t| self.interval(t).is_some()) && self.is_closed(r)
    }

    /// Wrap a closed relation into an instance.
    pub fn instance(&self, r: Relation) -> Instance {
        Instance::null_model(&self.signature()).with(self.rel.clone(), r)
    }

    /// The 11-tuple instance printed in Example 2.1.1, as generator objects
    /// before closure.  Closing them regenerates the paper's table exactly
    /// (asserted in tests and in experiment E8).
    pub fn example_2_1_1_generators() -> Relation {
        use compview_relation::v;
        let ps = PathSchema::example_2_1_1();
        Relation::from_tuples(
            4,
            [
                ps.object(0, &[v("a1"), v("b1"), v("c1"), v("d1")]),
                ps.object(0, &[v("a2"), v("b2")]),
                ps.object(0, &[v("a2"), v("b3"), v("c3")]),
                ps.object(2, &[v("c4"), v("d4")]),
            ],
        )
    }
}

/// The dense endpoint indexes of [`PathSchema::close`]: a per-call value
/// interner plus flat `vid * k + col` buckets of arena ids.
struct EndpointIndex {
    ids: HashMap<Value, u32>,
    starters: Vec<Vec<u32>>,
    enders: Vec<Vec<u32>>,
    k: usize,
}

impl EndpointIndex {
    fn new(k: usize) -> EndpointIndex {
        EndpointIndex {
            ids: HashMap::new(),
            starters: Vec::new(),
            enders: Vec::new(),
            k,
        }
    }

    /// Intern `v`, growing both bucket tables by one row of `k` columns
    /// when the value is new.
    fn vid(&mut self, v: Value) -> usize {
        let next = self.ids.len() as u32;
        let vid = *self.ids.entry(v).or_insert(next);
        if vid == next {
            self.starters
                .resize_with(self.starters.len() + self.k, Vec::new);
            self.enders
                .resize_with(self.enders.len() + self.k, Vec::new);
        }
        vid as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase, ChaseConfig};
    use compview_relation::v;

    fn ps() -> PathSchema {
        PathSchema::example_2_1_1()
    }

    #[test]
    fn rule_counts() {
        let p = ps();
        // Subsumption: intervals of length ≥3 over 4 cols: [0,2],[1,3],[0,3] → 3.
        assert_eq!(p.subsumption_tgds().len(), 3);
        // Composition: (i,m,j) with 0≤i<m<j≤3 → C(4,3) = 4.
        assert_eq!(p.composition_tgds().len(), 4);
    }

    #[test]
    fn closure_regenerates_example_2_1_1_table() {
        let p = ps();
        let closed = p.close(&PathSchema::example_2_1_1_generators());
        // The paper's table has exactly 11 tuples.
        assert_eq!(closed.len(), 11);
        let expect = |start: usize, vals: &[&str]| {
            let vals: Vec<Value> = vals.iter().map(|s| v(s)).collect();
            p.object(start, &vals)
        };
        for t in [
            expect(0, &["a1", "b1", "c1", "d1"]),
            expect(0, &["a1", "b1", "c1"]),
            expect(0, &["a1", "b1"]),
            expect(1, &["b1", "c1", "d1"]),
            expect(2, &["c1", "d1"]),
            expect(1, &["b1", "c1"]),
            expect(0, &["a2", "b2"]),
            expect(0, &["a2", "b3", "c3"]),
            expect(0, &["a2", "b3"]),
            expect(1, &["b3", "c3"]),
            expect(2, &["c4", "d4"]),
        ] {
            assert!(closed.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn closure_matches_chase() {
        let p = ps();
        let gens = PathSchema::example_2_1_1_generators();
        let fast = p.close(&gens);
        let inst = p.instance(gens);
        let chased = chase(&inst, &p.closure_tgds(), &[], &ChaseConfig::default()).unwrap();
        assert_eq!(chased.rel("R"), &fast);
    }

    #[test]
    fn join_completion_fires_across_separate_objects() {
        // (a,b,η,η) + (η,b,c,η) + (η,η,c,d) → (a,b,c,d) (the JD of Ex 2.1.1).
        let p = ps();
        let gens = Relation::from_tuples(
            4,
            [
                p.object(0, &[v("a"), v("b")]),
                p.object(1, &[v("b"), v("c")]),
                p.object(2, &[v("c"), v("d")]),
            ],
        );
        let closed = p.close(&gens);
        assert!(closed.contains(&p.object(0, &[v("a"), v("b"), v("c"), v("d")])));
        assert!(closed.contains(&p.object(0, &[v("a"), v("b"), v("c")])));
        assert!(closed.contains(&p.object(1, &[v("b"), v("c"), v("d")])));
        assert_eq!(closed.len(), 6);
    }

    #[test]
    fn no_completion_without_shared_value() {
        let p = ps();
        let gens = Relation::from_tuples(
            4,
            [
                p.object(0, &[v("a"), v("b1")]),
                p.object(1, &[v("b2"), v("c")]),
            ],
        );
        let closed = p.close(&gens);
        assert_eq!(closed.len(), 2);
    }

    #[test]
    fn closure_is_idempotent_and_monotone() {
        let p = ps();
        let gens = PathSchema::example_2_1_1_generators();
        let once = p.close(&gens);
        assert_eq!(p.close(&once), once);
        assert!(p.is_closed(&once));
        // Monotonicity: closing a superset yields a superset.
        let mut more = gens.clone();
        more.insert(p.object(0, &[v("a9"), v("b9")]));
        let closed_more = p.close(&more);
        assert!(once.is_subset(&closed_more));
    }

    #[test]
    fn schema_object_legality() {
        let p = ps();
        let schema = p.schema();
        assert!(schema.has_null_model_property());
        let legal = p.instance(p.close(&PathSchema::example_2_1_1_generators()));
        assert!(schema.is_legal(&legal));
        assert!(p.is_legal(&legal));
        // Unclosed instance is illegal.
        let unclosed = p.instance(Relation::from_tuples(
            4,
            [p.object(0, &[v("a"), v("b"), v("c")])],
        ));
        assert!(!schema.is_legal(&unclosed));
        assert!(!p.is_legal(&unclosed));
    }

    #[test]
    #[should_panic(expected = "illegal object")]
    fn close_rejects_gap_tuples() {
        let p = ps();
        let bad =
            Relation::from_tuples(4, [Tuple::new([v("a"), Value::Null, v("c"), Value::Null])]);
        p.close(&bad);
    }

    #[test]
    fn longer_paths() {
        let p = PathSchema::new("R", ["A", "B", "C", "D", "E"]);
        assert_eq!(p.n_segments(), 4);
        let gens = Relation::from_tuples(
            5,
            [
                p.object(0, &[v("1"), v("2")]),
                p.object(1, &[v("2"), v("3")]),
                p.object(2, &[v("3"), v("4")]),
                p.object(3, &[v("4"), v("5")]),
            ],
        );
        let closed = p.close(&gens);
        // All intervals [i,j] over 5 columns: C(5,2) = 10 objects.
        assert_eq!(closed.len(), 10);
        assert!(closed.contains(&p.object(0, &[v("1"), v("2"), v("3"), v("4"), v("5")])));
        // Cross-check against the chase.
        let chased = chase(
            &p.instance(gens),
            &p.closure_tgds(),
            &[],
            &ChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(chased.rel("R"), &closed);
    }

    #[test]
    fn object_constructor_pads_with_nulls() {
        let p = ps();
        let t = p.object(1, &[v("b"), v("c")]);
        assert_eq!(t, Tuple::new([Value::Null, v("b"), v("c"), Value::Null]));
        assert_eq!(p.interval(&t), Some((1, 2)));
    }
}
