//! Full schemata `D = (Rel(D), Con(D))` over a type algebra `Ω` (§2.1), and
//! exhaustive enumeration of `LDB(D, μ)` over finite tuple pools.
//!
//! Enumeration is what lets this reproduction *decide* the paper's theorems
//! on concrete spaces: `LDB(D, μ)` becomes an explicit finite ↓-poset on
//! which strong views, complements, and admissibility are all checkable
//! (see `compview-core`).

use crate::constraint::Constraint;
use crate::typealg::{TypeAlgebra, TypeAssignment};
use compview_relation::{Instance, Relation, Signature, Tuple};
use std::collections::BTreeMap;

/// Tuning knobs for [`Schema::enumerate_ldb_with`].
#[derive(Clone, Debug)]
pub struct EnumerationConfig {
    /// Hard cap on raw pool bits (the unpruned space is `2^bits`); the
    /// enumerator panics beyond it to guard against accidental explosion.
    pub max_bits: usize,
    /// Worker threads for the cross-product assembly.  The output is
    /// byte-identical for every value (shards concatenate in order).
    pub threads: usize,
}

impl Default for EnumerationConfig {
    fn default() -> EnumerationConfig {
        EnumerationConfig {
            max_bits: 28,
            threads: compview_parallel::num_threads(),
        }
    }
}

/// One legal submask of a relation's tuple pool, materialised: the submask
/// itself (bit *p* of the pool) plus the `Relation` it packs to.
///
/// These are the atoms of incremental maintenance: `compview-core`'s
/// `StateSpace` keeps the per-relation block lists (and which block each
/// state uses) so a pool edit can patch the enumeration instead of redoing
/// it.  Because pools are duplicate-free in every enumerated space, submask
/// inclusion coincides with relation inclusion, which turns the state
/// order's `is_subinstance` tests into word operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LegalBlock {
    /// Pool submask (bit `p` ⇔ `pool[p]` is in the block).
    pub submask: u64,
    /// The block packed as a relation value.
    pub rel: Relation,
}

/// The output of [`Schema::enumerate_ldb_detailed`]: the states of
/// `LDB(D, μ)` plus the per-relation legal-block lists and, for each state,
/// the combo index that identifies which block it draws from each relation.
#[derive(Clone, Debug)]
pub struct LdbDetail {
    /// The legal states, in enumeration order.
    pub states: Vec<Instance>,
    /// Per declared relation (signature order), the legal blocks in
    /// ascending submask order.
    pub blocks: Vec<Vec<LegalBlock>>,
    /// For each state, its cross-product combo index: with the first
    /// declared relation fastest-varying, `combo = i_0 + |B_0|·(i_1 + …)`
    /// where `i_r` indexes `blocks[r]`.
    pub state_combos: Vec<usize>,
}

/// Depth-first enumerator of the legal submasks of one relation block.
///
/// Visits subsets of `pool` in ascending submask order (bit *p* of the
/// submask selects `pool[p]`, matching the flat-mask layout documented on
/// [`Schema::enumerate_ldb`]) and prunes a whole subtree as soon as the
/// partial set violates a violation-monotone constraint local to this
/// relation.  Constraints local to the block but not violation-monotone
/// (e.g. a JD) are checked once per completed subset.
struct BlockEnum<'a> {
    name: &'a str,
    pool: &'a [Tuple],
    prune: &'a [&'a Constraint],
    complete: &'a [&'a Constraint],
    mu: &'a TypeAssignment,
    scratch: Instance,
    /// Bits of `pool` taken on the current DFS path, plus any seed bits
    /// (see [`Schema::legal_blocks_seeded`]).
    submask: u64,
    out: Vec<LegalBlock>,
}

impl BlockEnum<'_> {
    fn run(mut self) -> Vec<LegalBlock> {
        self.descend(self.pool.len());
        self.out
    }

    /// Branch on bit `level - 1`; `level == 0` is a completed subset.
    /// Zero-branch first and highest bit outermost yields ascending
    /// submask order, so the overall state order matches the sequential
    /// full-mask scan exactly.
    fn descend(&mut self, level: usize) {
        if level == 0 {
            if self
                .complete
                .iter()
                .all(|c| c.satisfied(&self.scratch, self.mu))
            {
                self.out.push(LegalBlock {
                    submask: self.submask,
                    rel: self.scratch.rel(self.name).clone(),
                });
            }
            return;
        }
        self.descend(level - 1);
        let t = &self.pool[level - 1];
        // A duplicate pool tuple contributes no new set; taking its bit
        // revisits the same subsets the zero-branch just produced, which is
        // exactly what the flat-mask scan does, so recurse either way —
        // but only remove on backtrack what this branch actually added.
        let added = self.scratch.rel_mut(self.name).insert(t.clone());
        self.submask |= 1 << (level - 1);
        if self
            .prune
            .iter()
            .all(|c| c.satisfied(&self.scratch, self.mu))
        {
            self.descend(level - 1);
        }
        self.submask &= !(1 << (level - 1));
        if added {
            self.scratch.rel_mut(self.name).remove(t);
        }
    }
}

/// A relational database schema: signature, constraints, and (optionally)
/// typing information.
#[derive(Clone, Debug)]
pub struct Schema {
    sig: Signature,
    constraints: Vec<Constraint>,
    algebra: Option<TypeAlgebra>,
    assignment: TypeAssignment,
}

impl Schema {
    /// A schema with no constraints ("no constraints whatever",
    /// Examples 1.1.1 and 1.3.6).
    pub fn unconstrained(sig: Signature) -> Schema {
        Schema {
            sig,
            constraints: Vec::new(),
            algebra: None,
            assignment: TypeAssignment::new(),
        }
    }

    /// A schema with constraints.
    pub fn new(sig: Signature, constraints: Vec<Constraint>) -> Schema {
        Schema {
            sig,
            constraints,
            algebra: None,
            assignment: TypeAssignment::new(),
        }
    }

    /// Attach a type algebra and assignment (required by `ColType`
    /// constraints).
    pub fn with_types(mut self, algebra: TypeAlgebra, assignment: TypeAssignment) -> Schema {
        self.algebra = Some(algebra);
        self.assignment = assignment;
        self
    }

    /// Add a constraint.
    pub fn add_constraint(&mut self, c: Constraint) -> &mut Schema {
        self.constraints.push(c);
        self
    }

    /// `Rel(D)`.
    pub fn sig(&self) -> &Signature {
        &self.sig
    }

    /// `Con(D)`.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The type algebra, if attached.
    pub fn algebra(&self) -> Option<&TypeAlgebra> {
        self.algebra.as_ref()
    }

    /// The type assignment `μ`.
    pub fn assignment(&self) -> &TypeAssignment {
        &self.assignment
    }

    /// Whether `inst` is a legal database: conforms to the signature and
    /// satisfies every constraint.
    pub fn is_legal(&self, inst: &Instance) -> bool {
        inst.conforms_to(&self.sig)
            && self
                .constraints
                .iter()
                .all(|c| c.satisfied(inst, &self.assignment))
    }

    /// Whether the schema has the *null model property* (§2.3): the empty
    /// instance is legal.  All of §3's results assume this.
    pub fn has_null_model_property(&self) -> bool {
        self.is_legal(&Instance::null_model(&self.sig))
    }

    /// Compile all compilable constraints to chase rules.
    pub fn rules(&self) -> (Vec<crate::rule::Tgd>, Vec<crate::rule::Egd>) {
        let arities = |name: &str| self.sig.expect_decl(name).arity();
        let mut tgds = Vec::new();
        let mut egds = Vec::new();
        for c in &self.constraints {
            let (t, e) = c.to_rules(&arities);
            tgds.extend(t);
            egds.extend(e);
        }
        (tgds, egds)
    }

    /// Enumerate `LDB(D, μ)` restricted to instances whose relations draw
    /// from the given per-relation tuple `pools`.
    ///
    /// The result is every subset-combination of pool tuples that satisfies
    /// the constraints, in deterministic order.  This *is* `LDB(D, μ)` when
    /// the pools contain all well-typed tuples over the active domain of μ.
    ///
    /// Conceptually the order is that of a flat subset-mask scan: the first
    /// declared relation's pool occupies the low bits, and masks ascend.
    /// The implementation never walks all `2^bits` masks, though — see
    /// [`Schema::enumerate_ldb_with`].
    ///
    /// # Panics
    /// Panics if the raw pool bit count exceeds
    /// `EnumerationConfig::default().max_bits` (guards against accidental
    /// explosion) or a pool is missing for a declared relation.
    pub fn enumerate_ldb(&self, pools: &BTreeMap<String, Vec<Tuple>>) -> Vec<Instance> {
        self.enumerate_ldb_with(pools, &EnumerationConfig::default())
    }

    /// [`Schema::enumerate_ldb`] with explicit limits and thread count.
    ///
    /// Three optimisations over the naive `for mask in 0..2^bits` scan, all
    /// order-preserving so the output is byte-identical to it:
    ///
    /// 1. **Per-block pruning**: each relation's legal submasks are
    ///    enumerated first, checking only the constraints local to that
    ///    relation, with violation-monotone constraints (FDs, EGDs, typing)
    ///    cutting whole subtrees of the subset lattice.  Constraint-dense
    ///    schemas thus skip almost all of the `2^bits` space.
    /// 2. **Cached blocks**: surviving submasks are materialised once as
    ///    `Relation` values and cloned into instances, instead of re-packing
    ///    tuple-by-tuple per mask.
    /// 3. **Sharded assembly**: the cross product of legal blocks is split
    ///    across `config.threads` workers; shard outputs concatenate in
    ///    index order, so the result does not depend on the thread count.
    pub fn enumerate_ldb_with(
        &self,
        pools: &BTreeMap<String, Vec<Tuple>>,
        config: &EnumerationConfig,
    ) -> Vec<Instance> {
        self.enumerate_ldb_detailed(pools, config).states
    }

    /// [`Schema::enumerate_ldb_with`], keeping the intermediate structure:
    /// the per-relation legal-block lists and each state's combo index.
    /// `.states` is byte-identical to [`Schema::enumerate_ldb_with`].
    ///
    /// The detail is what incremental state-space maintenance needs: a pool
    /// edit only changes one relation's block list, so the edited state list
    /// can be produced by splicing per-block rather than re-enumerating.
    pub fn enumerate_ldb_detailed(
        &self,
        pools: &BTreeMap<String, Vec<Tuple>>,
        config: &EnumerationConfig,
    ) -> LdbDetail {
        self.enumerate_ldb_observed(pools, config, &crate::obs::EnumObs::noop())
    }

    /// [`Schema::enumerate_ldb_detailed`] with instrumentation: tallies
    /// runs and produced states, records per-shard and whole-run wall
    /// times, and emits an `"enum"` span carrying the combo count when
    /// the bundle's tracer is enabled.  The output is byte-identical to
    /// the unobserved call — per-shard timing happens inside each
    /// worker's closure and never affects the shard-ordered
    /// concatenation.
    pub fn enumerate_ldb_observed(
        &self,
        pools: &BTreeMap<String, Vec<Tuple>>,
        config: &EnumerationConfig,
        obs: &crate::obs::EnumObs,
    ) -> LdbDetail {
        let run_timer = obs.run_ns.start();
        let decls = self.sig.decls();
        let mut total_bits = 0usize;
        for d in decls {
            let pool = pools
                .get(d.name())
                .unwrap_or_else(|| panic!("no tuple pool for relation {:?}", d.name()));
            total_bits += pool.len();
        }
        assert!(
            total_bits <= config.max_bits,
            "state space 2^{total_bits} too large to enumerate (max_bits = {})",
            config.max_bits
        );

        let global = self.global_constraints();

        // Legal submasks per relation block, in ascending submask order.
        let blocks: Vec<Vec<LegalBlock>> = decls
            .iter()
            .map(|d| self.legal_blocks(d.name(), &pools[d.name()]))
            .collect();

        // Cross product of legal blocks, first relation fastest-varying:
        // ascending combo index ⇔ ascending flat mask restricted to
        // per-block-legal states, so order matches the sequential scan.
        let combos: usize = blocks.iter().map(Vec::len).product();
        if blocks.iter().any(Vec::is_empty) {
            obs.runs.inc();
            obs.run_ns.stop(run_timer);
            return LdbDetail {
                states: Vec::new(),
                blocks,
                state_combos: Vec::new(),
            };
        }
        let _span = obs.tracer.span("enum", combos as u64);
        let picked = compview_parallel::sharded_collect(combos, config.threads, |range| {
            let shard_timer = obs.shard_ns.start();
            let mut out = Vec::new();
            for idx in range {
                let mut rest = idx;
                let mut inst = Instance::null_model(&self.sig);
                for (d, block) in decls.iter().zip(&blocks) {
                    inst.set(d.name(), block[rest % block.len()].rel.clone());
                    rest /= block.len();
                }
                if inst.conforms_to(&self.sig)
                    && global.iter().all(|c| c.satisfied(&inst, &self.assignment))
                {
                    out.push((inst, idx));
                }
            }
            obs.shard_ns.stop(shard_timer);
            out
        });
        let mut states = Vec::with_capacity(picked.len());
        let mut state_combos = Vec::with_capacity(picked.len());
        for (inst, idx) in picked {
            states.push(inst);
            state_combos.push(idx);
        }
        obs.runs.inc();
        obs.states.add(states.len() as u64);
        obs.run_ns.stop(run_timer);
        LdbDetail {
            states,
            blocks,
            state_combos,
        }
    }

    /// Whether `c` only mentions relation `name` (checkable on that block
    /// in isolation).
    fn local_to(c: &Constraint, name: &str) -> bool {
        c.relations().iter().all(|r| *r == name)
    }

    /// The constraints that need an assembled instance: those not local to
    /// any single declared relation.  Enumeration checks exactly these (plus
    /// signature conformance) on each assembled cross-product combo.
    pub fn global_constraints(&self) -> Vec<&Constraint> {
        let decls = self.sig.decls();
        self.constraints
            .iter()
            .filter(|c| !decls.iter().any(|d| Self::local_to(c, d.name())))
            .collect()
    }

    /// The legal blocks of one relation over `pool`, in ascending submask
    /// order — the per-relation factor of [`Schema::enumerate_ldb_detailed`].
    ///
    /// # Panics
    /// Panics if `pool` has 64+ tuples (submasks are packed in a `u64`; the
    /// enumeration guard caps total bits far below this anyway).
    pub fn legal_blocks(&self, name: &str, pool: &[Tuple]) -> Vec<LegalBlock> {
        assert!(pool.len() < 64, "tuple pool too large for u64 submasks");
        let (prune, complete) = self.local_split(name);
        BlockEnum {
            name,
            pool,
            prune: &prune,
            complete: &complete,
            mu: &self.assignment,
            scratch: Instance::null_model(&self.sig),
            submask: 0,
            out: Vec::new(),
        }
        .run()
    }

    /// The legal blocks over `pool ++ [forced]` that *contain* `forced`, in
    /// ascending submask order (bit `pool.len()` — the forced tuple's bit —
    /// is set in every result).
    ///
    /// Appending a tuple `t` to a pool leaves the old blocks legal and
    /// intact (block legality depends only on the tuple set), so the edited
    /// block list is exactly `legal_blocks(name, pool) ++
    /// legal_blocks_seeded(name, pool, t)` — the increment is computed
    /// without revisiting the old subset lattice.  Assumes `forced ∉ pool`
    /// (duplicate-free pools; callers reject duplicates first).
    ///
    /// # Panics
    /// Panics if the grown pool would have 64+ tuples.
    pub fn legal_blocks_seeded(
        &self,
        name: &str,
        pool: &[Tuple],
        forced: &Tuple,
    ) -> Vec<LegalBlock> {
        assert!(pool.len() + 1 < 64, "tuple pool too large for u64 submasks");
        let (prune, complete) = self.local_split(name);
        let mut scratch = Instance::null_model(&self.sig);
        scratch.rel_mut(name).insert(forced.clone());
        // Gate the seed exactly as the unseeded DFS gates taking its bit:
        // if {forced} already violates a violation-monotone local
        // constraint, no superset can be legal.
        if !prune
            .iter()
            .all(|c| c.satisfied(&scratch, &self.assignment))
        {
            return Vec::new();
        }
        BlockEnum {
            name,
            pool,
            prune: &prune,
            complete: &complete,
            mu: &self.assignment,
            scratch,
            submask: 1u64 << pool.len(),
            out: Vec::new(),
        }
        .run()
    }

    /// Constraints local to `name`, split into violation-monotone (safe to
    /// prune DFS subtrees on) and per-leaf checks.
    fn local_split(&self, name: &str) -> (Vec<&Constraint>, Vec<&Constraint>) {
        self.constraints
            .iter()
            .filter(|c| Self::local_to(c, name))
            .partition(|c| c.violation_monotone())
    }

    /// Build the pool of all well-typed tuples for each relation from
    /// per-column candidate value lists.
    pub fn full_pools(
        &self,
        col_values: &dyn Fn(&str, usize) -> Vec<compview_relation::Value>,
    ) -> BTreeMap<String, Vec<Tuple>> {
        let mut pools = BTreeMap::new();
        for d in self.sig.decls() {
            let columns: Vec<Vec<compview_relation::Value>> =
                (0..d.arity()).map(|c| col_values(d.name(), c)).collect();
            let mut tuples = vec![Vec::new()];
            for col in &columns {
                let mut next = Vec::with_capacity(tuples.len() * col.len());
                for partial in &tuples {
                    for &v in col {
                        let mut p = partial.clone();
                        p.push(v);
                        next.push(p);
                    }
                }
                tuples = next;
            }
            pools.insert(
                d.name().to_owned(),
                tuples.into_iter().map(Tuple::new).collect(),
            );
        }
        pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{Fd, Jd};
    use compview_relation::{rel, v, RelDecl};

    fn two_unary() -> Schema {
        // The base schema of Example 1.3.6: R, S unary, no constraints.
        Schema::unconstrained(Signature::new([
            RelDecl::new("R", ["A"]),
            RelDecl::new("S", ["A"]),
        ]))
    }

    #[test]
    fn unconstrained_schema_accepts_everything() {
        let d = two_unary();
        assert!(d.has_null_model_property());
        let inst = Instance::null_model(d.sig())
            .with("R", rel(1, [["a1"]]))
            .with("S", rel(1, [["a1"], ["a2"]]));
        assert!(d.is_legal(&inst));
    }

    #[test]
    fn fd_schema_rejects_violations() {
        let sig = Signature::new([RelDecl::new("R", ["A", "B"])]);
        let d = Schema::new(sig, vec![Constraint::Fd(Fd::new("R", vec![0], vec![1]))]);
        assert!(d.has_null_model_property());
        assert!(d.is_legal(&Instance::null_model(d.sig()).with("R", rel(2, [["a", "x"]]))));
        assert!(
            !d.is_legal(&Instance::null_model(d.sig()).with("R", rel(2, [["a", "x"], ["a", "y"]])))
        );
    }

    #[test]
    fn enumeration_counts_unconstrained_space() {
        let d = two_unary();
        // Pools: R, S each over {a1, a2} → 2^2 subsets each → 16 states.
        let pools: BTreeMap<String, Vec<Tuple>> = [
            (
                "R".to_owned(),
                vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
            ),
            (
                "S".to_owned(),
                vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
            ),
        ]
        .into();
        let ldb = d.enumerate_ldb(&pools);
        assert_eq!(ldb.len(), 16);
        assert!(ldb.iter().any(Instance::is_null_model));
        // Deterministic ordering: re-enumeration is identical.
        assert_eq!(ldb, d.enumerate_ldb(&pools));
    }

    #[test]
    fn enumeration_filters_by_constraints() {
        // Schema of Example 1.2.5: R_SPJ with *[SP, PJ].
        let sig = Signature::new([RelDecl::new("R_SPJ", ["S", "P", "J"])]);
        let d = Schema::new(
            sig,
            vec![Constraint::Jd(Jd::new(
                "R_SPJ",
                vec![vec![0, 1], vec![1, 2]],
            ))],
        );
        let pool: Vec<Tuple> = vec![
            Tuple::new([v("s1"), v("p1"), v("j1")]),
            Tuple::new([v("s1"), v("p1"), v("j2")]),
            Tuple::new([v("s2"), v("p1"), v("j1")]),
            Tuple::new([v("s2"), v("p1"), v("j2")]),
        ];
        let pools: BTreeMap<String, Vec<Tuple>> = [("R_SPJ".to_owned(), pool)].into();
        let ldb = d.enumerate_ldb(&pools);
        // All 4 tuples share P=p1, so legal states are exactly those closed
        // under *[SP,PJ]: the S-set × J-set products: for S⊆{s1,s2},
        // J⊆{j1,j2} nonempty pairs, plus the empty state.
        // Count: (2^2-1)*(2^2-1) products with both nonempty... but states
        // are arbitrary subsets; legal ones are exactly S×J grids.
        // Grids: empty + 3*3 = 10.
        assert_eq!(ldb.len(), 10);
        for s in &ldb {
            assert!(d.is_legal(s));
        }
    }

    #[test]
    fn full_pools_cross_product() {
        let d = two_unary();
        let pools = d.full_pools(&|_, _| vec![v("a1"), v("a2"), v("a3")]);
        assert_eq!(pools["R"].len(), 3);
        assert_eq!(pools["S"].len(), 3);
        let sig2 = Signature::new([RelDecl::new("T", ["A", "B"])]);
        let d2 = Schema::unconstrained(sig2);
        let pools2 = d2.full_pools(&|_, _| vec![v("x"), v("y")]);
        assert_eq!(pools2["T"].len(), 4);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn enumeration_guards_explosion() {
        let d = two_unary();
        let big: Vec<Tuple> = (0..30).map(|i| Tuple::new([v(&format!("a{i}"))])).collect();
        let pools: BTreeMap<String, Vec<Tuple>> =
            [("R".to_owned(), big), ("S".to_owned(), Vec::new())].into();
        d.enumerate_ldb(&pools);
    }

    /// The reference semantics: scan every flat mask, filter by `is_legal`.
    fn reference_scan(d: &Schema, pools: &BTreeMap<String, Vec<Tuple>>) -> Vec<Instance> {
        let decls = d.sig().decls();
        let total_bits: usize = decls.iter().map(|dd| pools[dd.name()].len()).sum();
        let mut out = Vec::new();
        for mask in 0..1usize << total_bits {
            let mut inst = Instance::null_model(d.sig());
            let mut bit = 0usize;
            for dd in decls {
                let mut r = Relation::empty(dd.arity());
                for t in &pools[dd.name()] {
                    if (mask >> bit) & 1 == 1 {
                        r.insert(t.clone());
                    }
                    bit += 1;
                }
                inst.set(dd.name(), r);
            }
            if d.is_legal(&inst) {
                out.push(inst);
            }
        }
        out
    }

    #[test]
    fn pruned_enumeration_matches_reference_scan() {
        // Unconstrained 2-relation schema and a constrained (FD + JD) one,
        // across thread counts: output must be byte-identical to the
        // sequential full-mask scan.
        let unconstrained = two_unary();
        let pools_u: BTreeMap<String, Vec<Tuple>> = [
            (
                "R".to_owned(),
                vec![
                    Tuple::new([v("a1")]),
                    Tuple::new([v("a2")]),
                    Tuple::new([v("a3")]),
                ],
            ),
            (
                "S".to_owned(),
                vec![Tuple::new([v("a1")]), Tuple::new([v("a2")])],
            ),
        ]
        .into();

        let sig = Signature::new([RelDecl::new("R", ["A", "B"]), RelDecl::new("S", ["A"])]);
        let constrained = Schema::new(
            sig,
            vec![
                Constraint::Fd(Fd::new("R", vec![0], vec![1])),
                Constraint::Jd(Jd::new("R", vec![vec![0], vec![1]])),
            ],
        );
        let pools_c: BTreeMap<String, Vec<Tuple>> = [
            (
                "R".to_owned(),
                vec![
                    Tuple::new([v("a"), v("x")]),
                    Tuple::new([v("a"), v("y")]),
                    Tuple::new([v("b"), v("x")]),
                    Tuple::new([v("b"), v("y")]),
                ],
            ),
            (
                "S".to_owned(),
                vec![Tuple::new([v("a")]), Tuple::new([v("b")])],
            ),
        ]
        .into();

        for (d, pools) in [(&unconstrained, &pools_u), (&constrained, &pools_c)] {
            let expect = reference_scan(d, pools);
            for threads in [1usize, 2, 8] {
                let cfg = EnumerationConfig {
                    max_bits: 28,
                    threads,
                };
                assert_eq!(d.enumerate_ldb_with(pools, &cfg), expect);
            }
        }
    }

    #[test]
    fn constrained_26_bit_space_enumerates() {
        // 26 raw pool bits — a guaranteed panic under the old fixed 24-bit
        // guard, and 2^26 ≈ 67M masks under the old full scan.  The FD
        // R: 0 → 1 prunes each key's 13 candidate values to at most one,
        // so per-block enumeration visits only the 14^2 = 196 legal states.
        let sig = Signature::new([RelDecl::new("R", ["K", "V"])]);
        let d = Schema::new(sig, vec![Constraint::Fd(Fd::new("R", vec![0], vec![1]))]);
        let pool: Vec<Tuple> = ["a", "b"]
            .iter()
            .flat_map(|k| (0..13).map(move |i| Tuple::new([v(k), v(&format!("v{i}"))])))
            .collect();
        assert_eq!(pool.len(), 26);
        let pools: BTreeMap<String, Vec<Tuple>> = [("R".to_owned(), pool)].into();
        let ldb = d.enumerate_ldb(&pools);
        assert_eq!(ldb.len(), 14 * 14);
        assert!(ldb.iter().all(|s| d.is_legal(s)));
        assert!(ldb.iter().any(Instance::is_null_model));
    }

    #[test]
    fn detailed_enumeration_reconstructs_states() {
        // The combo index of each state must decode, through the block
        // lists, back to the state itself — and submasks must pack to the
        // same relations.
        let sig = Signature::new([RelDecl::new("R", ["A", "B"]), RelDecl::new("S", ["A"])]);
        let d = Schema::new(sig, vec![Constraint::Fd(Fd::new("R", vec![0], vec![1]))]);
        let pools: BTreeMap<String, Vec<Tuple>> = [
            (
                "R".to_owned(),
                vec![
                    Tuple::new([v("a"), v("x")]),
                    Tuple::new([v("a"), v("y")]),
                    Tuple::new([v("b"), v("x")]),
                ],
            ),
            (
                "S".to_owned(),
                vec![Tuple::new([v("a")]), Tuple::new([v("b")])],
            ),
        ]
        .into();
        let detail = d.enumerate_ldb_detailed(&pools, &EnumerationConfig::default());
        assert_eq!(detail.states, d.enumerate_ldb(&pools));
        assert_eq!(detail.states.len(), detail.state_combos.len());
        let decls = d.sig().decls();
        for (s, &combo) in detail.states.iter().zip(&detail.state_combos) {
            let mut rest = combo;
            for (dd, blocks) in decls.iter().zip(&detail.blocks) {
                let b = &blocks[rest % blocks.len()];
                rest /= blocks.len();
                assert_eq!(s.rel(dd.name()), &b.rel);
                // Submask packs to the block's relation.
                let mut r = Relation::empty(dd.arity());
                for (p, t) in pools[dd.name()].iter().enumerate() {
                    if b.submask >> p & 1 == 1 {
                        r.insert(t.clone());
                    }
                }
                assert_eq!(&r, &b.rel);
            }
        }
        // Combos ascend (enumeration order) and submasks ascend per block
        // list.
        assert!(detail.state_combos.windows(2).all(|w| w[0] < w[1]));
        for blocks in &detail.blocks {
            assert!(blocks.windows(2).all(|w| w[0].submask < w[1].submask));
        }
    }

    #[test]
    fn seeded_blocks_complete_the_grown_pool() {
        // legal_blocks(pool ++ [t]) == legal_blocks(pool) ++ seeded(pool, t)
        // up to order: the seeded call yields exactly the blocks containing
        // the forced tuple.
        let sig = Signature::new([RelDecl::new("R", ["K", "V"])]);
        let d = Schema::new(sig, vec![Constraint::Fd(Fd::new("R", vec![0], vec![1]))]);
        let pool: Vec<Tuple> = vec![
            Tuple::new([v("a"), v("x")]),
            Tuple::new([v("a"), v("y")]),
            Tuple::new([v("b"), v("x")]),
        ];
        let t = Tuple::new([v("b"), v("y")]);
        let mut grown = pool.clone();
        grown.push(t.clone());

        let old = d.legal_blocks("R", &pool);
        let seeded = d.legal_blocks_seeded("R", &pool, &t);
        let full = d.legal_blocks("R", &grown);

        assert!(seeded
            .iter()
            .all(|b| b.submask >> pool.len() & 1 == 1 && b.rel.contains(&t)));
        let mut spliced: Vec<LegalBlock> = old;
        spliced.extend(seeded);
        // Same block set; the splice appends new blocks after old ones.
        let mut a: Vec<&LegalBlock> = spliced.iter().collect();
        let mut b: Vec<&LegalBlock> = full.iter().collect();
        a.sort_by_key(|x| x.submask);
        b.sort_by_key(|x| x.submask);
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_blocks_prune_illegal_seed() {
        // A forced tuple that alone violates a monotone local constraint
        // yields no blocks.
        let sig = Signature::new([RelDecl::new("R", ["K", "V"])]);
        let mut d = Schema::unconstrained(sig);
        // FD on an existing pair conflicts with the forced tuple's key.
        d.add_constraint(Constraint::Fd(Fd::new("R", vec![0], vec![1])));
        let pool = vec![Tuple::new([v("a"), v("x")])];
        // Forcing a second value for key "a" leaves only blocks without
        // pool[0]; forcing a self-violating tuple is impossible with an FD,
        // so instead check the conflict case: every seeded block omits the
        // clashing old tuple.
        let t = Tuple::new([v("a"), v("y")]);
        let seeded = d.legal_blocks_seeded("R", &pool, &t);
        assert!(!seeded.is_empty());
        assert!(seeded.iter().all(|b| b.submask & 1 == 0));
    }

    #[test]
    fn rules_compile_all_constraints() {
        let sig = Signature::new([RelDecl::new("R", ["A", "B", "C"])]);
        let d = Schema::new(
            sig,
            vec![
                Constraint::Fd(Fd::new("R", vec![0], vec![1])),
                Constraint::Jd(Jd::new("R", vec![vec![0, 1], vec![1, 2]])),
            ],
        );
        let (tgds, egds) = d.rules();
        assert_eq!(tgds.len(), 1);
        assert_eq!(egds.len(), 1);
    }
}
