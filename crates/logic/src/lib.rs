//! # compview-logic
//!
//! Constraint and type substrate for `compview`, the reproduction of
//! Hegner's *Canonical View Update Support through Boolean Algebras of
//! Components* (PODS 1984).
//!
//! The paper's framework (§2.1) is first-order: schemata carry arbitrary
//! first-order constraints over a **type algebra** — a free Boolean algebra
//! of unary predicates that subsumes attributes and formalises null values
//! as one-element types.  This crate realises that framework over *finite*
//! instances (the substitution is documented in DESIGN.md §2):
//!
//! * [`typealg`] — the free Boolean algebra of types in canonical minterm
//!   form, and type assignments `μ`;
//! * [`dep`] — functional, join, and inclusion dependencies;
//! * [`rule`] — TGDs and EGDs with homomorphism matching;
//! * [`mod@chase`] — naive and semi-naive chase engines, closure and
//!   implication testing;
//! * [`constraint`] — the unified `Con(D)` constraint type;
//! * [`schema`] — full schemata `D = (Rel(D), Con(D))` and exhaustive
//!   enumeration of `LDB(D, μ)` over finite pools;
//! * [`nulls`] — null-augmented [`nulls::PathSchema`]s: the exact chain-join
//!   decompositions of Examples 2.1.1 / 2.3.4 with a specialised closure
//!   engine.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chase;
pub mod constraint;
pub mod dep;
pub mod nulls;
pub mod obs;
pub mod rule;
pub mod schema;
pub mod tree;
pub mod typealg;

pub use chase::{chase, chase_naive, chase_observed, ChaseConfig, ChaseError};
pub use constraint::Constraint;
pub use dep::{attribute_closure, fd_implies, Fd, Ind, Jd};
pub use nulls::PathSchema;
pub use obs::{ChaseObs, EnumObs};
pub use rule::{cst, var, Atom, Egd, Substitution, Term, Tgd, TupleIndex};
pub use schema::{EnumerationConfig, LdbDetail, LegalBlock, Schema};
pub use tree::TreeSchema;
pub use typealg::{TypeAlgebra, TypeAssignment, TypeExpr};
