//! Instrument bundles for the engine hot paths: the chase and parallel
//! state-space enumeration.
//!
//! Each bundle is a plain struct of `compview-obs` handles, registered
//! **eagerly** against a [`compview_obs::Registry`] so the set and order
//! of metric names in a snapshot never depends on which code paths
//! happened to run or on the thread count.  Bundles built with `noop()`
//! cost a branch per hit; callers that do not care pass those.

use compview_obs::{Counter, Histogram, Registry, Tracer};

/// Instruments for [`crate::chase::chase_observed`].
#[derive(Clone, Default)]
pub struct ChaseObs {
    /// Completed chase runs.
    pub runs: Counter,
    /// Semi-naive rounds executed, across all runs.
    pub rounds: Counter,
    /// Distribution of per-round delta sizes (tuples added the previous
    /// round and re-joined this round).
    pub delta_tuples: Histogram,
    /// Wall time of whole chase runs, nanoseconds.
    pub run_ns: Histogram,
    /// Span/instant sink ("chase" spans, "chase.round" instants carrying
    /// the round's delta size).
    pub tracer: Tracer,
}

impl ChaseObs {
    /// Handles that record nothing.
    pub fn noop() -> ChaseObs {
        ChaseObs::default()
    }

    /// Register every chase instrument on `registry`.
    pub fn new(registry: &Registry) -> ChaseObs {
        ChaseObs {
            runs: registry.counter("chase.runs"),
            rounds: registry.counter("chase.rounds"),
            delta_tuples: registry.histogram("chase.delta_tuples"),
            run_ns: registry.histogram("chase.run_ns"),
            tracer: registry.tracer(),
        }
    }
}

/// Instruments for [`crate::Schema::enumerate_ldb_observed`].
#[derive(Clone, Default)]
pub struct EnumObs {
    /// Enumeration runs.
    pub runs: Counter,
    /// Legal states produced, across all runs.
    pub states: Counter,
    /// Wall time of each enumeration shard, nanoseconds.  Shard *count*
    /// varies with the thread count; only the metric's presence and name
    /// are part of the determinism contract.
    pub shard_ns: Histogram,
    /// Wall time of whole enumerations, nanoseconds.
    pub run_ns: Histogram,
    /// Span sink ("enum" spans carrying the combo count).
    pub tracer: Tracer,
}

impl EnumObs {
    /// Handles that record nothing.
    pub fn noop() -> EnumObs {
        EnumObs::default()
    }

    /// Register every enumeration instrument on `registry`.
    pub fn new(registry: &Registry) -> EnumObs {
        EnumObs {
            runs: registry.counter("enum.runs"),
            states: registry.counter("enum.states"),
            shard_ns: registry.histogram("enum.shard_ns"),
            run_ns: registry.histogram("enum.run_ns"),
            tracer: registry.tracer(),
        }
    }
}
