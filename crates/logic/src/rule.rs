//! First-order rules: tuple-generating and equality-generating dependencies.
//!
//! The paper expresses every schema constraint as a first-order sentence
//! (§2.1).  The fragment sufficient for everything the paper does — the
//! classical dependencies of [`crate::dep`], the subsumed-tuple rules and the
//! (embedded) join dependencies of Example 2.1.1 — is the class of *embedded
//! implicational dependencies*: TGDs (`∀x̄ (body → ∃ȳ head)`) and EGDs
//! (`∀x̄ (body → x = y)`).  This module defines the rule syntax and
//! homomorphism (body-match) machinery; [`mod@crate::chase`] closes instances
//! under rules.

use compview_relation::{Instance, Tuple, Value};
use std::collections::HashMap;
use std::fmt;

/// A term: a universally quantified variable or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// Variable with numeric id (scope: one rule).
    Var(u32),
    /// Constant value (e.g. the null `η` in the rules of Example 2.1.1).
    Const(Value),
}

impl Term {
    /// Variable ids mentioned by the term.
    fn var(&self) -> Option<u32> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

/// A relational atom `R(t_1, …, t_k)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub rel: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new<S: Into<String>>(rel: S, args: Vec<Term>) -> Atom {
        Atom {
            rel: rel.into(),
            args,
        }
    }

    /// Variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = u32> + '_ {
        self.args.iter().filter_map(Term::var)
    }

    /// Instantiate under a (total, for this atom) substitution.
    ///
    /// # Panics
    /// Panics if a variable is unbound.
    pub fn instantiate(&self, sub: &Substitution) -> Tuple {
        Tuple::new(self.args.iter().map(|t| {
            match t {
                Term::Const(v) => *v,
                Term::Var(x) => *sub
                    .0
                    .get(x)
                    .unwrap_or_else(|| panic!("unbound variable ?{x} in head instantiation")),
            }
        }))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match a {
                Term::Var(v) => write!(f, "?{v}")?,
                Term::Const(c) => write!(f, "{c}")?,
            }
        }
        write!(f, ")")
    }
}

/// A variable binding produced by matching rule bodies against an instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Substitution(pub HashMap<u32, Value>);

impl Substitution {
    /// The binding of variable `x`, if any.
    pub fn get(&self, x: u32) -> Option<Value> {
        self.0.get(&x).copied()
    }
}

/// A per-relation, per-column hash index over an instance's tuples.
///
/// `candidates(rel, col, v)` returns every tuple of `rel` whose column
/// `col` equals `v`, in **lexicographic tuple order** — the same relative
/// order a full scan of the underlying `Relation` visits them in.  That
/// invariant is what lets [`for_each_match_indexed`] enumerate matches in
/// exactly the order of the unindexed scan, so the chase's fresh-null
/// numbering (and hence its output) is byte-identical with or without the
/// index.
///
/// The index is a *live* companion to a growing instance: the chase calls
/// [`TupleIndex::insert`] alongside every instance insertion so intra-round
/// additions remain visible to subsequent lookups, matching scan semantics.
#[derive(Clone, Debug, Default)]
pub struct TupleIndex {
    rels: HashMap<String, Vec<HashMap<Value, Vec<Tuple>>>>,
}

impl TupleIndex {
    /// Index every relation of `inst` on every column.
    pub fn build(inst: &Instance) -> TupleIndex {
        let mut idx = TupleIndex::default();
        for (name, rel) in inst.iter() {
            let cols = idx
                .rels
                .entry(name.to_owned())
                .or_insert_with(|| vec![HashMap::new(); rel.arity()]);
            cols.resize(rel.arity().max(cols.len()), HashMap::new());
            for t in rel.iter() {
                for (c, col) in cols.iter_mut().enumerate() {
                    // Relation iterates in ascending order, so pushing
                    // keeps each bucket sorted.
                    col.entry(t[c]).or_default().push(t.clone());
                }
            }
        }
        idx
    }

    /// Mirror an instance insertion.  Buckets stay sorted (sorted insert;
    /// buckets are short in practice) to preserve scan-order enumeration.
    pub fn insert(&mut self, rel: &str, t: &Tuple) {
        let cols = self
            .rels
            .entry(rel.to_owned())
            .or_insert_with(|| vec![HashMap::new(); t.arity()]);
        cols.resize(t.arity().max(cols.len()), HashMap::new());
        for (c, col) in cols.iter_mut().enumerate() {
            let bucket = col.entry(t[c]).or_default();
            match bucket.binary_search(t) {
                Ok(_) => {}
                Err(pos) => bucket.insert(pos, t.clone()),
            }
        }
    }

    /// Tuples of `rel` with `t[col] == v`, ascending; empty if none.
    fn candidates(&self, rel: &str, col: usize, v: Value) -> &[Tuple] {
        self.rels
            .get(rel)
            .and_then(|cols| cols.get(col))
            .and_then(|m| m.get(&v))
            .map_or(&[], Vec::as_slice)
    }
}

/// Backtracking-join recursion shared by the indexed and unindexed entry
/// points.  At each atom, candidate tuples come from the smallest index
/// bucket over the atom's bound positions (constants or already-bound
/// variables) when an index is supplied, else from a full relation scan.
/// Both sources yield tuples in ascending order, so match enumeration
/// order is identical either way.
fn match_rec<F>(
    atoms: &[Atom],
    inst: &Instance,
    index: Option<&TupleIndex>,
    sub: &mut Substitution,
    found: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> bool,
{
    let Some((atom, rest)) = atoms.split_first() else {
        return found(sub);
    };
    let rel = inst.rel(&atom.rel);

    // Pick the most selective bound position, if any.
    let candidates: Option<&[Tuple]> = index.and_then(|idx| {
        let mut best: Option<&[Tuple]> = None;
        for (i, term) in atom.args.iter().enumerate() {
            let v = match term {
                Term::Const(c) => Some(*c),
                Term::Var(x) => sub.get(*x),
            };
            if let Some(v) = v {
                let bucket = idx.candidates(&atom.rel, i, v);
                if best.is_none_or(|b| bucket.len() < b.len()) {
                    best = Some(bucket);
                }
            }
        }
        best
    });

    let try_tuple = |t: &Tuple, sub: &mut Substitution, found: &mut F| -> (bool, bool) {
        debug_assert_eq!(t.arity(), atom.args.len(), "atom arity mismatch");
        let mut bound_here: Vec<u32> = Vec::new();
        for (i, term) in atom.args.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if t[i] != *c {
                        for b in bound_here.drain(..) {
                            sub.0.remove(&b);
                        }
                        return (false, true);
                    }
                }
                Term::Var(x) => match sub.0.get(x) {
                    Some(&v) if v != t[i] => {
                        for b in bound_here.drain(..) {
                            sub.0.remove(&b);
                        }
                        return (false, true);
                    }
                    Some(_) => {}
                    None => {
                        sub.0.insert(*x, t[i]);
                        bound_here.push(*x);
                    }
                },
            }
        }
        let keep_going = match_rec(rest, inst, index, sub, found);
        for b in bound_here {
            sub.0.remove(&b);
        }
        (true, keep_going)
    };

    match candidates {
        Some(bucket) => {
            // The index bucket may lag behind `inst` only if the caller
            // failed to mirror an insertion; matching consults the bucket's
            // own tuples, so results stay consistent with the index state.
            for t in bucket {
                let (_, keep_going) = try_tuple(t, sub, found);
                if !keep_going {
                    return false;
                }
            }
        }
        None => {
            for t in rel.iter() {
                let (_, keep_going) = try_tuple(t, sub, found);
                if !keep_going {
                    return false;
                }
            }
        }
    }
    true
}

/// Enumerate all homomorphisms from `atoms` (a conjunction) into `inst`
/// extending `partial`, invoking `found` on each.  If `found` returns
/// `false`, enumeration stops early (used for existence checks).
///
/// Straightforward backtracking join; atom order is taken as given (callers
/// ordering selective atoms first get better performance, but correctness
/// never depends on order).
pub fn for_each_match<F>(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Substitution,
    found: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> bool,
{
    let mut sub = partial.clone();
    match_rec(atoms, inst, None, &mut sub, found)
}

/// [`for_each_match`] with hash-index candidate seeding: atoms with a bound
/// argument position probe `index` instead of scanning the relation.
/// `index` must be consistent with `inst` (see [`TupleIndex`]); match
/// enumeration order equals the unindexed scan's.
pub fn for_each_match_indexed<F>(
    atoms: &[Atom],
    inst: &Instance,
    index: &TupleIndex,
    partial: &Substitution,
    found: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> bool,
{
    let mut sub = partial.clone();
    match_rec(atoms, inst, Some(index), &mut sub, found)
}

/// Whether `atoms` has at least one homomorphism into `inst` extending
/// `partial`.
pub fn has_match(atoms: &[Atom], inst: &Instance, partial: &Substitution) -> bool {
    let mut any = false;
    for_each_match(atoms, inst, partial, &mut |_| {
        any = true;
        false // stop at first
    });
    any
}

/// [`has_match`] with hash-index candidate seeding.
pub fn has_match_indexed(
    atoms: &[Atom],
    inst: &Instance,
    index: &TupleIndex,
    partial: &Substitution,
) -> bool {
    let mut any = false;
    for_each_match_indexed(atoms, inst, index, partial, &mut |_| {
        any = true;
        false // stop at first
    });
    any
}

/// A tuple-generating dependency `∀x̄ (body ∧ guards → ∃ȳ head)`.
///
/// Head variables not occurring in the body are existential; the chase
/// instantiates them with fresh constants (labelled nulls).  All rules
/// generated from the paper are existential-free.
///
/// `nonnull` lists variables additionally required to be non-null — the
/// type-algebra guards (`τ_A(x)`, i.e. `¬τ_η(x)`) that the rules of
/// Example 2.1.1 carry: the subsumption rule for `(a,b,c,η)` ranges over
/// *values* `a,b,c`, never over `η` itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tgd {
    /// Diagnostic name.
    pub name: String,
    /// Body conjunction.
    pub body: Vec<Atom>,
    /// Head conjunction.
    pub head: Vec<Atom>,
    /// Variables that must bind non-null values.
    pub nonnull: Vec<u32>,
}

impl Tgd {
    /// Build a guard-free TGD.
    ///
    /// # Panics
    /// Panics on an empty body (the chase needs a trigger).
    pub fn new<S: Into<String>>(name: S, body: Vec<Atom>, head: Vec<Atom>) -> Tgd {
        assert!(!body.is_empty(), "TGD body must be nonempty");
        Tgd {
            name: name.into(),
            body,
            head,
            nonnull: Vec::new(),
        }
    }

    /// Require the listed variables to bind non-null values.
    pub fn with_nonnull(mut self, vars: Vec<u32>) -> Tgd {
        self.nonnull = vars;
        self
    }

    /// Whether a substitution passes the non-null guards.
    pub fn guard_ok(&self, sub: &Substitution) -> bool {
        self.nonnull
            .iter()
            .all(|&x| sub.get(x).is_none_or(|v| !v.is_null()))
    }

    /// Existential (head-only) variables.
    pub fn existential_vars(&self) -> Vec<u32> {
        let body_vars: std::collections::HashSet<u32> =
            self.body.iter().flat_map(Atom::vars).collect();
        let mut ex: Vec<u32> = self
            .head
            .iter()
            .flat_map(Atom::vars)
            .filter(|v| !body_vars.contains(v))
            .collect();
        ex.sort_unstable();
        ex.dedup();
        ex
    }

    /// Whether `inst` satisfies the TGD: every body match extends to a head
    /// match.
    pub fn satisfied(&self, inst: &Instance) -> bool {
        let mut ok = true;
        for_each_match(&self.body, inst, &Substitution::default(), &mut |sub| {
            if self.guard_ok(sub) && !has_match(&self.head, inst, sub) {
                ok = false;
                return false;
            }
            true
        });
        ok
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |atoms: &[Atom]| {
            atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        write!(
            f,
            "[{}] {} → {}",
            self.name,
            join(&self.body),
            join(&self.head)
        )
    }
}

/// An equality-generating dependency `∀x̄ (body → x = y)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Egd {
    /// Diagnostic name.
    pub name: String,
    /// Body conjunction.
    pub body: Vec<Atom>,
    /// The pair of variables equated by the head.
    pub eq: (u32, u32),
}

impl Egd {
    /// Build an EGD.
    pub fn new<S: Into<String>>(name: S, body: Vec<Atom>, eq: (u32, u32)) -> Egd {
        assert!(!body.is_empty(), "EGD body must be nonempty");
        Egd {
            name: name.into(),
            body,
            eq,
        }
    }

    /// Whether `inst` satisfies the EGD.
    pub fn satisfied(&self, inst: &Instance) -> bool {
        let mut ok = true;
        for_each_match(&self.body, inst, &Substitution::default(), &mut |sub| {
            let (x, y) = self.eq;
            if sub.get(x) != sub.get(y) {
                ok = false;
                return false;
            }
            true
        });
        ok
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = self
            .body
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ∧ ");
        write!(
            f,
            "[{}] {} → ?{} = ?{}",
            self.name, body, self.eq.0, self.eq.1
        )
    }
}

/// Convenience: variable term.
pub fn var(x: u32) -> Term {
    Term::Var(x)
}

/// Convenience: constant term.
pub fn cst<V: Into<Value>>(v: V) -> Term {
    Term::Const(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use compview_relation::{rel, v, Instance};

    fn edge_inst() -> Instance {
        Instance::new().with("E", rel(2, [["a", "b"], ["b", "c"], ["c", "a"]]))
    }

    #[test]
    fn matching_enumerates_all_homomorphisms() {
        let atoms = vec![Atom::new("E", vec![var(0), var(1)])];
        let mut n = 0;
        for_each_match(&atoms, &edge_inst(), &Substitution::default(), &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn matching_joins_on_shared_variables() {
        // Paths of length 2: E(x,y) ∧ E(y,z).
        let atoms = vec![
            Atom::new("E", vec![var(0), var(1)]),
            Atom::new("E", vec![var(1), var(2)]),
        ];
        let mut paths = Vec::new();
        for_each_match(&atoms, &edge_inst(), &Substitution::default(), &mut |s| {
            paths.push((s.get(0).unwrap(), s.get(1).unwrap(), s.get(2).unwrap()));
            true
        });
        assert_eq!(paths.len(), 3); // a-b-c, b-c-a, c-a-b
        assert!(paths.contains(&(v("a"), v("b"), v("c"))));
    }

    #[test]
    fn constants_filter_matches() {
        let atoms = vec![Atom::new("E", vec![cst("a"), var(0)])];
        let mut n = 0;
        for_each_match(&atoms, &edge_inst(), &Substitution::default(), &mut |s| {
            assert_eq!(s.get(0), Some(v("b")));
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn repeated_variables_force_equal_columns() {
        let inst = Instance::new().with("E", rel(2, [["a", "a"], ["a", "b"]]));
        let atoms = vec![Atom::new("E", vec![var(0), var(0)])];
        let mut n = 0;
        for_each_match(&atoms, &inst, &Substitution::default(), &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn tgd_satisfaction_transitivity() {
        // E(x,y) ∧ E(y,z) → E(x,z): the 3-cycle is not transitively closed.
        let tgd = Tgd::new(
            "trans",
            vec![
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(1), var(2)]),
            ],
            vec![Atom::new("E", vec![var(0), var(2)])],
        );
        assert!(!tgd.satisfied(&edge_inst()));
        let complete = Instance::new().with(
            "E",
            rel(
                2,
                [
                    ["a", "a"],
                    ["a", "b"],
                    ["a", "c"],
                    ["b", "a"],
                    ["b", "b"],
                    ["b", "c"],
                    ["c", "a"],
                    ["c", "b"],
                    ["c", "c"],
                ],
            ),
        );
        assert!(tgd.satisfied(&complete));
    }

    #[test]
    fn existential_vars_detected() {
        let tgd = Tgd::new(
            "exists",
            vec![Atom::new("P", vec![var(0)])],
            vec![Atom::new("E", vec![var(0), var(7)])],
        );
        assert_eq!(tgd.existential_vars(), vec![7]);
    }

    #[test]
    fn existential_tgd_satisfaction() {
        // P(x) → ∃y E(x,y).
        let tgd = Tgd::new(
            "total",
            vec![Atom::new("P", vec![var(0)])],
            vec![Atom::new("E", vec![var(0), var(1)])],
        );
        let good = Instance::new()
            .with("P", rel(1, [["a"]]))
            .with("E", rel(2, [["a", "b"]]));
        let bad = Instance::new()
            .with("P", rel(1, [["z"]]))
            .with("E", rel(2, [["a", "b"]]));
        assert!(tgd.satisfied(&good));
        assert!(!tgd.satisfied(&bad));
    }

    #[test]
    fn egd_is_fd() {
        // E(x,y) ∧ E(x,z) → y = z  (the FD 0→1).
        let egd = Egd::new(
            "fd",
            vec![
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(0), var(2)]),
            ],
            (1, 2),
        );
        let ok = Instance::new().with("E", rel(2, [["a", "x"], ["b", "y"]]));
        let bad = Instance::new().with("E", rel(2, [["a", "x"], ["a", "y"]]));
        assert!(egd.satisfied(&ok));
        assert!(!egd.satisfied(&bad));
    }

    #[test]
    fn indexed_matching_equals_scan_in_content_and_order() {
        // A join with shared variables, constants, and a repeated variable;
        // the indexed matcher must produce the same substitutions in the
        // same order as the full scan.
        let inst = Instance::new()
            .with(
                "E",
                rel(
                    2,
                    [["a", "b"], ["b", "c"], ["c", "a"], ["a", "a"], ["b", "a"]],
                ),
            )
            .with("P", rel(1, [["a"], ["c"]]));
        let index = TupleIndex::build(&inst);
        let bodies: Vec<Vec<Atom>> = vec![
            vec![
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(1), var(2)]),
            ],
            vec![
                Atom::new("P", vec![var(0)]),
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(1), var(0)]),
            ],
            vec![Atom::new("E", vec![cst("a"), var(0)])],
            vec![Atom::new("E", vec![var(0), var(0)])],
        ];
        for atoms in &bodies {
            let mut scan = Vec::new();
            for_each_match(atoms, &inst, &Substitution::default(), &mut |s| {
                scan.push(s.clone());
                true
            });
            let mut indexed = Vec::new();
            for_each_match_indexed(atoms, &inst, &index, &Substitution::default(), &mut |s| {
                indexed.push(s.clone());
                true
            });
            assert_eq!(scan, indexed);
            assert_eq!(
                has_match(atoms, &inst, &Substitution::default()),
                has_match_indexed(atoms, &inst, &index, &Substitution::default())
            );
        }
    }

    #[test]
    fn live_index_sees_insertions() {
        let mut inst = Instance::new().with("E", rel(2, [["a", "b"]]));
        let mut index = TupleIndex::build(&inst);
        let probe = vec![Atom::new("E", vec![cst("b"), var(0)])];
        assert!(!has_match_indexed(
            &probe,
            &inst,
            &index,
            &Substitution::default()
        ));
        let t = compview_relation::t(["b", "c"]);
        inst.rel_mut("E").insert(t.clone());
        index.insert("E", &t);
        assert!(has_match_indexed(
            &probe,
            &inst,
            &index,
            &Substitution::default()
        ));
    }

    #[test]
    fn null_constants_in_rules() {
        // The subsumption rules of Example 2.1.1 mention η as a constant.
        let inst = Instance::new().with(
            "R",
            compview_relation::Relation::from_tuples(2, [Tuple::new([v("a"), Value::Null])]),
        );
        let atoms = vec![Atom::new("R", vec![var(0), cst(Value::Null)])];
        assert!(has_match(&atoms, &inst, &Substitution::default()));
        let atoms2 = vec![Atom::new("R", vec![var(0), cst(v("b"))])];
        assert!(!has_match(&atoms2, &inst, &Substitution::default()));
    }
}
