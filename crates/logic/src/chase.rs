//! The chase: closing instances under TGDs and checking EGDs.
//!
//! Two uses in this reproduction:
//!
//! 1. **Closure.**  The null-augmented schemas of Example 2.1.1 constrain
//!    instances to be closed under subsumption and join-completion rules.
//!    Presenting a set of "generator" tuples and chasing yields the least
//!    legal instance containing them — the engine behind the least-preimage
//!    maps `γ#` of strong views (§2.3).
//! 2. **Implication.**  The classical chase implication test: `Σ ⊨ σ` iff
//!    chasing σ's canonical (frozen-body) instance with Σ satisfies σ's
//!    head.  Used to verify the paper's claims about *implied constraints*
//!    on views (§1.1).
//!
//! Both a naive and a semi-naive engine are provided; they are
//! cross-validated in tests and compared in the `chase` benchmark
//! (design-choice ablation #3 in DESIGN.md).

use crate::rule::{
    for_each_match_indexed, has_match, has_match_indexed, Atom, Egd, Substitution, Term, Tgd,
    TupleIndex,
};
use compview_relation::{Instance, Relation, Tuple, Value};

/// Failure modes of the chase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// An EGD fired on two distinct constants — the instance is
    /// inconsistent with the constraints (no labelled-null unification is
    /// possible because instance values are all constants).
    EgdViolation {
        /// Name of the violated EGD.
        rule: String,
    },
    /// The step limit was exceeded (non-terminating or runaway rule set).
    StepLimit,
}

impl std::fmt::Display for ChaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaseError::EgdViolation { rule } => write!(f, "EGD {rule:?} violated"),
            ChaseError::StepLimit => write!(f, "chase step limit exceeded"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// Chase configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Maximum number of rule-application rounds before giving up.
    pub max_rounds: usize,
    /// Maximum number of fresh labelled nulls invented for existential
    /// variables.
    pub max_fresh: usize,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            max_rounds: 10_000,
            max_fresh: 10_000,
        }
    }
}

/// Counter for fresh labelled nulls (existential witnesses).
struct FreshGen {
    next: usize,
    max: usize,
}

impl FreshGen {
    fn fresh(&mut self) -> Result<Value, ChaseError> {
        if self.next >= self.max {
            return Err(ChaseError::StepLimit);
        }
        let v = Value::sym(&format!("_sk{}", self.next));
        self.next += 1;
        Ok(v)
    }
}

/// The cached join plan of one TGD: everything about driving the rule
/// semi-naively that does not depend on the round, built once per chase
/// instead of once per round (Issue: the residual bodies were re-cloned
/// `rounds × positions` times).
struct RulePlan {
    /// Residual body per delta position: the body with atom `pos` removed,
    /// to be joined around a substitution seeded from a delta tuple.
    rest: Vec<Vec<Atom>>,
    /// Whether every head variable is bound by the body.  Only
    /// existential-free rules may take the dense full-enumeration path:
    /// it visits matches in a different order, which would renumber
    /// invented witnesses (the final instance of an existential-free rule
    /// set is its unique least fixpoint either way).
    existential_free: bool,
}

impl RulePlan {
    fn build(tgd: &Tgd) -> RulePlan {
        let rest = (0..tgd.body.len())
            .map(|pos| {
                tgd.body
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, a)| a.clone())
                    .collect()
            })
            .collect();
        let body_vars: std::collections::BTreeSet<u32> =
            tgd.body.iter().flat_map(|a| a.vars()).collect();
        let existential_free = tgd
            .head
            .iter()
            .flat_map(|a| a.vars())
            .all(|x| body_vars.contains(&x));
        RulePlan {
            rest,
            existential_free,
        }
    }
}

/// Semi-naive chase: close `inst` under `tgds`, then verify `egds`.
///
/// Each round only considers body matches in which at least one atom is
/// matched against a tuple added in the previous round, so quiescent parts
/// of the instance are never re-joined.  Per-rule join plans (the residual
/// bodies of each delta position) are cached across rounds, and the delta
/// is bucketed by relation so the delta atom is picked by the *current*
/// delta's shape: positions whose relation gained nothing are skipped
/// outright, and a rule over a relation the round never touched costs
/// one map lookup.
///
/// **Dense rounds** fall back to a single full enumeration: when every
/// body atom's delta bucket covers its entire relation (always true in
/// round 1), the seeded passes would re-enumerate the same join once per
/// body position, which is how the semi-naive engine lost to the naive
/// one on dense wide joins (EXPERIMENTS.md, PR 2).  The fallback is taken
/// only for existential-free rules, so witness numbering stays pinned to
/// the seeded order.
///
/// Body matching seeds candidates from a live [`TupleIndex`] kept in sync
/// with the growing instance, so join fan-out is proportional to matching
/// tuples rather than relation size; on the seeded path, enumeration
/// order (and hence fresh-null numbering and the final instance) is
/// identical to the unindexed scan.
pub fn chase(
    inst: &Instance,
    tgds: &[Tgd],
    egds: &[Egd],
    config: &ChaseConfig,
) -> Result<Instance, ChaseError> {
    chase_observed(inst, tgds, egds, config, &crate::obs::ChaseObs::noop())
}

/// [`chase`] with instrumentation: tallies runs/rounds, records the
/// per-round delta size and whole-run wall time, and emits a `"chase"`
/// span plus one `"chase.round"` instant per round (carrying the delta
/// size) when the bundle's tracer is enabled.  The produced instance is
/// byte-identical to [`chase`]'s — observation never steers the engine.
pub fn chase_observed(
    inst: &Instance,
    tgds: &[Tgd],
    egds: &[Egd],
    config: &ChaseConfig,
    obs: &crate::obs::ChaseObs,
) -> Result<Instance, ChaseError> {
    let run_timer = obs.run_ns.start();
    let _span = obs.tracer.span("chase", tgds.len() as u64);
    let mut out = inst.clone();
    let mut index = TupleIndex::build(&out);
    let mut fresh = FreshGen {
        next: 0,
        max: config.max_fresh,
    };
    let plans: Vec<RulePlan> = tgds.iter().map(RulePlan::build).collect();

    // Delta = tuples added last round, bucketed by relation name.  Bucket
    // order is instance iteration order initially and addition order
    // afterwards — exactly the order the unbucketed scan visited them.
    let mut delta: std::collections::BTreeMap<String, Vec<Tuple>> =
        std::collections::BTreeMap::new();
    for (n, r) in out.iter() {
        let bucket: Vec<Tuple> = r.iter().cloned().collect();
        if !bucket.is_empty() {
            delta.insert(n.to_owned(), bucket);
        }
    }

    let mut rounds = 0usize;
    while !delta.is_empty() {
        rounds += 1;
        if rounds > config.max_rounds {
            return Err(ChaseError::StepLimit);
        }
        obs.rounds.inc();
        let delta_size = delta.values().map(Vec::len).sum::<usize>() as u64;
        obs.delta_tuples.record(delta_size);
        obs.tracer.instant("chase.round", delta_size);
        let mut additions: Vec<(String, Tuple)> = Vec::new();
        for (tgd, plan) in tgds.iter().zip(&plans) {
            // A body atom over an empty (or absent) relation can never
            // match; the whole rule is dead this round.
            if tgd
                .body
                .iter()
                .any(|a| out.get(&a.rel).is_none_or(Relation::is_empty))
            {
                continue;
            }
            // Dense round: every body position that *has* delta is fully
            // covered by it (its whole relation is new — always true in
            // round 1).  The seeded passes would then each re-enumerate
            // the same full join, once per such position; one full
            // enumeration over the current instance sees a superset of
            // every seeded match exactly once.
            let mut any_delta = false;
            let dense = plan.existential_free
                && tgd.body.iter().all(|a| match delta.get(&a.rel) {
                    None => true,
                    Some(d) => {
                        any_delta = true;
                        d.len() == out.rel(&a.rel).len()
                    }
                })
                && any_delta;
            if dense {
                let mut pending: Vec<Substitution> = Vec::new();
                for_each_match_indexed(
                    &tgd.body,
                    &out,
                    &index,
                    &Substitution::default(),
                    &mut |sub| {
                        if tgd.guard_ok(sub) && !has_match_indexed(&tgd.head, &out, &index, sub) {
                            pending.push(sub.clone());
                        }
                        true
                    },
                );
                for sub in pending {
                    apply_head(
                        &tgd.head,
                        &sub,
                        &mut out,
                        &mut index,
                        &mut additions,
                        &mut fresh,
                    )?;
                }
                continue;
            }
            // Seeded passes: each position whose relation actually gained
            // tuples plays the delta atom; the rest of the body joins
            // around the seed.
            for (pos, atom) in tgd.body.iter().enumerate() {
                let Some(bucket) = delta.get(&atom.rel) else {
                    continue;
                };
                let rest = &plan.rest[pos];
                for dt in bucket {
                    // Seed a substitution from the delta tuple.
                    let Some(seed) = seed_from(atom, dt) else {
                        continue;
                    };
                    let mut pending: Vec<Substitution> = Vec::new();
                    for_each_match_indexed(rest, &out, &index, &seed, &mut |sub| {
                        if tgd.guard_ok(sub) && !has_match_indexed(&tgd.head, &out, &index, sub) {
                            pending.push(sub.clone());
                        }
                        true
                    });
                    for sub in pending {
                        apply_head(
                            &tgd.head,
                            &sub,
                            &mut out,
                            &mut index,
                            &mut additions,
                            &mut fresh,
                        )?;
                    }
                }
            }
        }
        delta.clear();
        for (n, t) in additions {
            delta.entry(n).or_default().push(t);
        }
    }

    for egd in egds {
        if !egd.satisfied(&out) {
            return Err(ChaseError::EgdViolation {
                rule: egd.name.clone(),
            });
        }
    }
    obs.runs.inc();
    obs.run_ns.stop(run_timer);
    Ok(out)
}

/// Naive chase: recompute all body matches every round.  Reference
/// implementation for cross-validation and the ablation benchmark.  Shares
/// the indexed matcher with [`chase`] so the semi-naive/naive ablation
/// measures delta-driving alone, not index vs. scan.
pub fn chase_naive(
    inst: &Instance,
    tgds: &[Tgd],
    egds: &[Egd],
    config: &ChaseConfig,
) -> Result<Instance, ChaseError> {
    let mut out = inst.clone();
    let mut index = TupleIndex::build(&out);
    let mut fresh = FreshGen {
        next: 0,
        max: config.max_fresh,
    };
    for _round in 0..config.max_rounds {
        let mut additions: Vec<(String, Tuple)> = Vec::new();
        for tgd in tgds {
            let mut pending: Vec<Substitution> = Vec::new();
            for_each_match_indexed(
                &tgd.body,
                &out,
                &index,
                &Substitution::default(),
                &mut |sub| {
                    if tgd.guard_ok(sub) && !has_match_indexed(&tgd.head, &out, &index, sub) {
                        pending.push(sub.clone());
                    }
                    true
                },
            );
            for sub in pending {
                apply_head(
                    &tgd.head,
                    &sub,
                    &mut out,
                    &mut index,
                    &mut additions,
                    &mut fresh,
                )?;
            }
        }
        if additions.is_empty() {
            for egd in egds {
                if !egd.satisfied(&out) {
                    return Err(ChaseError::EgdViolation {
                        rule: egd.name.clone(),
                    });
                }
            }
            return Ok(out);
        }
    }
    Err(ChaseError::StepLimit)
}

/// Seed a substitution by unifying `atom`'s arguments with tuple `t`.
/// Returns `None` if a constant or repeated variable clashes.
fn seed_from(atom: &Atom, t: &Tuple) -> Option<Substitution> {
    let mut sub = Substitution::default();
    for (i, term) in atom.args.iter().enumerate() {
        match term {
            Term::Const(c) => {
                if t[i] != *c {
                    return None;
                }
            }
            Term::Var(x) => match sub.0.get(x) {
                Some(&v) if v != t[i] => return None,
                Some(_) => {}
                None => {
                    sub.0.insert(*x, t[i]);
                }
            },
        }
    }
    Some(sub)
}

/// Instantiate head atoms (inventing witnesses for existential variables)
/// and insert them, recording genuinely new tuples in `additions` and
/// mirroring every insertion into the live `index`.
fn apply_head(
    head: &[Atom],
    sub: &Substitution,
    out: &mut Instance,
    index: &mut TupleIndex,
    additions: &mut Vec<(String, Tuple)>,
    fresh: &mut FreshGen,
) -> Result<(), ChaseError> {
    // Re-check under the current (possibly grown) instance to avoid
    // duplicate witness invention.
    if has_match_indexed(head, out, index, sub) {
        return Ok(());
    }
    let mut sub = sub.clone();
    for atom in head {
        for x in atom.vars() {
            if sub.get(x).is_none() {
                let w = fresh.fresh()?;
                sub.0.insert(x, w);
            }
        }
    }
    for atom in head {
        let t = atom.instantiate(&sub);
        if out.rel_mut(&atom.rel).insert(t.clone()) {
            index.insert(&atom.rel, &t);
            additions.push((atom.rel.clone(), t));
        }
    }
    Ok(())
}

/// Chase-based implication test for existential-free TGDs: do `premises`
/// logically imply `conclusion` on all instances?
///
/// Builds the canonical instance by *freezing* the conclusion's body
/// variables into fresh constants, chases with the premises, and checks the
/// frozen head.  Sound and complete for full (existential-free) TGDs when
/// the chase terminates.
pub fn implies(
    sig: &compview_relation::Signature,
    premises: &[Tgd],
    conclusion: &Tgd,
    config: &ChaseConfig,
) -> Result<bool, ChaseError> {
    let mut canonical = Instance::null_model(sig);
    let mut frozen = Substitution::default();
    for atom in &conclusion.body {
        for x in atom.vars() {
            frozen
                .0
                .entry(x)
                .or_insert_with(|| Value::sym(&format!("_frz{x}")));
        }
    }
    for atom in &conclusion.body {
        let t = atom.instantiate(&frozen);
        canonical.rel_mut(&atom.rel).insert(t);
    }
    let closed = chase(&canonical, premises, &[], config)?;
    Ok(has_match(&conclusion.head, &closed, &frozen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{cst, var};
    use compview_relation::{rel, RelDecl, Signature};

    fn trans_rule() -> Tgd {
        Tgd::new(
            "trans",
            vec![
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(1), var(2)]),
            ],
            vec![Atom::new("E", vec![var(0), var(2)])],
        )
    }

    #[test]
    fn chase_computes_transitive_closure() {
        let inst = Instance::new().with("E", rel(2, [["a", "b"], ["b", "c"], ["c", "d"]]));
        let closed = chase(&inst, &[trans_rule()], &[], &ChaseConfig::default()).unwrap();
        assert_eq!(closed.rel("E").len(), 6); // ab bc cd ac bd ad
        assert!(closed.rel("E").contains(&compview_relation::t(["a", "d"])));
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let inst = Instance::new().with(
            "E",
            rel(
                2,
                [["a", "b"], ["b", "c"], ["c", "d"], ["d", "e"], ["e", "a"]],
            ),
        );
        let a = chase(&inst, &[trans_rule()], &[], &ChaseConfig::default()).unwrap();
        let b = chase_naive(&inst, &[trans_rule()], &[], &ChaseConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rel("E").len(), 25); // full relation on 5 nodes
    }

    #[test]
    fn chase_is_idempotent() {
        let inst = Instance::new().with("E", rel(2, [["a", "b"], ["b", "c"]]));
        let once = chase(&inst, &[trans_rule()], &[], &ChaseConfig::default()).unwrap();
        let twice = chase(&once, &[trans_rule()], &[], &ChaseConfig::default()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn chase_with_constants() {
        // Mark(x) rules referencing the constant "special".
        let tgd = Tgd::new(
            "mark",
            vec![Atom::new("E", vec![cst("special"), var(0)])],
            vec![Atom::new("M", vec![var(0)])],
        );
        let inst = Instance::new()
            .with("E", rel(2, [["special", "x"], ["other", "y"]]))
            .with("M", rel(1, Vec::<[&str; 1]>::new()));
        let closed = chase(&inst, &[tgd], &[], &ChaseConfig::default()).unwrap();
        assert_eq!(closed.rel("M"), &rel(1, [["x"]]));
    }

    #[test]
    fn egd_violation_detected() {
        let egd = Egd::new(
            "fd",
            vec![
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(0), var(2)]),
            ],
            (1, 2),
        );
        let bad = Instance::new().with("E", rel(2, [["a", "x"], ["a", "y"]]));
        let err = chase(&bad, &[], &[egd], &ChaseConfig::default()).unwrap_err();
        assert_eq!(err, ChaseError::EgdViolation { rule: "fd".into() });
    }

    #[test]
    fn existential_chase_invents_witnesses() {
        // P(x) → ∃y E(x,y).
        let tgd = Tgd::new(
            "total",
            vec![Atom::new("P", vec![var(0)])],
            vec![Atom::new("E", vec![var(0), var(9)])],
        );
        let inst = Instance::new()
            .with("P", rel(1, [["a"], ["b"]]))
            .with("E", rel(2, [["a", "w"]]));
        let closed = chase(
            &inst,
            std::slice::from_ref(&tgd),
            &[],
            &ChaseConfig::default(),
        )
        .unwrap();
        // "a" already has a witness; only "b" gets a fresh one.
        assert_eq!(closed.rel("E").len(), 2);
        assert!(tgd.satisfied(&closed));
    }

    #[test]
    fn step_limit_guards_against_runaway() {
        // Successor-style rule that never terminates: E(x,y) → ∃z E(y,z).
        let tgd = Tgd::new(
            "succ",
            vec![Atom::new("E", vec![var(0), var(1)])],
            vec![Atom::new("E", vec![var(1), var(2)])],
        );
        let inst = Instance::new().with("E", rel(2, [["a", "b"]]));
        let cfg = ChaseConfig {
            max_rounds: 50,
            max_fresh: 50,
        };
        assert!(chase(&inst, &[tgd], &[], &cfg).is_err());
    }

    #[test]
    fn implication_by_chase() {
        let sig = Signature::new([RelDecl::new("E", ["A", "B"])]);
        // trans ⊨ length-3 composition: E(x,y) ∧ E(y,z) ∧ E(z,w) → E(x,w).
        let three = Tgd::new(
            "three",
            vec![
                Atom::new("E", vec![var(0), var(1)]),
                Atom::new("E", vec![var(1), var(2)]),
                Atom::new("E", vec![var(2), var(3)]),
            ],
            vec![Atom::new("E", vec![var(0), var(3)])],
        );
        assert!(implies(&sig, &[trans_rule()], &three, &ChaseConfig::default()).unwrap());
        // And not conversely.
        assert!(!implies(&sig, &[three], &trans_rule(), &ChaseConfig::default()).unwrap());
    }

    #[test]
    fn empty_rule_set_is_identity() {
        let inst = Instance::new().with("E", rel(2, [["a", "b"]]));
        assert_eq!(
            chase(&inst, &[], &[], &ChaseConfig::default()).unwrap(),
            inst
        );
    }
}
