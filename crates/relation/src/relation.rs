//! Relations: finite sets of equal-arity tuples with full set algebra.
//!
//! Tuples are kept in a `BTreeSet`, giving deterministic iteration order
//! (instances print identically run to run, like the paper's tables) and
//! `O(log n)` membership.  The set operations here are the single-relation
//! versions of the relation-by-relation operations of Notation 1.2.3.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A finite relation instance of fixed arity.
///
/// # Examples
///
/// ```
/// use compview_relation::{rel, t};
///
/// let sp = rel(2, [["s1", "p1"], ["s2", "p3"]]);
/// let pj = rel(2, [["p1", "j1"], ["p3", "j1"]]);
/// let spj = sp.join(&pj, &[(1, 0)]);
/// assert_eq!(spj.len(), 2);
/// assert!(spj.contains(&t(["s1", "p1", "j1"])));
///
/// // The relation-by-relation set algebra of Notation 1.2.3:
/// let delta = sp.sym_diff(&rel(2, [["s1", "p1"]]));
/// assert_eq!(delta, rel(2, [["s2", "p3"]]));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Build a relation from tuples, checking that arities agree.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `arity`.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Relation
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut r = Relation::empty(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over the tuples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics on arity mismatch — mixing arities in one relation is always a
    /// logic error in this codebase, never data-dependent.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.arity(),
            self.arity
        );
        self.tuples.insert(t)
    }

    /// Remove a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &Relation) -> Relation {
        self.assert_compatible(other);
        Relation {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &Relation) -> Relation {
        self.assert_compatible(other);
        Relation {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        self.assert_compatible(other);
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Symmetric difference `self Δ other = (self ∪ other) \ (self ∩ other)`.
    pub fn sym_diff(&self, other: &Relation) -> Relation {
        self.assert_compatible(other);
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .symmetric_difference(&other.tuples)
                .cloned()
                .collect(),
        }
    }

    /// Projection onto column indices `cols` (set semantics: duplicates fuse).
    pub fn project(&self, cols: &[usize]) -> Relation {
        let mut out = Relation::empty(cols.len());
        for t in &self.tuples {
            out.tuples.insert(t.project(cols));
        }
        out
    }

    /// Selection: keep tuples satisfying `pred`.
    pub fn select<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Natural join on explicit column pairs: tuples `l ++ r'` where `r'` is
    /// `r` minus its join columns, for every `l`, `r` agreeing on each
    /// `(left_col, right_col)` pair.
    ///
    /// Implemented as a hash join on the join-key projection; output column
    /// order is `self`'s columns followed by `other`'s non-key columns in
    /// their original order (standard natural-join convention).
    pub fn join(&self, other: &Relation, on: &[(usize, usize)]) -> Relation {
        let lkeys: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let rkeys: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let rkeep: Vec<usize> = (0..other.arity).filter(|c| !rkeys.contains(c)).collect();

        let mut index: std::collections::HashMap<Tuple, Vec<&Tuple>> =
            std::collections::HashMap::new();
        for rt in &other.tuples {
            index.entry(rt.project(&rkeys)).or_default().push(rt);
        }

        let mut out = Relation::empty(self.arity + rkeep.len());
        for lt in &self.tuples {
            if let Some(matches) = index.get(&lt.project(&lkeys)) {
                for rt in matches {
                    out.tuples.insert(lt.concat(&rt.project(&rkeep)));
                }
            }
        }
        out
    }

    /// Cartesian product.
    pub fn product(&self, other: &Relation) -> Relation {
        self.join(other, &[])
    }

    /// Rename/permute columns: output column `i` takes input column `perm[i]`.
    pub fn reorder(&self, perm: &[usize]) -> Relation {
        self.project(perm)
    }

    /// The set of distinct values appearing in column `col` — the *active
    /// domain* of that column.
    pub fn column_values(&self, col: usize) -> BTreeSet<Value> {
        self.tuples.iter().map(|t| t[col]).collect()
    }

    /// All values appearing anywhere in the relation.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.tuples
            .iter()
            .flat_map(|t| t.values().iter().copied())
            .collect()
    }

    /// Remove tuples strictly subsumed by another tuple of the relation
    /// (Example 2.1.1 mentions the subsumed-tuple-free re-axiomatization).
    pub fn remove_subsumed(&self) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .iter()
                .filter(|t| !self.tuples.iter().any(|o| *t != o && t.subsumed_by(o)))
                .cloned()
                .collect(),
        }
    }

    fn assert_compatible(&self, other: &Relation) {
        assert_eq!(
            self.arity, other.arity,
            "set operation on relations of different arity"
        );
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// Build a relation literal: `rel(2, [["s1","p1"], ["s1","p2"]])`.
pub fn rel<I, T>(arity: usize, rows: I) -> Relation
where
    I: IntoIterator<Item = T>,
    T: Into<Tuple>,
{
    Relation::from_tuples(arity, rows.into_iter().map(Into::into))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::t;
    use crate::value::{v, Value};

    fn r_sp() -> Relation {
        // R_SP of Example 1.1.1.
        rel(2, [["s1", "p1"], ["s1", "p2"], ["s2", "p3"]])
    }

    fn r_pj() -> Relation {
        // R_PJ of Example 1.1.1.
        rel(2, [["p1", "j1"], ["p1", "j2"], ["p3", "j1"], ["p4", "j3"]])
    }

    #[test]
    fn join_reproduces_example_1_1_1() {
        // R_SPJ = R_SP ⋈_P R_PJ should be exactly the paper's view instance.
        let spj = r_sp().join(&r_pj(), &[(1, 0)]);
        let expected = rel(
            3,
            [
                ["s1", "p1", "j1"],
                ["s1", "p1", "j2"],
                ["s1", "p2", "j1"], // not present: p2 has no PJ partner
            ],
        );
        // (s1,p2) joins nothing; (s2,p3) joins (p3,j1).
        let expected = {
            let mut e = expected;
            e.remove(&t(["s1", "p2", "j1"]));
            e.insert(t(["s2", "p3", "j1"]));
            e
        };
        assert_eq!(spj, expected);
        assert_eq!(spj.len(), 3);
    }

    #[test]
    fn join_side_effect_of_insertion() {
        // Inserting (s3,p3) and (p3,j3) to support view-insert (s3,p3,j3)
        // also creates (s3,p3,j1) and (s2,p3,j3) — the paper's instance (b).
        let mut sp = r_sp();
        let mut pj = r_pj();
        sp.insert(t(["s3", "p3"]));
        pj.insert(t(["p3", "j3"]));
        let spj = sp.join(&pj, &[(1, 0)]);
        assert!(spj.contains(&t(["s3", "p3", "j3"])));
        assert!(spj.contains(&t(["s3", "p3", "j1"]))); // side effect
        assert!(spj.contains(&t(["s2", "p3", "j3"]))); // side effect
    }

    #[test]
    fn set_algebra() {
        let a = rel(1, [["x"], ["y"]]);
        let b = rel(1, [["y"], ["z"]]);
        assert_eq!(a.union(&b), rel(1, [["x"], ["y"], ["z"]]));
        assert_eq!(a.intersect(&b), rel(1, [["y"]]));
        assert_eq!(a.difference(&b), rel(1, [["x"]]));
        assert_eq!(a.sym_diff(&b), rel(1, [["x"], ["z"]]));
        assert!(a.intersect(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn sym_diff_definition_holds() {
        // A Δ B = (A ∪ B) \ (A ∩ B), Notation 1.2.3.
        let a = rel(1, [["x"], ["y"], ["w"]]);
        let b = rel(1, [["y"], ["z"], ["w"]]);
        assert_eq!(a.sym_diff(&b), a.union(&b).difference(&a.intersect(&b)));
    }

    #[test]
    fn projection_fuses_duplicates() {
        let r = rel(2, [["a", "x"], ["a", "y"], ["b", "x"]]);
        assert_eq!(r.project(&[0]), rel(1, [["a"], ["b"]]));
        assert_eq!(r.project(&[0]).len(), 2);
    }

    #[test]
    fn selection() {
        let r = rel(2, [["a", "x"], ["b", "x"], ["a", "y"]]);
        let sel = r.select(|t| t[0] == v("a"));
        assert_eq!(sel, rel(2, [["a", "x"], ["a", "y"]]));
    }

    #[test]
    fn product_arity_and_size() {
        let a = rel(1, [["x"], ["y"]]);
        let b = rel(2, [["1", "2"], ["3", "4"], ["5", "6"]]);
        let p = a.product(&b);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn remove_subsumed_keeps_maximal_objects() {
        let r = Relation::from_tuples(
            3,
            [
                Tuple::new([v("a"), v("b"), Value::Null]),
                Tuple::new([v("a"), v("b"), v("c")]),
                Tuple::new([Value::Null, v("b"), v("c")]),
                Tuple::new([Value::Null, v("x"), Value::Null]),
            ],
        );
        let m = r.remove_subsumed();
        assert_eq!(m.len(), 2);
        assert!(m.contains(&Tuple::new([v("a"), v("b"), v("c")])));
        assert!(m.contains(&Tuple::new([Value::Null, v("x"), Value::Null])));
    }

    #[test]
    fn active_domain() {
        let r = rel(2, [["a", "b"], ["b", "c"]]);
        let dom = r.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&v("a")) && dom.contains(&v("c")));
        assert_eq!(r.column_values(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::empty(2);
        r.insert(t(["only-one"]));
    }

    #[test]
    fn reorder_permutes_columns() {
        let r = rel(3, [["a", "b", "c"]]);
        assert_eq!(r.reorder(&[2, 1, 0]), rel(3, [["c", "b", "a"]]));
    }
}
