//! Pretty-printing of relations and instances as the boxed tables the paper
//! uses in its examples (e.g. the `R_SP` / `R_PJ` / `R_SPJ` figures of
//! Example 1.1.1 and the null-augmented instance of Example 2.1.1).

use crate::instance::Instance;
use crate::relation::Relation;
use crate::schema::Signature;

/// Render a relation as a column-aligned table.
///
/// `title` is printed beneath the table like the paper's figure captions;
/// `headers` (attribute names) head the columns.
pub fn table(rel: &Relation, headers: &[&str], title: &str) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    widths.resize(rel.arity().max(headers.len()), 1);
    let rows: Vec<Vec<String>> = rel
        .iter()
        .map(|t| t.values().iter().map(|v| v.render()).collect())
        .collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let body: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:^w$}"))
            .collect();
        format!("| {} |", body.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    let sep = format!(
        "+{}+",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+")
    );

    out.push_str(&sep);
    out.push('\n');
    if !headers.is_empty() {
        out.push_str(&fmt_row(&header_cells, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
    }
    for row in &rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    if !title.is_empty() {
        // Centre the caption under the table like the paper's figures.
        let width = sep.chars().count();
        out.push_str(&format!("{title:^width$}"));
        out.push('\n');
    }
    out
}

/// Render every relation of an instance using attribute names from `sig`.
pub fn instance_tables(inst: &Instance, sig: &Signature) -> String {
    let mut out = String::new();
    for decl in sig.decls() {
        let headers: Vec<&str> = decl.attrs().iter().map(String::as_str).collect();
        out.push_str(&table(inst.rel(decl.name()), &headers, decl.name()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::rel;
    use crate::schema::RelDecl;

    #[test]
    fn table_renders_all_tuples_and_caption() {
        let r = rel(2, [["s1", "p1"], ["s2", "p3"]]);
        let s = table(&r, &["S", "P"], "R_SP");
        assert!(s.contains("s1"));
        assert!(s.contains("p3"));
        assert!(s.contains("R_SP"));
        assert!(s.contains("| S "));
        // 2 data rows + header + 3 separators + caption
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn empty_relation_renders() {
        let r = rel(2, Vec::<[&str; 2]>::new());
        let s = table(&r, &["A", "B"], "empty");
        assert!(s.contains("empty"));
    }

    #[test]
    fn instance_tables_cover_signature() {
        let sig = Signature::new([RelDecl::new("R", ["A"]), RelDecl::new("S", ["A"])]);
        let inst = crate::instance::Instance::null_model(&sig)
            .with("R", rel(1, [["x"]]))
            .with("S", rel(1, [["y"]]));
        let s = instance_tables(&inst, &sig);
        assert!(s.contains('x') && s.contains('y'));
        assert!(s.contains("R\n") || s.contains("R "));
    }

    #[test]
    fn wide_values_expand_columns() {
        let r = rel(1, [["a-very-long-symbol"]]);
        let s = table(&r, &["X"], "");
        assert!(s.contains("a-very-long-symbol"));
    }
}
